//! Concurrent data structures under every synchronization scheme.
//!
//! Runs the paper's three evaluation structures (hashtable, rotating BST,
//! B-tree) with four threads under coarse locks, the base STM, HASTM, and
//! best-case hybrid TM, printing throughput and correctness checks — a
//! miniature of the paper's Figures 18–20.
//!
//! Run with: `cargo run --release -p hastm-bench --example concurrent_sets`

use hastm_workloads::{run_workload, Scheme, Structure, TxMap, WorkloadConfig};

fn main() {
    println!(
        "{:10} {:18} {:>12} {:>9} {:>8}",
        "structure", "scheme", "cycles/op", "commits", "aborts"
    );
    for structure in Structure::ALL {
        for scheme in [Scheme::Lock, Scheme::Stm, Scheme::Hastm, Scheme::Hytm] {
            let mut cfg = WorkloadConfig::paper_default(structure, scheme, 4);
            cfg.ops_per_thread = 250;
            cfg.prepopulate = 512;
            cfg.key_range = 1024;
            let result = run_workload(&cfg);
            println!(
                "{:10} {:18} {:>12.1} {:>9} {:>8}",
                structure.label(),
                scheme.label(),
                result.cycles_per_op(),
                result.txn.commits,
                result.txn.aborts(),
            );
        }
    }

    // Show the shared-map API directly: all three structures behind the
    // same trait, all schemes behind the same context.
    use hastm::{Granularity, StmConfig, StmRuntime, TxThread};
    use hastm_sim::{Machine, MachineConfig};
    use hastm_workloads::Bst;

    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(&mut machine, StmConfig::hastm_cautious(Granularity::Object));
    machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let set = tx.atomic(|tx| Ok(Bst::create(tx)));
        tx.atomic(|tx| {
            for k in [30u64, 10, 50, 20, 40] {
                set.insert(tx, k, k * 10)?;
            }
            assert_eq!(set.get(tx, 20)?, Some(200));
            assert!(set.remove(tx, 30)?);
            assert_eq!(set.len(tx)?, 4);
            set.check_invariants(tx)?;
            Ok(())
        });
    });
    println!("\nconcurrent_sets OK");
}
