//! Quickstart: run a hardware-accelerated software transaction end to end.
//!
//! Builds a simulated machine, an HASTM runtime on it, and executes a few
//! transactions, printing the statistics that show the hardware assist at
//! work (mark-bit fast paths and skipped validations).
//!
//! Run with: `cargo run --release -p hastm-bench --example quickstart`

use hastm::{Granularity, ModePolicy, StmConfig, StmRuntime, TxThread};
use hastm_sim::{Machine, MachineConfig};

fn main() {
    // A single-core machine with the paper's default caches (32 KiB L1
    // with mark bits, 2 MiB shared inclusive L2).
    let mut machine = Machine::new(MachineConfig::default());

    // HASTM with object-granularity conflict detection and the paper's
    // single-thread mode policy (aggressive after the first commit).
    let config = StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive);
    let runtime = StmRuntime::new(&mut machine, config);

    let ((), report) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);

        // Allocate a transactional object with two fields.
        let account = tx.alloc_obj(2);

        // A transaction that initializes it.
        tx.atomic(|tx| {
            tx.write_word(account, 0, 1_000)?; // balance
            tx.write_word(account, 1, 0)?; // transfer count
            Ok(())
        });

        // Transactions that read-modify-write it. The second and later
        // ones run in aggressive mode: reads are filtered by mark bits and
        // never logged; commit checks one hardware counter.
        for _ in 0..10 {
            tx.atomic(|tx| {
                let balance = tx.read_word(account, 0)?;
                let count = tx.read_word(account, 1)?;
                tx.write_word(account, 0, balance + 10)?;
                tx.write_word(account, 1, count + 1)?;
                Ok(())
            });
        }

        let (balance, count) =
            tx.atomic(|tx| Ok((tx.read_word(account, 0)?, tx.read_word(account, 1)?)));
        assert_eq!(balance, 1_100);
        assert_eq!(count, 10);

        let stats = tx.stats();
        println!("committed transactions: {}", stats.commits);
        println!("aborts:                 {}", stats.aborts());
        println!(
            "read barriers:          {} fast-path (2-instruction), {} slow-path",
            stats.read_fast_path, stats.read_slow_path
        );
        println!(
            "reads never logged:     {} (aggressive mode)",
            stats.reads_unlogged
        );
        println!(
            "validations:            {} skipped via mark counter, {} software walks",
            stats.validations_skipped, stats.validations_full
        );
    });

    println!("simulated cycles:       {}", report.makespan());
    println!("quickstart OK");
}
