//! Language-environment integration: a "garbage collector" pauses a
//! running hardware-accelerated transaction, inspects its logs, moves an
//! object the transaction has speculatively written, patches the
//! references — and the transaction then *commits* instead of aborting.
//!
//! This is the capability the paper uses to distinguish HASTM from HTM and
//! HyTM (§2, §5): hardware transactions cannot survive this; a
//! hardware-accelerated software transaction merely falls back to one
//! software validation. The same example also shows a transaction
//! surviving a context switch.
//!
//! Run with: `cargo run --release -p hastm-bench --example gc_suspension`

use hastm::{Granularity, ObjRef, StmConfig, StmRuntime, TxThread};
use hastm_sim::{Addr, Machine, MachineConfig};

fn main() {
    let mut machine = Machine::new(MachineConfig::default());
    // GC requires object-granularity conflict detection (records move with
    // their objects).
    let runtime = StmRuntime::new(&mut machine, StmConfig::hastm_cautious(Granularity::Object));

    machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);

        // A "root" object holding a reference to a payload object.
        let root = tx.alloc_obj(1);
        let payload = tx.alloc_obj(2);
        tx.atomic(|tx| {
            tx.write_word_meta(root, 0, payload.0 .0, /* is-reference */ 1)?;
            tx.write_word(payload, 0, 7)?;
            Ok(())
        });

        // Begin a transaction, speculatively update the payload, then get
        // interrupted by the collector mid-flight.
        tx.atomic(|tx| {
            let p = ObjRef(Addr(tx.read_word(root, 0)?));
            let v = tx.read_word(p, 0)?;
            tx.write_word(p, 0, v + 100)?; // speculative: becomes 107

            // --- the collector arrives ---
            let moved = {
                let mut gc = tx.suspend();
                println!("collector: transaction suspended, not aborted");
                println!(
                    "collector: sees {} undo entries, {} owned records, {} read entries",
                    gc.undo_entries().len(),
                    gc.write_entries().len(),
                    gc.read_entries().len()
                );
                for (i, e) in gc.undo_entries().iter().enumerate() {
                    println!(
                        "collector: undo[{i}] addr={} old={} meta={}",
                        e.addr, e.old, e.meta
                    );
                }
                // Evacuate the payload (copying its speculative state and
                // ownership) and fix the root's reference.
                let moved = gc.relocate_object(p, 2);
                gc.poke(root.word(0), moved.0 .0);
                println!("collector: moved {} -> {}", p.0, moved.0);
                moved
            }; // resuming discards mark bits; next validation is software

            // --- the mutator continues, oblivious ---
            let v = tx.read_word(moved, 0)?;
            assert_eq!(v, 107, "speculative state survived the move");
            tx.write_word(moved, 1, v * 2)?;
            Ok(())
        });
        println!("mutator: transaction committed after GC");

        // The transaction also survives being scheduled out mid-flight
        // (an HTM transaction would abort on the ring transition).
        tx.atomic(|tx| {
            let p = ObjRef(Addr(tx.read_word(root, 0)?));
            let v = tx.read_word(p, 0)?;
            tx.context_switch(25_000); // 25k cycles in the kernel
            tx.write_word(p, 0, v + 1)?;
            Ok(())
        });
        println!("mutator: transaction committed across a context switch");

        let stats = tx.stats();
        println!(
            "validations: {} skipped (hardware), {} software walks (post-GC/switch)",
            stats.validations_skipped, stats.validations_full
        );
        assert_eq!(stats.aborts(), 0, "nothing ever aborted");

        // Final state check through a fresh transaction.
        let final_v = tx.atomic(|tx| {
            let p = ObjRef(Addr(tx.read_word(root, 0)?));
            tx.read_word(p, 0)
        });
        assert_eq!(final_v, 108);
    });

    println!("gc_suspension OK");
}
