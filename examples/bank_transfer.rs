//! Concurrent bank transfers: atomicity, composition via nesting, and
//! `retry`-based condition synchronization across four simulated cores.
//!
//! Demonstrates the language-level semantics the paper argues HTMs cannot
//! provide directly (§2): composable nested transactions and blocking
//! primitives, all hardware-accelerated.
//!
//! Run with: `cargo run --release -p hastm-bench --example bank_transfer`

use hastm::{Granularity, ObjRef, StmConfig, StmRuntime, TxResult, TxThread};
use hastm_sim::{Machine, MachineConfig, WorkerFn};

const ACCOUNTS: u32 = 16;
const TRANSFERS_PER_TELLER: u32 = 200;
const INITIAL_BALANCE: u64 = 1_000;

/// Withdraws from one account, blocking (transactionally) until funds are
/// available.
fn withdraw(tx: &mut TxThread<'_, '_>, acct: ObjRef, amount: u64) -> TxResult<()> {
    let balance = tx.read_word(acct, 0)?;
    if balance < amount {
        // Not enough money: retry blocks until another teller deposits.
        return tx.retry_now();
    }
    tx.write_word(acct, 0, balance - amount)
}

fn deposit(tx: &mut TxThread<'_, '_>, acct: ObjRef, amount: u64) -> TxResult<()> {
    let balance = tx.read_word(acct, 0)?;
    tx.write_word(acct, 0, balance + amount)
}

fn main() {
    let cores: usize = std::env::var("TELLERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut machine = Machine::new(MachineConfig::with_cores(cores));
    let runtime = StmRuntime::new(
        &mut machine,
        StmConfig::hastm(
            Granularity::Object,
            hastm::ModePolicy::AbortRatioWatermark { watermark: 0.1 },
        ),
    );

    // Set up the accounts in a setup run on core 0.
    let (accounts, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let accounts: Vec<ObjRef> = (0..ACCOUNTS).map(|_| tx.alloc_obj(1)).collect();
        tx.atomic(|tx| {
            for a in &accounts {
                tx.write_word(*a, 0, INITIAL_BALANCE)?;
            }
            Ok(())
        });
        accounts
    });

    // Four tellers move money between deterministic-random account pairs.
    let runtime_ref = &runtime;
    let accounts_ref = &accounts;
    let stats = std::sync::Mutex::new(Vec::new());
    let stats_ref = &stats;
    let workers: Vec<WorkerFn<'_>> = (0..cores)
        .map(|teller| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(runtime_ref, cpu);
                let mut rng = 0x9e37_79b9_7f4a_7c15_u64 ^ ((teller as u64) << 32);
                for _ in 0..TRANSFERS_PER_TELLER {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = accounts_ref[(rng % ACCOUNTS as u64) as usize];
                    let to = accounts_ref[((rng >> 8) % ACCOUNTS as u64) as usize];
                    let amount = 1 + rng % 50;
                    if from == to {
                        continue;
                    }
                    // The whole transfer is one atomic action composed of
                    // two nested operations.
                    tx.atomic(|tx| {
                        tx.nested(|tx| withdraw(tx, from, amount))?;
                        tx.nested(|tx| deposit(tx, to, amount))?;
                        Ok(())
                    });
                }
                stats_ref.lock().unwrap().push(tx.stats().clone());
            }) as WorkerFn<'_>
        })
        .collect();
    let report = machine.run(workers);

    // Money is conserved: the sum of balances is exactly the total minted.
    let (total, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        tx.atomic(|tx| {
            let mut sum = 0;
            for a in accounts_ref {
                sum += tx.read_word(*a, 0)?;
            }
            Ok(sum)
        })
    });
    assert_eq!(total, ACCOUNTS as u64 * INITIAL_BALANCE, "money conserved");

    let mut commits = 0;
    let mut aborts = 0;
    let mut retries = 0;
    for s in stats.lock().unwrap().iter() {
        commits += s.commits;
        aborts += s.aborts_conflict + s.aborts_mark_dirty;
        retries += s.aborts_retry;
    }
    println!("tellers:            {cores}");
    println!("total balance:      {total} (conserved)");
    println!("commits:            {commits}");
    println!("conflict aborts:    {aborts}");
    println!("blocking retries:   {retries}");
    println!("simulated cycles:   {}", report.makespan());
    println!("bank_transfer OK");
}
