//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API slice it actually uses: `Mutex`,
//! `MutexGuard`, and `Condvar` with `parking_lot`'s non-poisoning
//! signatures (`lock()` returns a guard directly, `Condvar::wait` takes
//! `&mut MutexGuard`).

use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std
/// guard out and back in through a `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable matching `parking_lot`'s `wait(&mut guard)` shape.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
