//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map`/`boxed`, integer-range / tuple / `Just` /
//! `any::<T>()` strategies, `collection::vec`, the `proptest!`,
//! `prop_oneof!`, and `prop_assert*` macros, and `ProptestConfig`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case prints its generated inputs, the
//!   test's deterministic seed, and the case index, then panics. (The
//!   repo's `hastm-check` harness does its own shrinking for the cases
//!   that matter.)
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test name and case index, so failures reproduce exactly across
//!   runs and machines with no persistence files.

pub mod test_runner {
    /// Error raised by `prop_assert*` from inside a test case.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration; only `cases` is honored by the shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// The RNG handed to strategies. Deterministic per (test, case).
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(seed))
        }

        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, as returned by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    let (lo, hi) = (*self.start(), *self.end());
                    if hi < <$t>::MAX {
                        rng.0.gen_range(lo..hi + 1)
                    } else if lo > <$t>::MIN {
                        // Sample [lo-1, MAX) and shift up to cover MAX.
                        rng.0.gen_range(lo - 1..hi) + 1
                    } else {
                        // Full domain.
                        rng.0.gen_range(<$t>::MIN..<$t>::MAX)
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Strategy behind [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        branches: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V: Debug> OneOf<V> {
        pub fn new(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            let total = branches.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            OneOf { branches, total }
        }
    }

    impl<V: Debug> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.branches {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// `any::<T>()`: the canonical whole-domain strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count bounds for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Support code invoked by the `proptest!` macro expansion (public, but
/// not part of the emulated proptest API).
pub mod sugar {
    use super::test_runner::{Config, TestCaseError};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// FNV-1a, for deterministic per-test seeds.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (((case as u64) << 32) | case as u64)
    }

    /// Runs `config.cases` cases. `body(seed)` generates its inputs from a
    /// seed-derived RNG and returns `(inputs-debug-string, result)`.
    pub fn run_cases(
        config: &Config,
        test_name: &str,
        body: impl Fn(u64) -> (String, Result<(), TestCaseError>),
    ) {
        for case in 0..config.cases {
            let seed = seed_for(test_name, case);
            let outcome = catch_unwind(AssertUnwindSafe(|| body(seed)));
            let (inputs, failure) = match outcome {
                Ok((_, Ok(()))) => continue,
                Ok((inputs, Err(e))) => (inputs, e.to_string()),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    // Inputs are unknown when the body panicked before
                    // returning; regenerate nothing, just report the seed.
                    (String::from("<see seed>"), format!("panic: {msg}"))
                }
            };
            panic!(
                "proptest case failed: {test_name} case {case}/{} seed {seed:#x}\n  inputs: {inputs}\n  cause: {failure}\n  (shim has no shrinking; rerun reproduces deterministically)",
                config.cases
            );
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} != {:?} ({} != {})",
                l, r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} != {:?}: {}",
                l, r,
                format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} == {:?} but expected inequality",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        @tests ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::sugar::run_cases(&config, stringify!($name), |seed| {
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(concat!(stringify!($arg), " = {:?}; "), $arg));)+
                        s
                    };
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let _: () = $body;
                            ::core::result::Result::Ok(())
                        })();
                    (inputs, result)
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@tests ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u8),
        B(u64),
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3..9u8, y in 0..100u64, z in 0..4usize) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100);
            prop_assert!(z < 4);
        }

        #[test]
        fn vec_and_oneof_compose(
            ops in collection::vec(prop_oneof![
                3 => any::<u8>().prop_map(Op::A),
                1 => any::<u64>().prop_map(Op::B),
                1 => Just(Op::C),
            ], 1..20),
            flip in any::<bool>(),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            let _ = flip;
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0..1000u64, 5..10);
        let mut r1 = crate::test_runner::TestRng::from_seed(99);
        let mut r2 = crate::test_runner::TestRng::from_seed(99);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_report_seed_and_inputs() {
        crate::sugar::run_cases(
            &crate::test_runner::Config {
                cases: 1,
                ..Default::default()
            },
            "demo",
            |_seed| {
                (
                    "x = 1".to_string(),
                    Err(crate::test_runner::TestCaseError::fail("nope")),
                )
            },
        );
    }
}
