//! Offline stand-in for the `crossbeam` crate, backed by `std::thread`.
//!
//! `crossbeam::thread::scope` / `Scope::spawn` are provided with
//! crossbeam's panic-aggregation contract: if any spawned thread panics,
//! `scope` returns `Err` whose payload downcasts to
//! `Vec<Box<dyn Any + Send>>` holding the original panic payloads.
//! `crossbeam::queue::SegQueue` is provided as a mutex-backed MPMC queue
//! with the same `push`/`pop` surface (lock-free performance is not a goal
//! of the shim; work items here are coarse simulation jobs).

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue mirroring `crossbeam::queue::SegQueue`.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue poisoned").push_back(value);
        }

        /// Dequeues from the front, or `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue poisoned").pop_front()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type PanicList = Arc<Mutex<Vec<Box<dyn Any + Send + 'static>>>>;

    /// Scoped-thread handle that mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: PanicList,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it
        /// can spawn siblings), like crossbeam's `|scope| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, Option<T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let panics = self.panics.clone();
            self.inner.spawn(move || {
                let scope = Scope {
                    inner,
                    panics: panics.clone(),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        panics.lock().expect("panic list").push(payload);
                        None
                    }
                }
            })
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing environment; joins them all before returning.
    ///
    /// # Errors
    ///
    /// If any spawned thread panicked, returns the aggregated payloads as
    /// `Err(Box<Vec<Box<dyn Any + Send>>>)` (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: PanicList = Arc::new(Mutex::new(Vec::new()));
        let panics_in = panics.clone();
        let result = std::thread::scope(move |s| {
            let scope = Scope {
                inner: s,
                panics: panics_in,
            };
            f(&scope)
        });
        let collected = std::mem::take(&mut *panics.lock().expect("panic list"));
        if collected.is_empty() {
            Ok(result)
        } else {
            Err(Box::new(collected))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn queue_is_fifo() {
        let q = super::queue::SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_drains_across_threads() {
        let q = super::queue::SegQueue::new();
        for i in 0..100u64 {
            q.push(i);
        }
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                let q = &q;
                let sum = &sum;
                scope.spawn(move |_| {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 99 * 100 / 2);
        assert!(q.is_empty());
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicU64::new(0);
        let r = super::thread::scope(|scope| {
            for _ in 0..2 {
                let data = &data;
                let sum = &sum;
                scope.spawn(move |_| {
                    sum.fetch_add(
                        data.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            }
            7
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 12);
    }

    #[test]
    fn panics_aggregate_into_vec() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        let payload = r.expect_err("child panicked");
        let panics = payload
            .downcast::<Vec<Box<dyn std::any::Any + Send + 'static>>>()
            .expect("aggregated vec");
        assert_eq!(panics.len(), 1);
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let hit = std::sync::atomic::AtomicBool::new(false);
        let hit_ref = &hit;
        super::thread::scope(|scope| {
            scope.spawn(move |inner| {
                inner.spawn(move |_| hit_ref.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert!(hit.load(std::sync::atomic::Ordering::Relaxed));
    }
}
