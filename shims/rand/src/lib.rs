//! Offline stand-in for the `rand` crate (0.8 API shape).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen, gen_bool}` over integer ranges — the slice of
//! rand this workspace uses. The generator is xoshiro256++ seeded via
//! SplitMix64; streams are deterministic and stable across platforms,
//! which the simulator's reproducibility story depends on, but are NOT
//! the same streams as the real `rand` crate.

/// Core RNG abstraction: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a `Range<T>`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Lemire-style widening multiply keeps the modulo bias
                // negligible for the span sizes used here.
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for workload shaping.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
