//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io. This shim
//! keeps the `benches/` targets compiling and runnable: each
//! `bench_function` runs a short warmup plus a small fixed number of
//! timed iterations and prints mean wall time per iteration. There are
//! no statistics, plots, or baselines — the simulated-cycle numbers that
//! actually matter are printed by the `figNN` binaries.

use std::time::{Duration, Instant};

/// Iterations per benchmark. Kept tiny so `cargo bench` stays fast; the
/// shim is about keeping benches compiling, not measurement fidelity.
const ITERS: u32 = 3;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_bench("", id.as_ref(), &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.group, id.as_ref(), &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = b.elapsed.checked_div(b.iters.max(1)).unwrap_or_default();
    if group.is_empty() {
        println!("  {id}: {mean:?}/iter over {} iters", b.iters);
    } else {
        println!("  {group}/{id}: {mean:?}/iter over {} iters", b.iters);
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup once, then time a fixed handful of iterations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_runs_closure() {
        let mut c = super::Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut count = 0u32;
        group.bench_function("f", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count >= super::ITERS);
    }
}
