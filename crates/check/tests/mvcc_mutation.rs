//! Mutation test for the multi-version snapshot protocol.
//!
//! The `mvcc-seeded-bug` feature (forwarding the core crate's feature of
//! the same name) makes `VersionStore::snapshot_read` admit one-too-new a
//! version: newest stamp ≤ start+1 instead of ≤ start. A read-only scan
//! overlapping a writer's commit then observes a torn snapshot — some
//! reads from before the racing commit's publication, some after —
//! exactly the failure mode the oracle's stamp-keyed snapshot obligations
//! exist to catch. Version-store accesses run inside gated ops, so which
//! seeds expose the planted hole is a deterministic property of the
//! schedule, not a host-timing race: the sweep below catches it on the
//! same seeds every run.
//!
//! The mutated sweep must report a failure (an oracle violation from a
//! torn snapshot read) within 16 seeds of the fuzzed schedule, whose
//! priority jitter lands writer commits inside read-only traversals. The
//! identical unmutated sweep must be green.
//!
//! Run with:
//!
//! ```text
//! cargo test -p hastm-check --features mvcc-seeded-bug --test mvcc_mutation
//! cargo test -p hastm-check --test mvcc_mutation   # unmutated: green
//! ```

use hastm_check::{run_suite, CheckConfig, Combo, Sched, SuiteReport, Workload};

/// The production suite over multi-version map combinations, fuzzed
/// sched, 16 seeds — the issue's detection budget. Map workloads route
/// every `Get` through `atomic_ro`, so each trial runs many read-only
/// traversals against racing writers; the B-tree's node splits publish
/// many versions per commit, widening the torn-read window.
fn fuzzed_sweep() -> SuiteReport {
    let combos: Vec<Combo> = ["stm:line:full:v2", "stm:line:full:v3", "stm:obj:full:v3"]
        .iter()
        .map(|s| Combo::parse(s).unwrap())
        .collect();
    let cfg = CheckConfig {
        seeds: 16,
        threads: 3,
        ops: 32,
        combos,
        workloads: vec![Workload::Map, Workload::BTree],
        sched: Sched::Fuzzed,
        ..CheckConfig::default()
    };
    run_suite(&cfg, |_, _| {})
}

#[cfg(feature = "mvcc-seeded-bug")]
mod mutated {
    use super::*;

    /// The oracle's stamp-keyed snapshot check must expose the seeded
    /// one-too-new read within the 16-seed budget.
    #[test]
    fn oracle_catches_the_seeded_torn_snapshot_within_16_seeds() {
        let report = fuzzed_sweep();
        assert!(
            !report.failures.is_empty(),
            "the seeded snapshot bug must be caught within 16 fuzzed-sched seeds"
        );
        // The hole shows up as an oracle violation (a snapshot read that
        // does not match the committed value at the start stamp) — never
        // as a crash or hang. A torn structural read can also surface as
        // a digest or traversal divergence downstream.
        let detail = &report.failures[0].detail;
        assert!(
            detail.contains("oracle")
                || detail.contains("snapshot")
                || detail.contains("digest")
                || detail.contains("divergence"),
            "unexpected failure shape: {detail}"
        );
    }
}

#[cfg(not(feature = "mvcc-seeded-bug"))]
mod unmutated {
    use super::*;

    /// Without the mutation the identical sweep is green: the detector
    /// reacts to the planted hole, not to its own noise.
    #[test]
    fn fuzzed_sched_multi_version_sweep_is_green_without_the_mutation() {
        let report = fuzzed_sweep();
        assert!(
            report.failures.is_empty(),
            "unmutated fuzzed-sched sweep must be green: {:#?}",
            report.failures
        );
        assert_eq!(report.trials, 16 * 3 * 2);
    }
}
