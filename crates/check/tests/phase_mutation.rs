//! Mutation test for the phased global-mode controller.
//!
//! The `phase-seeded-bug` feature mutates `hastm::phase::refresh_view` so
//! a retrying phase entry keeps its *stale* phase bits after a CAS
//! failure: when a transition is published between the entrant's read and
//! its successful retry CAS, the entrant silently re-publishes the old
//! phase — the classic lost-transition bug in a packed-word phase machine.
//!
//! The detector is a phase-accounting oracle. With promotion disabled
//! (`promote_after` unreachable) the controller can only walk *down* the
//! four-level lattice `HW → aggressive → cautious → serial`, so a run can
//! publish at most **3** transitions, ever. A fourth transition is
//! impossible unless somebody un-published one — exactly what the seeded
//! bug does, after which the controller demotes again and the count
//! betrays it. (State corruption is also accepted as detection: the
//! un-publish can reopen optimistic entry while a serial transaction is
//! already running irrevocably.)
//!
//! These tests prove the phase battery earns its keep: the seeded lost
//! transition must be caught within a 16-seed budget, and the same sweep
//! must be green — and non-vacuous — without the mutation.
//!
//! Run with:
//!
//! ```text
//! cargo test -p hastm-check --features phase-seeded-bug --test phase_mutation
//! cargo test -p hastm-check --test phase_mutation   # unmutated: green
//! ```

use hastm::{ModePolicy, PhasedParams};
use hastm_check::{run_trial_observed, Combo, RunPlan, Sched, Trial, Workload};

/// Seeds the detection sweeps may spend, per the issue's detection bound.
const SEED_BUDGET: u64 = 16;

/// The lattice depth: with promotion disabled the phase can only demote
/// `HW → aggressive → cautious → serial`, so no honest run publishes more
/// transitions than this.
const LATTICE_DEPTH: u64 = 3;

/// Demote-only phased policy: hair-trigger demotion, promotion disabled
/// (no streak can reach `promote_after`), so the published transition
/// count is bounded by the lattice depth — the invariant the seeded
/// lost-transition bug cannot help but violate.
fn demote_only() -> ModePolicy {
    ModePolicy::Phased(PhasedParams {
        demote_after: 1,
        promote_after: 1 << 30,
        hysteresis: 1,
        hw_retry_budget: 2,
    })
}

/// The matrix points the mutation can bite on: contended workloads under
/// phased combos, where entry-CAS retries race demotion publications.
fn phased_trials(seed: u64) -> Vec<Trial> {
    let mut combo = Combo::parse("hastm:obj:full").expect("base combo parses");
    combo.policy = Some(demote_only());
    [Workload::Counter, Workload::Bst]
        .iter()
        .map(|&workload| Trial {
            combo,
            workload,
            seed,
            threads: 4,
            ops: 32,
            sched: Sched::Fuzzed,
        })
        .collect()
}

/// Runs one trial and returns `Some(detail)` when it betrays the lost
/// transition — by overflowing the demote-only lattice bound, or by
/// corrupting state outright.
fn detect(trial: &Trial) -> Option<String> {
    let (res, obs) = run_trial_observed(trial, &RunPlan::default());
    if let Err(detail) = res {
        return Some(format!("state corruption: {detail}"));
    }
    if obs.phase_transitions > LATTICE_DEPTH {
        return Some(format!(
            "transition-count oracle: {} transitions published under a \
             demote-only policy (lattice depth {LATTICE_DEPTH}); a \
             transition was lost and re-driven",
            obs.phase_transitions
        ));
    }
    None
}

#[cfg(feature = "phase-seeded-bug")]
mod mutated {
    use super::*;

    /// The seeded lost transition must be caught within the 16-seed
    /// budget. Seeds are swept in order so the budget is exact and the
    /// test deterministic.
    #[test]
    fn lost_transition_is_caught_within_the_seed_budget() {
        for seed in 0..SEED_BUDGET {
            for trial in phased_trials(seed) {
                if let Some(detail) = detect(&trial) {
                    eprintln!("caught at seed {seed}: {trial}: {detail}");
                    return;
                }
            }
        }
        panic!("the seeded lost transition survived {SEED_BUDGET} seeds undetected");
    }
}

#[cfg(not(feature = "phase-seeded-bug"))]
mod unmutated {
    use super::*;

    /// The exact sweep the mutated twin runs must be green without the
    /// mutation — the detector detects the bug, not its own noise.
    #[test]
    fn the_same_sweep_is_green_without_the_mutation() {
        for seed in 0..SEED_BUDGET {
            for trial in phased_trials(seed) {
                if let Some(detail) = detect(&trial) {
                    panic!("unmutated {trial} tripped the detector: {detail}");
                }
            }
        }
    }

    /// Non-vacuity: the sweep must walk the whole demote-only lattice
    /// (all 3 transitions) and commit inside the serial phase, so the
    /// mutated twin's entry-retry window is genuinely exercised right up
    /// against the bound the oracle enforces.
    #[test]
    fn the_sweep_exercises_the_full_lattice_and_the_serial_phase() {
        let mut max_transitions = 0u64;
        let mut serial_commits = 0u64;
        for seed in 0..SEED_BUDGET {
            for trial in phased_trials(seed) {
                let (res, obs) = run_trial_observed(&trial, &RunPlan::default());
                res.unwrap_or_else(|e| panic!("{trial}: {e}"));
                max_transitions = max_transitions.max(obs.phase_transitions);
                serial_commits += obs.serial_commits;
            }
        }
        assert_eq!(
            max_transitions, LATTICE_DEPTH,
            "the sweep never walked the full demote-only lattice"
        );
        assert!(serial_commits > 0, "the sweep never reached the serial phase");
    }
}
