//! Mutation test for the speculative gate's conflict detector.
//!
//! The `spec-seeded-bug` feature makes the simulator's speculation
//! conflict detector skip the last-writer check for one line class
//! (`line.0 % 8 < 2`, see `MemSystem::spec_check`). A canonical
//! invalidation or downgrade landing on such a line behind a speculated
//! op goes unnoticed, so a run that genuinely diverged from the quantum
//! schedule is erroneously *certified* — exactly the failure mode the
//! suite's per-seed cross-gate fingerprint comparison exists to catch.
//!
//! The mutated sweep must report a failure (a `gate divergence`, or an
//! invariant violation from a stale speculated read) within 16 seeds of
//! the deterministic schedule — the only schedule under which
//! speculation engages. The identical unmutated sweep must be green.
//!
//! Run with:
//!
//! ```text
//! cargo test -p hastm-check --features spec-seeded-bug --test spec_mutation
//! cargo test -p hastm-check --test spec_mutation   # unmutated: green
//! ```

use hastm_check::{run_suite, CheckConfig, Combo, Sched, SuiteReport, Workload};

/// The production suite over gate triplets of one STM combination, det
/// sched (speculation engaged), 16 seeds — the issue's detection budget.
fn det_sweep() -> SuiteReport {
    let combos: Vec<Combo> = ["stm:line:full", "stm:line:full:perop", "stm:line:full:spec"]
        .iter()
        .map(|s| Combo::parse(s).unwrap())
        .collect();
    let cfg = CheckConfig {
        seeds: 16,
        ops: 24,
        combos,
        workloads: vec![Workload::Counter, Workload::Map, Workload::Oltp],
        sched: Sched::Det,
        ..CheckConfig::default()
    };
    run_suite(&cfg, |_, _| {})
}

#[cfg(feature = "spec-seeded-bug")]
mod mutated {
    use super::*;

    /// The cross-gate fingerprint comparison must expose the seeded
    /// conflict-detector hole within the 16-seed budget.
    #[test]
    fn cross_gate_check_catches_the_seeded_conflict_skip_within_16_seeds() {
        let report = det_sweep();
        assert!(
            !report.failures.is_empty(),
            "the seeded speculation bug must be caught within 16 det-sched seeds"
        );
        // The hole shows up as a certified-but-divergent fingerprint (the
        // cross-gate check) or, when the stale speculated read corrupts
        // STM metadata, as a direct invariant violation — never as a
        // crash or hang.
        let detail = &report.failures[0].detail;
        assert!(
            detail.contains("gate divergence")
                || detail.contains("sum")
                || detail.contains("digest")
                || detail.contains("oracle")
                || detail.contains("balance")
                || detail.contains("nondeterministic"),
            "unexpected failure shape: {detail}"
        );
    }
}

#[cfg(not(feature = "spec-seeded-bug"))]
mod unmutated {
    use super::*;

    /// Without the mutation the identical sweep is green: the detector
    /// reacts to the planted hole, not to its own noise.
    #[test]
    fn det_sched_gate_triplets_are_green_without_the_mutation() {
        let report = det_sweep();
        assert!(
            report.failures.is_empty(),
            "unmutated det-sched sweep must be green: {:#?}",
            report.failures
        );
        assert_eq!(report.trials, 16 * 3 * 3);
    }
}
