//! Mutation tests for the opacity-violation (zombie) detection stack.
//!
//! The `seeded-zombie` feature forwards the core crate's `seeded-bug`
//! mutation: `TxThread::software_validate` returns success without walking
//! the read set, so both the periodic and the commit-time revalidation are
//! silently skipped. Doomed transactions become zombies — they keep
//! executing and *commit* on stale reads. These tests prove the two
//! independent detectors both catch that:
//!
//! * the serializability **oracle** (plus the OLTP ledger closed form)
//!   must flag a committed zombie inside the fault-injected traffic-mill
//!   scenarios of `hastm_check::zombie` within a fixed seed budget;
//! * the bounded-exhaustive **explorer** must find the resulting lost
//!   update on the tiny counter workload at 2 cores / bound 2.
//!
//! Run with:
//!
//! ```text
//! cargo test -p hastm-check --features seeded-zombie --test zombie_mutation
//! cargo test -p hastm-check --test zombie_mutation  # unmutated: green + coverage
//! ```

use hastm_check::zombie::{run_zombie_scenario, scenarios};

#[cfg(feature = "seeded-zombie")]
mod mutated {
    use super::*;

    /// The fault-injected OLTP scenarios must expose the revalidation skip
    /// within a bounded seed sweep: a committed zombie shows up as a
    /// serializability violation in the oracle log or as a ledger
    /// divergence from the closed form.
    #[test]
    fn oracle_catches_committed_zombies_within_budget() {
        const SEED_BUDGET: u64 = 8;
        let mut runs = 0u64;
        for seed in 0..SEED_BUDGET {
            for sc in scenarios(seed) {
                runs += 1;
                if let Err(detail) = run_zombie_scenario(&sc) {
                    assert!(
                        detail.contains("oracle") || detail.contains("ledger"),
                        "unexpected failure shape: {detail}"
                    );
                    return;
                }
            }
        }
        panic!("the oracle must catch a committed zombie within {runs} scenario runs");
    }

    /// The bounded-exhaustive enumerator must find the lost update the
    /// skipped validation permits on the tiny STM counter workload, at the
    /// issue's 2-core / bound-2 budget.
    #[test]
    fn explorer_finds_the_revalidation_skip() {
        use hastm_check::explore::{explore, ExploreConfig};
        use hastm_check::{Combo, Workload};

        let cfg = ExploreConfig {
            combo: Combo::parse("stm:obj:full").unwrap(),
            workload: Workload::Counter,
            threads: 2,
            ops: 2,
            bound: 2,
            max_runs: 500,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        let failure = report
            .failure
            .expect("the enumerator must find the zombie lost update");
        assert!(
            failure.detail.contains("counter sum") || failure.detail.contains("oracle"),
            "caught as a lost update or oracle violation: {}",
            failure.detail
        );
        assert!(failure.shrunk.len() <= failure.trace.len());
        assert!(failure.replay.contains("--trace"));
    }
}

#[cfg(not(feature = "seeded-zombie"))]
mod unmutated {
    use super::*;

    /// Without the mutation the very same scenario sweep is green — the
    /// detectors react to the planted bug, not to their own noise — and
    /// each run demonstrably exercises the mutated code path (nonzero
    /// software read-set walks).
    #[test]
    fn zombie_scenarios_are_green_with_coverage() {
        for seed in 0..4 {
            for sc in scenarios(seed) {
                let report = run_zombie_scenario(&sc).unwrap_or_else(|e| {
                    panic!(
                        "unmutated scenario must be green ({:?} seed {seed}): {e}",
                        sc.scheme
                    )
                });
                assert!(
                    report.validations_full > 0,
                    "{:?} seed {seed}: scenario must drive software revalidation",
                    sc.scheme
                );
                assert!(report.commits > 0);
            }
        }
    }

    /// The explorer leg is green unmutated at the mutated test's combo and
    /// bound, and still reports nontrivial interleaving coverage. The run
    /// budget is higher than the mutated leg's 500: proving absence means
    /// draining the whole bound-2 tree (~3k schedules for the STM counter),
    /// while the planted bug surfaces within the first few schedules.
    #[test]
    fn explorer_is_green_without_the_mutation() {
        use hastm_check::explore::{explore, ExploreConfig};
        use hastm_check::{Combo, Workload};

        let cfg = ExploreConfig {
            combo: Combo::parse("stm:obj:full").unwrap(),
            workload: Workload::Counter,
            threads: 2,
            ops: 2,
            bound: 2,
            max_runs: 4000,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        assert!(
            report.failure.is_none(),
            "unmutated explorer must be green: {:?}",
            report.failure
        );
        assert!(!report.truncated, "the bound-2 counter tree must drain");
        assert!(report.coverage.schedules.len() > 1);
        assert!(!report.coverage.conflict_orderings.is_empty());
    }
}
