//! Sim-vs-native differential suite for the OLTP traffic mill, mirroring
//! `native_differential.rs`: the mill runs on real host threads over the
//! TL2 runtime at 1/2/4/8 threads across 32 seeds with the mark filter on
//! and off, and the final ledger must match the closed-form expectation —
//! the same interleaving-independent reference the simulator backend is
//! checked against, so zero divergence here is zero sim-vs-native
//! divergence.
//!
//! These are the invariants `hastm-check --workload oltp --backend both`
//! sweeps; the test pins them into `cargo test` so a regression in either
//! backend's mill cannot land silently.

use hastm::Versioning;
use hastm_check::native::{run_native_oltp, run_native_suite, NativeCheckConfig, NativeTrial};
use hastm_check::{oltp_sim_digest, Workload};

const SEEDS: u64 = 32;

#[test]
fn oltp_matches_reference_across_seeds_threads_and_filter_modes() {
    let cfg = NativeCheckConfig {
        seeds: SEEDS,
        start_seed: 0,
        thread_counts: vec![1, 2, 4, 8],
        ops: 12,
        workloads: vec![Workload::Oltp],
        filter_modes: vec![true, false],
        versionings: vec![Versioning::Single, Versioning::Multi { k: 3 }],
        phased_modes: vec![false, true],
    };
    let expected = cfg.seeds
        * (cfg.thread_counts.len()
            * cfg.filter_modes.len()
            * cfg.versionings.len()
            * cfg.phased_modes.len()
            * cfg.workloads.len()) as u64;
    let report = run_native_suite(&cfg, |_, _| {});
    assert_eq!(report.trials, expected);
    assert!(
        report.failures.is_empty(),
        "{} native oltp divergence(s), first: {} — {}",
        report.failures.len(),
        report.failures[0].trial,
        report.failures[0].detail
    );
    assert!(report.stats.commits > 0);
}

#[test]
fn sim_and_native_digests_agree_directly() {
    // Belt and braces on top of the shared closed-form check: the exact
    // ledger digest the simulator's STM run produces must equal the one
    // the native TL2 run produces for the same (seed, threads) point.
    for seed in 0..6u64 {
        for threads in [2usize, 4] {
            let trial = NativeTrial {
                workload: Workload::Oltp,
                seed,
                threads,
                ops: 12,
                mark_filter: true,
                versioning: Versioning::Single,
                phased: false,
            };
            let native = run_native_oltp(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
            let sim = oltp_sim_digest(seed, threads, 12);
            assert_eq!(
                native.state, sim,
                "seed {seed} threads {threads}: native ledger digest diverges from the sim's"
            );
        }
    }
}

#[test]
fn filter_on_and_off_agree_on_the_ledger() {
    for seed in 0..8u64 {
        let outcome = |mark_filter| {
            run_native_oltp(&NativeTrial {
                workload: Workload::Oltp,
                seed,
                threads: 4,
                ops: 16,
                mark_filter,
                versioning: Versioning::Single,
                phased: false,
            })
            .unwrap_or_else(|e| panic!("oltp seed={seed}: {e}"))
        };
        assert_eq!(
            outcome(true).state,
            outcome(false).state,
            "oltp seed={seed}: filter changed the final ledger"
        );
    }
}

#[test]
fn oversubscribed_mill_still_converges() {
    // 8 host threads on any core count forces preemption mid-transaction
    // (including inside the open-loop idle spins); TL2 must still converge
    // to the closed-form ledger.
    let trial = NativeTrial {
        workload: Workload::Oltp,
        seed: 99,
        threads: 8,
        ops: 24,
        mark_filter: true,
        versioning: Versioning::Multi { k: 3 },
        phased: false,
    };
    run_native_oltp(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
}
