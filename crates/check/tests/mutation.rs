//! Mutation tests for the schedule-exploration tooling.
//!
//! The `seeded-bug` feature makes the simulator's HTM commit split its
//! violation re-check and write-back into two gated ops — the classic
//! commit TOCTOU lost-update race (see `hastm-sim`'s `Cpu::commit_stores`).
//! These tests prove the exploration tooling earns its keep: PCT must find
//! the race within a fixed run budget, and the bounded-exhaustive
//! enumerator must find it, shrink it, and hand back a reproducing trace.
//!
//! Why this mutation and not PR 1's load+watch split: in every sweepable
//! configuration the HTM path runs under the hybrid scheme, whose barriers
//! read (and thereby watch) the transaction record *before* touching the
//! data word — a remote commit landing in a data-word load→watch window
//! bumps the already-watched record and is caught at commit anyway, so
//! that race is benign here. The commit-side split is not maskable: the
//! violation arrives after the check and before the write-back, and the
//! stale write-back silently overwrites the remote commit.
//!
//! Run with:
//!
//! ```text
//! cargo test -p hastm-check --features seeded-bug --test mutation
//! cargo test -p hastm-check --test mutation   # unmutated: green + coverage
//! ```

use hastm_check::explore::{explore, ExploreConfig};
use hastm_check::{check_trial, Combo, Sched, Trial, Workload};

/// The matrix points the mutation can bite on: only the `hytm` scheme
/// commits through the simulator's HTM commit primitive.
fn hytm_trials(seed: u64, sched: Sched) -> Vec<Trial> {
    ["hytm:obj:full", "hytm:line:full"]
        .iter()
        .flat_map(|combo| {
            [Workload::Counter, Workload::Bst, Workload::BTree]
                .iter()
                .map(|&workload| Trial {
                    combo: Combo::parse(combo).unwrap(),
                    workload,
                    seed,
                    threads: 3,
                    ops: 8,
                    sched,
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(feature = "seeded-bug")]
mod mutated {
    use super::*;

    /// PCT at depth 3 must expose the seeded commit race within 200 runs
    /// (the issue's detection budget). Each trial is one run; seeds are
    /// swept in order so the budget is exact and the test deterministic.
    #[test]
    fn pct_finds_the_seeded_commit_race_within_budget() {
        const BUDGET: u64 = 200;
        let mut runs = 0u64;
        let mut found = None;
        'sweep: for seed in 0.. {
            for trial in hytm_trials(seed, Sched::Pct { depth: 3 }) {
                if runs == BUDGET {
                    break 'sweep;
                }
                runs += 1;
                if let Some(detail) = check_trial(&trial, false) {
                    found = Some((trial, detail));
                    break 'sweep;
                }
            }
        }
        let (trial, detail) = found
            .unwrap_or_else(|| panic!("PCT must find the seeded commit race within {BUDGET} runs"));
        assert!(runs <= BUDGET, "{runs} runs exceeded the {BUDGET} budget");
        // The race manifests as state corruption (a lost update or a
        // serializability violation), not as a crash or a hang.
        assert!(
            detail.contains("sum") || detail.contains("digest") || detail.contains("oracle"),
            "unexpected failure shape from {trial}: {detail}"
        );
    }

    /// The bounded-exhaustive enumerator must find the race on the tiny
    /// counter workload, shrink the trace, and return a trace that still
    /// reproduces the failure when replayed from scratch.
    #[test]
    fn explorer_finds_shrinks_and_replays_the_seeded_commit_race() {
        let cfg = ExploreConfig {
            combo: Combo::parse("hytm:obj:full").unwrap(),
            workload: Workload::Counter,
            threads: 2,
            ops: 2,
            bound: 2,
            max_runs: 500,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        let failure = report
            .failure
            .expect("the enumerator must find the seeded commit race");
        assert!(
            failure.detail.contains("counter sum"),
            "caught as a lost update: {}",
            failure.detail
        );
        // Shrinking never grows the trace, and the shrunk trace still
        // fails when replayed from scratch.
        assert!(failure.shrunk.len() <= failure.trace.len());
        let replayed = hastm_check::run_trial_plan(
            &cfg.trial(),
            &hastm_check::RunPlan {
                preemptions: failure.shrunk.clone(),
                ..hastm_check::RunPlan::default()
            },
        );
        assert!(
            replayed.is_err(),
            "replaying the shrunk trace must reproduce the failure"
        );
        assert!(failure.replay.contains("--trace"));
    }
}

#[cfg(not(feature = "seeded-bug"))]
mod unmutated {
    use super::*;

    /// Without the mutation the very same sweeps are green — the detectors
    /// react to the bug, not to their own noise — and still report
    /// nontrivial interleaving coverage.
    #[test]
    fn pct_and_explorer_are_green_without_the_mutation() {
        for seed in 0..4 {
            for trial in hytm_trials(seed, Sched::Pct { depth: 3 }) {
                assert_eq!(check_trial(&trial, false), None, "green: {trial}");
            }
        }
        let cfg = ExploreConfig {
            combo: Combo::parse("hytm:obj:full").unwrap(),
            workload: Workload::Counter,
            threads: 2,
            ops: 2,
            bound: 2,
            max_runs: 500,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        assert!(
            report.failure.is_none(),
            "unmutated explorer must be green: {:?}",
            report.failure
        );
        assert!(!report.truncated, "the bound-2 counter tree must drain");
        assert!(report.coverage.schedules.len() > 1);
        assert!(!report.coverage.conflict_orderings.is_empty());
    }
}
