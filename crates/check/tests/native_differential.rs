//! Sim-vs-native differential regression suite: every check workload
//! (counter, hash map, BST, B-tree) runs on real host threads over the
//! TL2 runtime at 1/2/4/8 threads across 32 seeds, and its final state
//! must be identical to the simulator's sequential reference for the
//! same operation streams.
//!
//! These are the invariants `hastm-check --backend both` sweeps; the test
//! pins them into `cargo test` so a native-runtime regression cannot land
//! silently. Trial sizes are kept small — the property needs many
//! (seed, thread-count) points, not long streams.

use hastm::Versioning;
use hastm_check::native::{run_native_suite, run_native_trial, NativeCheckConfig, NativeTrial};
use hastm_check::Workload;

const SEEDS: u64 = 32;

fn sweep(workloads: Vec<Workload>, thread_counts: Vec<usize>, ops: u64) {
    let cfg = NativeCheckConfig {
        seeds: SEEDS,
        start_seed: 0,
        thread_counts,
        ops,
        workloads,
        filter_modes: vec![true, false],
        versionings: vec![Versioning::Single, Versioning::Multi { k: 3 }],
        phased_modes: vec![false, true],
    };
    let expected = cfg.seeds
        * (cfg.thread_counts.len()
            * cfg.filter_modes.len()
            * cfg.versionings.len()
            * cfg.phased_modes.len()
            * cfg.workloads.len()) as u64;
    let report = run_native_suite(&cfg, |_, _| {});
    assert_eq!(report.trials, expected);
    assert!(
        report.failures.is_empty(),
        "{} native divergence(s), first: {} — {}",
        report.failures.len(),
        report.failures[0].trial,
        report.failures[0].detail
    );
    assert!(report.stats.commits > 0);
}

#[test]
fn counter_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::Counter], vec![1, 2, 4, 8], 24);
}

#[test]
fn hash_map_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::Map], vec![1, 2, 4, 8], 12);
}

#[test]
fn bst_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::Bst], vec![1, 2, 4, 8], 12);
}

#[test]
fn btree_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::BTree], vec![1, 2, 4, 8], 12);
}

#[test]
fn filter_on_and_off_agree_on_final_state() {
    // The mark-bit filter emulation is a pure fast path: for identical
    // trials it must never change the final state either backend reports.
    for workload in Workload::ALL {
        for seed in 0..4 {
            let outcome = |mark_filter| {
                run_native_trial(&NativeTrial {
                    workload,
                    seed,
                    threads: 2,
                    ops: 16,
                    mark_filter,
                    versioning: Versioning::Single,
                    phased: false,
                })
                .unwrap_or_else(|e| panic!("{workload:?} seed={seed}: {e}"))
            };
            assert_eq!(
                outcome(true).state,
                outcome(false).state,
                "{workload:?} seed={seed}: filter changed the final state"
            );
        }
    }
}

#[test]
fn single_and_multi_versioning_agree_on_final_state() {
    // Snapshot reads are a pure read-path optimisation: for identical
    // trials the k-deep version rings must never change the final state a
    // writer-visible observer reports. (The shared reference check inside
    // `run_native_trial` already pins each run to the sim's sequential
    // state; this additionally pins the two versioning modes to each
    // other.)
    for workload in Workload::ALL {
        for seed in 0..4 {
            let outcome = |versioning| {
                run_native_trial(&NativeTrial {
                    workload,
                    seed,
                    threads: 4,
                    ops: 16,
                    mark_filter: true,
                    versioning,
                    phased: false,
                })
                .unwrap_or_else(|e| panic!("{workload:?} seed={seed}: {e}"))
            };
            assert_eq!(
                outcome(Versioning::Single).state,
                outcome(Versioning::Multi { k: 3 }).state,
                "{workload:?} seed={seed}: version rings changed the final state"
            );
        }
    }
}

#[test]
fn multi_version_ro_scans_sweep_abort_free_across_thread_counts() {
    // The zero-RO-abort guarantee at every thread count the differential
    // suite exercises: under Multi(k) the map workload's read-only gets
    // and scans must commit on their snapshot without a single abort.
    // `run_native_trial` itself fails the trial on any RO abort under
    // Multi; this sweep drives that check across 1/2/4/8 host threads.
    let mut ro_commits = 0u64;
    for threads in [1usize, 2, 4, 8] {
        for seed in 0..6 {
            let trial = NativeTrial {
                workload: Workload::Map,
                seed,
                threads,
                ops: 16,
                mark_filter: true,
                versioning: Versioning::Multi { k: 3 },
                phased: false,
            };
            let out = run_native_trial(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
            assert!(out.stats.commits > 0, "{trial}: no commits recorded");
            assert_eq!(out.stats.ro_aborts, 0, "{trial}: read-only snapshot aborted");
            ro_commits += out.stats.ro_commits;
        }
    }
    assert!(
        ro_commits > 0,
        "the sweep never took the read-only snapshot path"
    );
}

#[test]
fn phased_and_unphased_agree_on_final_state() {
    // The phase controller may reorder and serialize execution, but it
    // must never change what the workloads commit — phased and unphased
    // twins of a trial land on the same final state (both are already
    // pinned to the simulated sequential reference inside
    // `run_native_trial`; this pins them to each other too).
    for workload in Workload::ALL {
        for seed in 0..4 {
            let outcome = |phased| {
                run_native_trial(&NativeTrial {
                    workload,
                    seed,
                    threads: 4,
                    ops: 16,
                    mark_filter: true,
                    versioning: Versioning::Single,
                    phased,
                })
                .unwrap_or_else(|e| panic!("{workload:?} seed={seed}: {e}"))
            };
            assert_eq!(
                outcome(true).state,
                outcome(false).state,
                "{workload:?} seed={seed}: the phase controller changed the final state"
            );
        }
    }
}

#[test]
fn oversubscribed_thread_count_still_converges() {
    // 8 host threads on any core count (this suite also runs on 1-CPU
    // hosts) forces preemption mid-transaction; TL2 must still converge
    // to the reference state.
    for workload in [Workload::Counter, Workload::Bst] {
        for versioning in [Versioning::Single, Versioning::Multi { k: 3 }] {
            let trial = NativeTrial {
                workload,
                seed: 99,
                threads: 8,
                ops: 32,
                mark_filter: true,
                versioning,
                phased: false,
            };
            run_native_trial(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
        }
    }
}
