//! Sim-vs-native differential regression suite: every check workload
//! (counter, hash map, BST, B-tree) runs on real host threads over the
//! TL2 runtime at 1/2/4/8 threads across 32 seeds, and its final state
//! must be identical to the simulator's sequential reference for the
//! same operation streams.
//!
//! These are the invariants `hastm-check --backend both` sweeps; the test
//! pins them into `cargo test` so a native-runtime regression cannot land
//! silently. Trial sizes are kept small — the property needs many
//! (seed, thread-count) points, not long streams.

use hastm_check::native::{run_native_suite, run_native_trial, NativeCheckConfig, NativeTrial};
use hastm_check::Workload;

const SEEDS: u64 = 32;

fn sweep(workloads: Vec<Workload>, thread_counts: Vec<usize>, ops: u64) {
    let cfg = NativeCheckConfig {
        seeds: SEEDS,
        start_seed: 0,
        thread_counts,
        ops,
        workloads,
        filter_modes: vec![true, false],
    };
    let expected =
        cfg.seeds * (cfg.thread_counts.len() * cfg.filter_modes.len() * cfg.workloads.len()) as u64;
    let report = run_native_suite(&cfg, |_, _| {});
    assert_eq!(report.trials, expected);
    assert!(
        report.failures.is_empty(),
        "{} native divergence(s), first: {} — {}",
        report.failures.len(),
        report.failures[0].trial,
        report.failures[0].detail
    );
    assert!(report.stats.commits > 0);
}

#[test]
fn counter_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::Counter], vec![1, 2, 4, 8], 24);
}

#[test]
fn hash_map_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::Map], vec![1, 2, 4, 8], 12);
}

#[test]
fn bst_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::Bst], vec![1, 2, 4, 8], 12);
}

#[test]
fn btree_matches_reference_across_seeds_and_threads() {
    sweep(vec![Workload::BTree], vec![1, 2, 4, 8], 12);
}

#[test]
fn filter_on_and_off_agree_on_final_state() {
    // The mark-bit filter emulation is a pure fast path: for identical
    // trials it must never change the final state either backend reports.
    for workload in Workload::ALL {
        for seed in 0..4 {
            let outcome = |mark_filter| {
                run_native_trial(&NativeTrial {
                    workload,
                    seed,
                    threads: 2,
                    ops: 16,
                    mark_filter,
                })
                .unwrap_or_else(|e| panic!("{workload:?} seed={seed}: {e}"))
            };
            assert_eq!(
                outcome(true).state,
                outcome(false).state,
                "{workload:?} seed={seed}: filter changed the final state"
            );
        }
    }
}

#[test]
fn oversubscribed_thread_count_still_converges() {
    // 8 host threads on any core count (this suite also runs on 1-CPU
    // hosts) forces preemption mid-transaction; TL2 must still converge
    // to the reference state.
    for workload in [Workload::Counter, Workload::Bst] {
        let trial = NativeTrial {
            workload,
            seed: 99,
            threads: 8,
            ops: 32,
            mark_filter: true,
        };
        run_native_trial(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
    }
}
