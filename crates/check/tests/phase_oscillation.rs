//! Oscillation stress for the phased global-mode controller: fault
//! injection plus PCT schedules hunt for HW↔SW phase ping-pong, and every
//! scenario is held to the hysteresis-derived transition ceiling.
//!
//! The phase controller ignores events until `hysteresis` of them have
//! accumulated since the last transition, so a run that observes `E`
//! commit/abort events can publish at most `E / hysteresis` transitions —
//! no adversarial schedule or fault storm may exceed that. The campaign
//! sweeps fuzzed and PCT schedules crossed with spurious-abort and
//! back-invalidation storms (the two fault kinds that feed the
//! capacity-abort heuristics) over the contended workloads and asserts:
//!
//! * **correctness under storms** — every trial still matches its
//!   sequential reference (the phase machine never trades safety for
//!   throughput, even while thrashing);
//! * **per-scenario ceiling** — `transitions ≤ events/hysteresis + 1` for
//!   every single trial;
//! * **campaign rate ceiling** — the aggregate rate stays under 80
//!   transitions per 1000 transaction events (hysteresis 16 caps the
//!   theoretical worst case at 62.5/1k);
//! * **non-vacuity** — the campaign provokes real transitions and reaches
//!   the serial phase somewhere, so the ceilings are tested, not idle.
//!
//! The worst scenario the campaign finds is additionally pinned as its own
//! regression test below.

use hastm::{ModePolicy, PhasedParams};
use hastm_check::{run_trial_plan, Combo, RunPlan, Sched, Trial, Workload};
use hastm_sim::{FaultEvent, FaultKind};

/// Hysteresis window under stress; the ceilings below are derived from it.
const HYSTERESIS: u32 = 16;

/// Hair-trigger demotion with slow promotion under a wide hysteresis
/// window: the adversarial sweet spot — storms can demote on two bad
/// events, so only the hysteresis window itself limits the oscillation.
fn stress_policy() -> ModePolicy {
    ModePolicy::Phased(PhasedParams {
        demote_after: 2,
        promote_after: 4,
        hysteresis: HYSTERESIS,
        hw_retry_budget: 2,
    })
}

fn stress_combo() -> Combo {
    let mut combo = Combo::parse("hastm:obj:full").expect("base combo parses");
    combo.policy = Some(stress_policy());
    combo
}

/// One fault-storm shape, applied to the measured run only.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Storm {
    /// Unperturbed (schedule jitter only).
    None,
    /// Spurious watch violations every `period` gated ops, rotating over
    /// the cores — the interrupt/TLB-shootdown pattern that manufactures
    /// capacity-class aborts out of thin air.
    Spurious { period: u64 },
    /// Inclusive-L2 back-invalidations every `period` gated ops — capacity
    /// pressure that evicts marked lines under every core at once.
    BackInvalidate { period: u64 },
}

impl Storm {
    fn slug(self) -> String {
        match self {
            Storm::None => "none".into(),
            Storm::Spurious { period } => format!("spurious@{period}"),
            Storm::BackInvalidate { period } => format!("backinval@{period}"),
        }
    }

    fn plan(self, cores: usize) -> RunPlan {
        let mut plan = RunPlan::default();
        match self {
            Storm::None => {}
            Storm::Spurious { period } => {
                for i in 0..24u64 {
                    plan.faults.push(FaultEvent {
                        at_op: (i + 1) * period,
                        core: (i as usize) % cores,
                        kind: FaultKind::SpuriousAbort,
                    });
                }
            }
            Storm::BackInvalidate { period } => {
                for i in 0..24u64 {
                    plan.faults.push(FaultEvent {
                        at_op: (i + 1) * period,
                        core: 0,
                        kind: FaultKind::BackInvalidate { nth: i as usize },
                    });
                }
            }
        }
        plan
    }
}

/// One campaign point and what it observed.
#[derive(Clone, Debug)]
struct Scenario {
    workload: Workload,
    sched: Sched,
    storm: Storm,
    seed: u64,
    transitions: u64,
    events: u64,
    serial_commits: u64,
}

impl Scenario {
    /// Transitions per 1000 transaction events (0 when nothing ran).
    fn rate_per_1k(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.transitions as f64 * 1000.0 / self.events as f64
        }
    }
}

fn run_scenario(workload: Workload, sched: Sched, storm: Storm, seed: u64) -> Scenario {
    let threads = 4;
    let trial = Trial {
        combo: stress_combo(),
        workload,
        seed,
        threads,
        ops: 24,
        sched,
    };
    let plan = storm.plan(threads);
    let (fp, obs) = run_trial_plan(&trial, &plan).unwrap_or_else(|e| {
        panic!(
            "{} storm={} diverged under stress: {e}",
            trial,
            storm.slug()
        )
    });
    // The fingerprint is only reachable when the reference check passed;
    // make the safety claim explicit anyway.
    assert!(fp.state != 0 || workload == Workload::Counter);
    Scenario {
        workload,
        sched,
        storm,
        seed,
        transitions: obs.phase_transitions,
        events: obs.commits + obs.aborts,
        serial_commits: obs.serial_commits,
    }
}

fn campaign() -> Vec<Scenario> {
    let mut out = Vec::new();
    for workload in [Workload::Counter, Workload::Bst] {
        for sched in [Sched::Fuzzed, Sched::Pct { depth: 3 }, Sched::Pct { depth: 8 }] {
            for storm in [
                Storm::None,
                Storm::Spurious { period: 40 },
                Storm::BackInvalidate { period: 50 },
            ] {
                for seed in 0..4 {
                    out.push(run_scenario(workload, sched, storm, seed));
                }
            }
        }
    }
    out
}

#[test]
fn oscillation_campaign_respects_the_transition_ceiling() {
    let scenarios = campaign();

    // Per-scenario hard ceiling: the hysteresis window admits at most one
    // transition per `HYSTERESIS` events (+1 slack for the window in
    // flight when the run ends).
    for s in &scenarios {
        assert!(
            s.transitions <= s.events / u64::from(HYSTERESIS) + 1,
            "{:?} {} storm={} seed={}: {} transitions over {} events \
             breaches the hysteresis-{HYSTERESIS} ceiling",
            s.workload,
            s.sched,
            s.storm.slug(),
            s.seed,
            s.transitions,
            s.events,
        );
    }

    // Campaign-wide rate ceiling: hysteresis 16 bounds the theoretical
    // worst case at 62.5 transitions per 1k events; 80/1k leaves room for
    // end-of-run windows without admitting real ping-pong (an uncontrolled
    // oscillator would exceed 200/1k).
    let transitions: u64 = scenarios.iter().map(|s| s.transitions).sum();
    let events: u64 = scenarios.iter().map(|s| s.events).sum();
    let rate = transitions as f64 * 1000.0 / events as f64;
    assert!(
        rate <= 80.0,
        "campaign oscillates at {rate:.1} transitions/1k events (ceiling 80)"
    );

    // Non-vacuity: the storms must actually provoke the controller, and
    // at least one scenario must drain into the serial phase — otherwise
    // the ceilings above were never exercised.
    assert!(
        transitions > 0,
        "no scenario produced a single phase transition; the stress is idle"
    );
    assert!(
        scenarios.iter().any(|s| s.serial_commits > 0),
        "no scenario reached the serial phase"
    );

    // Report the worst offender so a future ceiling breach names its
    // scenario immediately.
    let worst = scenarios
        .iter()
        .max_by(|a, b| a.rate_per_1k().total_cmp(&b.rate_per_1k()))
        .expect("campaign is non-empty");
    eprintln!(
        "worst oscillation: {:?} {} storm={} seed={} -> {} transitions / {} events ({:.1}/1k)",
        worst.workload,
        worst.sched,
        worst.storm.slug(),
        worst.seed,
        worst.transitions,
        worst.events,
        worst.rate_per_1k()
    );
}

#[test]
fn worst_known_scenario_stays_bounded() {
    // The campaign's worst offender, pinned as a standalone regression:
    // the BST under a fuzzed schedule with a spurious-abort storm (9
    // transitions over 146 events, 61.6/1k — right at the theoretical
    // ceiling). The sim is deterministic, so this scenario reproduces
    // exactly; if a controller change pushes it past the hysteresis
    // ceiling, this test names the breach without re-running the whole
    // campaign.
    let s = run_scenario(Workload::Bst, Sched::Fuzzed, Storm::Spurious { period: 40 }, 2);
    assert!(
        s.transitions <= s.events / u64::from(HYSTERESIS) + 1,
        "pinned worst scenario breached the ceiling: {} transitions over {} events",
        s.transitions,
        s.events
    );
    assert!(
        s.rate_per_1k() <= 80.0,
        "pinned worst scenario oscillates at {:.1}/1k",
        s.rate_per_1k()
    );
}
