//! Native-backend differential checks: the same invariant-bearing
//! workloads as the simulator suite, run on **host threads** over the
//! [`hastm_native`] TL2 runtime and cross-checked against the simulator's
//! sequential reference.
//!
//! The native backend trades the simulator's deterministic schedule
//! exploration for *real* interleavings, so only the
//! interleaving-independent halves of the invariants apply:
//!
//! * **counter** — the final sum must be exactly `threads × ops`;
//! * **partitioned maps** — each thread's keys stay inside its own
//!   partition, so the final abstract map state (its digest) must equal a
//!   **simulated sequential reference** applying the identical operation
//!   streams — the sim-vs-native differential at the heart of
//!   `hastm-check --backend both`.
//!
//! There is no shrinking here (host schedules are not replayable); a
//! failure reports the exact trial parameters instead, which rerun the
//! same streams under fresh host interleavings.

use hastm::{Granularity, ObjRef, PhasedParams, StmRuntime, TmExec, Versioning};
use hastm_locks::SpinLock;
use hastm_native::{NativeConfig, NativeExec, NativeRuntime, NativeStats};
use hastm_sim::{Machine, MachineConfig};
use hastm_workloads::{Scheme, Structure, ThreadExec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    apply_stream, create_map, fnv_pair, map_digest, stream, Workload, COUNTER_CELLS,
    KEYS_PER_THREAD,
};

/// One native differential trial.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NativeTrial {
    /// Workload under test.
    pub workload: Workload,
    /// Stream seed (shared with the simulated reference).
    pub seed: u64,
    /// Host threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops: u64,
    /// Whether the native mark-bit filter emulation is enabled.
    pub mark_filter: bool,
    /// Version retention of the TL2 runtime. Under [`Versioning::Multi`]
    /// the map workloads' lookups run as read-only snapshot transactions,
    /// which must commit abort-free.
    pub versioning: Versioning,
    /// Whether the PhTM-style global phase controller runs (with the
    /// hair-trigger [`phased_params`], so small trials actually sweep the
    /// lattice — serial-lock phase included — and recover).
    pub phased: bool,
}

/// Phase parameters for phased native trials: hair-trigger demotion with
/// a short recovery window, so even a 16-op trial can descend to the
/// serial phase and climb back out.
pub fn phased_params() -> PhasedParams {
    PhasedParams {
        demote_after: 1,
        promote_after: 4,
        hysteresis: 2,
        hw_retry_budget: 2,
    }
}

impl std::fmt::Display for NativeTrial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "native/{} seed={} threads={} ops={} filter={} v={}{}",
            self.workload.slug(),
            self.seed,
            self.threads,
            self.ops,
            if self.mark_filter { "on" } else { "off" },
            self.versioning.depth().max(1),
            if self.phased { " phased" } else { "" },
        )
    }
}

/// Outcome of one passing native trial.
#[derive(Clone, Debug)]
pub struct NativeOutcome {
    /// Final-state digest (counter cell fold or map digest).
    pub state: u64,
    /// Merged TL2 counters across the worker threads.
    pub stats: NativeStats,
}

fn small_runtime(mark_filter: bool, versioning: Versioning, phased: bool) -> NativeRuntime {
    NativeRuntime::new(NativeConfig {
        // The check workloads are tiny; a small heap keeps trials cheap.
        heap_words: 1 << 16,
        stripes: 1 << 12,
        mark_filter,
        versioning,
        phased: phased.then(phased_params),
        ..NativeConfig::default()
    })
}

fn run_native_counter(trial: &NativeTrial) -> Result<NativeOutcome, String> {
    let rt = small_runtime(trial.mark_filter, trial.versioning, trial.phased);
    let cells: Vec<ObjRef> = {
        let mut ex = NativeExec::new(&rt);
        (0..COUNTER_CELLS)
            .map(|_| {
                let cell = ex.alloc_obj(1);
                ex.atomic(|ctx| ctx.ctx_write(cell, 0, 0));
                cell
            })
            .collect()
    };

    let stats: Vec<NativeStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..trial.threads)
            .map(|tid| {
                let rt = &rt;
                let cells = &cells;
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    let mut rng = StdRng::seed_from_u64(trial.seed ^ 0xc0de ^ ((tid as u64) << 24));
                    for _ in 0..trial.ops {
                        let cell = cells[rng.gen_range(0..COUNTER_CELLS as u64) as usize];
                        ex.atomic(|ctx| {
                            let v = ctx.ctx_read(cell, 0)?;
                            ctx.ctx_write(cell, 0, v + 1)
                        });
                    }
                    ex.stats().clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let expected = trial.threads as u64 * trial.ops;
    let mut total = 0u64;
    let mut state = 0u64;
    for (i, cell) in cells.iter().enumerate() {
        let v = rt.peek(cell.word(0));
        total += v;
        state = state.wrapping_add(fnv_pair(i as u64, v));
    }
    if total != expected {
        return Err(format!(
            "native counter sum {total} != expected {expected} ({} increments lost)",
            expected as i64 - total as i64
        ));
    }
    let mut merged = NativeStats::default();
    for s in &stats {
        merged.merge(s);
    }
    Ok(NativeOutcome {
        state,
        stats: merged,
    })
}

/// The simulated sequential reference digest for the partitioned map
/// streams — the **simulator side** of the sim-vs-native differential.
pub(crate) fn sim_reference_digest(
    structure: Structure,
    seed: u64,
    threads: usize,
    ops: u64,
) -> u64 {
    let streams: Vec<_> = (0..threads).map(|t| stream(seed, t, ops)).collect();
    let key_span = threads as u64 * KEYS_PER_THREAD;
    let mut machine = Machine::new(MachineConfig::with_cores(1));
    let runtime = StmRuntime::new(
        &mut machine,
        Scheme::Sequential.stm_config(Granularity::CacheLine, 1),
    );
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;
    let streams_ref = &streams;
    let (digest, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        let map = ex.atomic(|ctx| create_map(ctx, structure));
        for s in streams_ref {
            apply_stream(&mut ex, &map, s);
        }
        map_digest(&mut ex, &map, key_span)
    });
    digest
}

fn run_native_map(trial: &NativeTrial, structure: Structure) -> Result<NativeOutcome, String> {
    let expected = sim_reference_digest(structure, trial.seed, trial.threads, trial.ops);
    let streams: Vec<_> = (0..trial.threads)
        .map(|t| stream(trial.seed, t, trial.ops))
        .collect();
    let key_span = trial.threads as u64 * KEYS_PER_THREAD;

    let rt = small_runtime(trial.mark_filter, trial.versioning, trial.phased);
    let map = {
        let mut ex = NativeExec::new(&rt);
        ex.atomic(|ctx| create_map(ctx, structure))
    };
    let stats: Vec<NativeStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..trial.threads)
            .map(|tid| {
                let rt = &rt;
                let ops = &streams[tid];
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    apply_stream(&mut ex, &map, ops);
                    ex.stats().clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let digest = {
        let mut ex = NativeExec::new(&rt);
        map_digest(&mut ex, &map, key_span)
    };
    if digest != expected {
        return Err(format!(
            "native map digest {digest:#018x} != simulated sequential reference {expected:#018x}"
        ));
    }
    let mut merged = NativeStats::default();
    for s in &stats {
        merged.merge(s);
    }
    // Zero-abort guarantee of the native snapshot path (the map streams'
    // gets run through `atomic_ro`, so multi-version trials exercise it).
    if trial.versioning.is_multi() && merged.ro_aborts > 0 {
        return Err(format!(
            "{} native read-only snapshot aborts under {:?} (snapshot reads must be abort-free)",
            merged.ro_aborts, trial.versioning
        ));
    }
    Ok(NativeOutcome {
        state: digest,
        stats: merged,
    })
}

/// Runs the OLTP mill on the native TL2 backend for one trial and checks
/// the final ledger against the closed-form expectation.
///
/// # Errors
///
/// Returns the violated invariant: total-balance conservation or a
/// per-account divergence from the closed-form ledger.
pub fn run_native_oltp(trial: &NativeTrial) -> Result<NativeOutcome, String> {
    use hastm_workloads::oltp;

    // Same trial-derived mill parameters as the simulator's `run_oltp`, so
    // the closed-form ledger both runners check against is the same — a
    // native trial diverging from it is exactly a sim-vs-native
    // final-state divergence.
    let params = crate::oltp_params(trial.seed, trial.threads, trial.ops);
    let expected = oltp::expected_balances(&params);
    let result = oltp::run_oltp_native(&oltp::OltpNativeConfig {
        oltp: params,
        native: NativeConfig {
            heap_words: 1 << 16,
            stripes: 1 << 12,
            mark_filter: trial.mark_filter,
            versioning: trial.versioning,
            phased: trial.phased.then(phased_params),
            ..NativeConfig::default()
        },
    });
    if oltp::total_balance(&result.balances) != oltp::total_balance(&expected) {
        return Err(format!(
            "native oltp total balance {} != conserved total {}",
            oltp::total_balance(&result.balances),
            oltp::total_balance(&expected)
        ));
    }
    if let Some(key) = (0..expected.len()).find(|&k| result.balances[k] != expected[k]) {
        return Err(format!(
            "native oltp account {key} balance {} != ledger {} (first of {} divergent accounts)",
            result.balances[key],
            expected[key],
            result
                .balances
                .iter()
                .zip(&expected)
                .filter(|(a, b)| a != b)
                .count()
        ));
    }
    Ok(NativeOutcome {
        state: result.digest,
        stats: result.stats,
    })
}

/// Runs one native trial.
///
/// # Errors
///
/// Returns the violated invariant (lost counter increments, map digest
/// divergence from the simulated sequential reference, or OLTP ledger
/// divergence from the closed-form expected balances).
pub fn run_native_trial(trial: &NativeTrial) -> Result<NativeOutcome, String> {
    match trial.workload {
        Workload::Counter => run_native_counter(trial),
        Workload::Map => run_native_map(trial, Structure::HashTable),
        Workload::Bst => run_native_map(trial, Structure::Bst),
        Workload::BTree => run_native_map(trial, Structure::BTree),
        Workload::Oltp => run_native_oltp(trial),
    }
}

/// Configuration for a native suite sweep.
#[derive(Clone, Debug)]
pub struct NativeCheckConfig {
    /// Number of consecutive seeds to sweep.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Host thread counts to sweep.
    pub thread_counts: Vec<usize>,
    /// Operations per thread per trial.
    pub ops: u64,
    /// Workloads to run (defaults to all five).
    pub workloads: Vec<Workload>,
    /// Mark-filter settings to sweep (defaults to both).
    pub filter_modes: Vec<bool>,
    /// Versioning settings to sweep (defaults to single-version and a
    /// 3-deep multi-version ring).
    pub versionings: Vec<Versioning>,
    /// Phase-controller settings to sweep (defaults to both off and on).
    pub phased_modes: Vec<bool>,
}

impl Default for NativeCheckConfig {
    fn default() -> Self {
        NativeCheckConfig {
            seeds: 32,
            start_seed: 0,
            thread_counts: vec![1, 2, 4, 8],
            ops: 16,
            workloads: Workload::ALL.to_vec(),
            filter_modes: vec![true, false],
            versionings: vec![Versioning::Single, Versioning::Multi { k: 3 }],
            phased_modes: vec![false, true],
        }
    }
}

/// One native invariant violation (not shrinkable — host interleavings
/// are not replayable — so the trial parameters are the repro).
#[derive(Clone, Debug)]
pub struct NativeFailure {
    /// The failing trial.
    pub trial: NativeTrial,
    /// Its failure detail.
    pub detail: String,
}

/// Native suite outcome.
#[derive(Clone, Debug, Default)]
pub struct NativeSuiteReport {
    /// Trials executed.
    pub trials: u64,
    /// Every invariant violation found.
    pub failures: Vec<NativeFailure>,
    /// TL2 counters merged across every passing trial.
    pub stats: NativeStats,
}

/// Sweeps workloads × thread counts × filter modes × versionings across
/// the seed range, calling `on_trial` after each trial with its pass/fail
/// status.
pub fn run_native_suite(
    cfg: &NativeCheckConfig,
    mut on_trial: impl FnMut(&NativeTrial, bool),
) -> NativeSuiteReport {
    let mut report = NativeSuiteReport::default();
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        for &threads in &cfg.thread_counts {
            for &mark_filter in &cfg.filter_modes {
                for &versioning in &cfg.versionings {
                    for &phased in &cfg.phased_modes {
                        for &workload in &cfg.workloads {
                            let trial = NativeTrial {
                                workload,
                                seed,
                                threads,
                                ops: cfg.ops,
                                mark_filter,
                                versioning,
                                phased,
                            };
                            let outcome = run_native_trial(&trial);
                            report.trials += 1;
                            on_trial(&trial, outcome.is_ok());
                            match outcome {
                                Ok(out) => report.stats.merge(&out.stats),
                                Err(detail) => {
                                    report.failures.push(NativeFailure { trial, detail })
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_trials_pass_on_every_workload() {
        for workload in Workload::ALL {
            for filter in [true, false] {
                for versioning in [Versioning::Single, Versioning::Multi { k: 3 }] {
                    for phased in [false, true] {
                        let trial = NativeTrial {
                            workload,
                            seed: 7,
                            threads: 3,
                            ops: 12,
                            mark_filter: filter,
                            versioning,
                            phased,
                        };
                        run_native_trial(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn forced_serial_native_counter_is_exact_and_all_serial() {
        use hastm::{Phase, PhaseEvent};
        // Promotion out of Serial is unreachable, and the phase is driven
        // to Serial before the workers start: every single commit must go
        // through the irrevocable serial-lock path, and the counter must
        // still be exact.
        let rt = NativeRuntime::new(NativeConfig {
            heap_words: 1 << 14,
            stripes: 1 << 10,
            phased: Some(PhasedParams {
                demote_after: 1,
                promote_after: 1 << 20,
                hysteresis: 1,
                hw_retry_budget: 2,
            }),
            ..NativeConfig::default()
        });
        let ps = rt.phase_state().expect("phased runtime");
        while ps.phase() != Phase::Serial {
            ps.on_event(PhaseEvent::CapacityAbort);
        }
        let cell = {
            let mut ex = NativeExec::new(&rt);
            ex.alloc_obj(1)
        };
        let merged = std::sync::Mutex::new(NativeStats::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut ex = NativeExec::new(&rt);
                    for _ in 0..200 {
                        ex.atomic(|ctx| {
                            let v = ctx.ctx_read(cell, 0)?;
                            ctx.ctx_write(cell, 0, v + 1)
                        });
                    }
                    merged.lock().unwrap().merge(ex.stats());
                });
            }
        });
        assert_eq!(rt.peek(cell.word(0)), 4 * 200);
        let st = merged.into_inner().unwrap();
        assert_eq!(st.commits, 4 * 200);
        assert_eq!(st.serial_commits, 4 * 200, "every commit serial: {st:?}");
        assert_eq!(st.aborts(), 0, "the serial phase has no abort path");
    }

    #[test]
    fn multi_version_map_trial_snapshot_reads_abort_free() {
        let trial = NativeTrial {
            workload: Workload::Map,
            seed: 3,
            threads: 4,
            ops: 24,
            mark_filter: true,
            versioning: Versioning::Multi { k: 3 },
            phased: false,
        };
        let out = run_native_trial(&trial).unwrap_or_else(|e| panic!("{trial}: {e}"));
        assert!(
            out.stats.ro_commits > 0,
            "gets must run as snapshot transactions: {:?}",
            out.stats
        );
        assert_eq!(out.stats.ro_aborts, 0);
        assert!(out.stats.snapshot_reads > 0);
    }

    #[test]
    fn small_suite_is_clean() {
        let cfg = NativeCheckConfig {
            seeds: 2,
            thread_counts: vec![1, 2],
            ops: 8,
            ..NativeCheckConfig::default()
        };
        let report = run_native_suite(&cfg, |_, _| {});
        assert_eq!(report.trials, 2 * 2 * 2 * 2 * 2 * 5);
        assert!(
            report.failures.is_empty(),
            "native suite failures: {:?}",
            report.failures
        );
        assert!(report.stats.commits > 0);
        assert_eq!(
            report.stats.ro_aborts, 0,
            "no snapshot aborts anywhere in the sweep"
        );
    }
}
