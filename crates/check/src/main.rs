//! Command-line entry point for the differential-testing harness.
//!
//! ```text
//! # Sweep the full 88-combination matrix across 100 seeds:
//! cargo run -p hastm-check --release -- --seeds 100
//!
//! # Reproduce one (possibly shrunk) failing trial exactly:
//! cargo run -p hastm-check --release -- --replay \
//!     --workload counter --combo hastm:obj:full:watermark:perop \
//!     --seed 17 --threads 3 --ops 8
//! ```

use std::process::ExitCode;

use hastm_check::{check_trial, run_suite, CheckConfig, Combo, Trial, Workload};

const USAGE: &str = "\
hastm-check: seeded differential-testing harness for the HASTM reproduction

USAGE:
    hastm-check [--seeds N] [--start-seed N] [--threads N] [--ops N] [--quiet]
    hastm-check --replay --workload W --combo C --seed N [--threads N] [--ops N]
    hastm-check --list-combos

OPTIONS:
    --seeds N        consecutive seeds to sweep            [default: 50]
    --start-seed N   first seed                            [default: 0]
    --threads N      worker threads per trial              [default: 3]
    --ops N          operations per thread per trial       [default: 32]
    --quiet          only print failures and the summary
    --replay         run exactly one trial and report pass/fail
    --workload W     replay workload: counter | map | bst | btree
    --combo C        replay combination, e.g. hastm:obj:full:watermark:perop
                     (gate suffix perop|quantum optional, default quantum;
                     see --list-combos for all 88)
    --seed N         replay seed
    --list-combos    print every combination slug and exit
    --help           this text
";

struct Args {
    replay: bool,
    list_combos: bool,
    quiet: bool,
    seeds: u64,
    start_seed: u64,
    threads: usize,
    ops: u64,
    workload: Option<String>,
    combo: Option<String>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: false,
        list_combos: false,
        quiet: false,
        seeds: 50,
        start_seed: 0,
        threads: 3,
        ops: 32,
        workload: None,
        combo: None,
        seed: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--replay" => args.replay = true,
            "--list-combos" => args.list_combos = true,
            "--quiet" => args.quiet = true,
            "--seeds" => args.seeds = num(&value("--seeds")?)?,
            "--start-seed" => args.start_seed = num(&value("--start-seed")?)?,
            "--threads" => args.threads = num(&value("--threads")?)? as usize,
            "--ops" => args.ops = num(&value("--ops")?)?,
            "--seed" => args.seed = num(&value("--seed")?)?,
            "--workload" => args.workload = Some(value("--workload")?),
            "--combo" => args.combo = Some(value("--combo")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.threads == 0 || args.ops == 0 {
        return Err("--threads and --ops must be at least 1".into());
    }
    Ok(args)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn replay(args: &Args) -> Result<ExitCode, String> {
    let workload = Workload::parse(
        args.workload
            .as_deref()
            .ok_or("--replay needs --workload")?,
    )?;
    let combo = Combo::parse(args.combo.as_deref().ok_or("--replay needs --combo")?)?;
    let trial = Trial {
        combo,
        workload,
        seed: args.seed,
        threads: args.threads,
        ops: args.ops,
    };
    println!("replaying {trial}");
    match check_trial(&trial, true) {
        None => {
            println!("PASS: every invariant held (determinism re-checked)");
            Ok(ExitCode::SUCCESS)
        }
        Some(detail) => {
            println!("FAIL: {detail}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_combos {
        for combo in Combo::all() {
            println!("{combo}");
        }
        return ExitCode::SUCCESS;
    }
    if args.replay {
        return match replay(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }

    let cfg = CheckConfig {
        seeds: args.seeds,
        start_seed: args.start_seed,
        threads: args.threads,
        ops: args.ops,
        ..CheckConfig::default()
    };
    let combos = cfg.combos.len();
    let workloads = cfg.workloads.len();
    if !args.quiet {
        println!(
            "sweeping {combos} combinations x {workloads} workloads x {} seeds \
             ({} trials; threads={}, ops={})",
            cfg.seeds,
            combos as u64 * workloads as u64 * cfg.seeds,
            cfg.threads,
            cfg.ops,
        );
    }

    let per_seed = (combos * workloads) as u64;
    let mut done_in_seed = 0u64;
    let quiet = args.quiet;
    let report = run_suite(&cfg, |trial, ok| {
        if !ok {
            println!("FAIL  {trial}");
        }
        done_in_seed += 1;
        if !quiet && done_in_seed.is_multiple_of(per_seed) {
            let seed_no = trial.seed - cfg.start_seed + 1;
            if seed_no.is_multiple_of(10) || seed_no == cfg.seeds {
                println!("  seed {seed_no}/{}", cfg.seeds);
            }
        }
    });

    if report.failures.is_empty() {
        println!(
            "OK: {} trials, 0 violations (determinism re-checked on seed {})",
            report.trials, cfg.start_seed
        );
        ExitCode::SUCCESS
    } else {
        println!("\n{} violation(s):", report.failures.len());
        for f in &report.failures {
            println!("\nFAIL  {}", f.trial);
            println!("      {}", f.detail);
            println!("      shrunk to: {}", f.shrunk);
            println!("      ({})", f.shrunk_detail);
            println!("      replay: {}", f.replay);
        }
        ExitCode::FAILURE
    }
}
