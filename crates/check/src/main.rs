//! Command-line entry point for the differential-testing harness.
//!
//! ```text
//! # Sweep the full 180-combination matrix across 100 seeds:
//! cargo run -p hastm-check --release -- --seeds 100
//!
//! # PCT sweep: 200 depth-3 schedules over every workload:
//! cargo run -p hastm-check --release -- --pct 200 --depth 3 --coverage
//!
//! # Bounded-exhaustive enumeration of a tiny counter workload:
//! cargo run -p hastm-check --release -- --explore --combo stm:obj:full \
//!     --threads 2 --ops 2 --bound 2
//!
//! # Reproduce one (possibly shrunk) failing trial exactly:
//! cargo run -p hastm-check --release -- --replay \
//!     --workload counter --combo hastm:obj:full:watermark:perop \
//!     --sched pct:3 --seed 17 --threads 3 --ops 8
//! ```

use std::process::ExitCode;

use hastm_check::explore::{explore, ExploreConfig};
use hastm_check::native::{run_native_suite, NativeCheckConfig};
use hastm_check::{
    check_trial_plan, parse_trace, run_suite, run_trial_observed, CheckConfig, Combo, Observation,
    RunPlan, Sched, Trial, Workload,
};
use hastm_sim::{chrome_trace_json, reconcile_mark_discards, validate_chrome_trace, TraceConfig};

const USAGE: &str = "\
hastm-check: seeded differential-testing harness for the HASTM reproduction

USAGE:
    hastm-check [--seeds N] [--start-seed N] [--threads N] [--ops N]
                [--sched S] [--backend B] [--workload W] [--combo C]
                [--coverage] [--quiet]
    hastm-check --pct N [--depth D] [--threads N] [--ops N] [--coverage]
    hastm-check --explore [--combo C] [--workload W] [--threads N] [--ops N]
                [--bound B] [--max-runs N] [--seed N]
    hastm-check --replay --workload W --combo C --seed N [--sched S]
                [--threads N] [--ops N] [--trace T] [--trace-out FILE]
    hastm-check --validate-trace FILE
    hastm-check --list-combos

OPTIONS:
    --seeds N        consecutive seeds to sweep            [default: 50]
    --start-seed N   first seed                            [default: 0]
    --threads N      worker threads per trial              [default: 3]
    --ops N          operations per thread per trial       [default: 32]
    --sched S        schedule policy: fuzzed | pct:<depth> | det
                                                           [default: fuzzed]
    --backend B      execution backend: sim | native | both [default: sim]
                     native runs the workloads on real host threads over
                     the TL2 runtime (1/2/4/8 threads, mark filter on and
                     off, single- and multi-version) and
                     differential-checks final states against the
                     simulator's sequential reference
    --pct N          shorthand for --seeds N --sched pct:<depth> --coverage
    --depth D        PCT depth for --pct                   [default: 3]
    --coverage       record schedules; print interleaving coverage
    --explore        bounded-exhaustive preemption-trace enumeration
    --bound B        max preemptions per trace             [default: 2]
    --max-runs N     exploration run budget                [default: 2000]
    --quiet          only print failures and the summary
    --replay         run exactly one trial and report pass/fail
    --workload W     workload: counter | map | bst | btree | oltp
                     (suite mode sweeps all five; passing one restricts the
                     sim and native sweeps to it) [explore default: counter]
    --combo C        combination, e.g. hastm:obj:full:watermark:perop
                     (gate suffix perop|quantum|spec optional, default
                     quantum; versioning suffix v<k> optional, default v1 =
                     single-version, v2+ = k-deep snapshot rings; see
                     --list-combos for all 180; in suite mode restricts
                     the sim sweep to this single combination)
    --seed N         replay/explore seed                   [default: 0]
    --trace T        replay preemption trace, e.g. 12@1,30@0
    --trace-out FILE write the replayed run's event trace as Chrome
                     trace_events JSON (open in Perfetto / chrome://tracing),
                     cross-checked against the run's TimeBreakdown and
                     mark-loss counters
    --validate-trace FILE
                     check that FILE is well-formed Chrome trace JSON, print
                     its event count, and exit
    --list-combos    print every combination slug and exit
    --help           this text
";

#[derive(Copy, Clone, PartialEq, Eq)]
enum Backend {
    Sim,
    Native,
    Both,
}

impl Backend {
    fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            "both" => Ok(Backend::Both),
            other => Err(format!("unknown backend `{other}` (sim|native|both)")),
        }
    }
}

struct Args {
    replay: bool,
    list_combos: bool,
    explore: bool,
    quiet: bool,
    coverage: bool,
    seeds: u64,
    start_seed: u64,
    threads: usize,
    ops: Option<u64>,
    workload: Option<String>,
    combo: Option<String>,
    seed: u64,
    sched: Sched,
    pct: Option<u64>,
    depth: u32,
    bound: usize,
    max_runs: u64,
    trace: Option<String>,
    trace_out: Option<String>,
    validate_trace: Option<String>,
    backend: Backend,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: false,
        list_combos: false,
        explore: false,
        quiet: false,
        coverage: false,
        seeds: 50,
        start_seed: 0,
        threads: 3,
        ops: None,
        workload: None,
        combo: None,
        seed: 0,
        sched: Sched::Fuzzed,
        pct: None,
        depth: 3,
        bound: 2,
        max_runs: 2_000,
        trace: None,
        trace_out: None,
        validate_trace: None,
        backend: Backend::Sim,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--replay" => args.replay = true,
            "--list-combos" => args.list_combos = true,
            "--explore" => args.explore = true,
            "--quiet" => args.quiet = true,
            "--coverage" => args.coverage = true,
            "--seeds" => args.seeds = num(&value("--seeds")?)?,
            "--start-seed" => args.start_seed = num(&value("--start-seed")?)?,
            "--threads" => args.threads = num(&value("--threads")?)? as usize,
            "--ops" => args.ops = Some(num(&value("--ops")?)?),
            "--seed" => args.seed = num(&value("--seed")?)?,
            "--sched" => args.sched = Sched::parse(&value("--sched")?)?,
            "--pct" => args.pct = Some(num(&value("--pct")?)?),
            "--depth" => args.depth = num(&value("--depth")?)? as u32,
            "--bound" => args.bound = num(&value("--bound")?)? as usize,
            "--max-runs" => args.max_runs = num(&value("--max-runs")?)?,
            "--trace" => args.trace = Some(value("--trace")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--validate-trace" => args.validate_trace = Some(value("--validate-trace")?),
            "--backend" => args.backend = Backend::parse(&value("--backend")?)?,
            "--workload" => args.workload = Some(value("--workload")?),
            "--combo" => args.combo = Some(value("--combo")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if let Some(runs) = args.pct {
        args.seeds = runs;
        args.sched = Sched::Pct { depth: args.depth };
        args.coverage = true;
    }
    if args.threads == 0 || args.ops == Some(0) {
        return Err("--threads and --ops must be at least 1".into());
    }
    Ok(args)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

/// Writes the observed run's event trace as Chrome trace JSON and
/// cross-checks it: the JSON must validate, the per-phase cycle sums must
/// equal the run's summed `TimeBreakdown` (when the scheme exposes one and
/// no ring overflowed), and the per-core `MarkDiscard` event counts must
/// equal the machine's `marked_lines_lost` counters.
fn write_trace_out(path: &str, obs: &Observation) -> Result<(), String> {
    let log = obs
        .trace
        .as_ref()
        .ok_or("internal: tracing was armed but no trace came back")?;
    let json = chrome_trace_json(log);
    let events =
        validate_chrome_trace(&json).map_err(|e| format!("emitted invalid trace JSON: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  trace: {events} records -> {path} (valid Chrome trace JSON)");

    if log.dropped_any() {
        println!("  warning: trace ring overflowed; skipping trace/stats reconciliation");
        return Ok(());
    }
    let sums = log.phase_sums();
    let bd = &obs.breakdown;
    if bd.total() == 0 && sums.total() > 0 {
        // HyTM / lock / sequential schemes keep no TimeBreakdown, but the
        // HyTM software fallback still emits phase events.
        println!("  note: scheme exposes no TimeBreakdown; skipping phase reconciliation");
    } else {
        for (name, traced, counted) in [
            ("tls", sums.tls, bd.tls),
            ("read_barrier", sums.read_barrier, bd.read_barrier),
            ("write_barrier", sums.write_barrier, bd.write_barrier),
            ("validate", sums.validate, bd.validate),
            ("commit", sums.commit, bd.commit),
            ("contention", sums.contention, bd.contention),
            ("app", sums.app, bd.app),
        ] {
            if traced != counted {
                return Err(format!(
                    "trace/breakdown mismatch for {name}: trace sums {traced} cycles, \
                     TimeBreakdown counted {counted}"
                ));
            }
        }
        println!(
            "  reconciled: per-phase trace sums equal the TimeBreakdown ({} cycles)",
            sums.total()
        );
    }
    if let Some(report) = &obs.report {
        let lost: Vec<u64> = report.cores.iter().map(|c| c.marked_lines_lost).collect();
        reconcile_mark_discards(log, &lost)?;
        println!(
            "  reconciled: MarkDiscard events equal marked_lines_lost ({} total)",
            lost.iter().sum::<u64>()
        );
    }
    Ok(())
}

fn run_validate_trace(path: &str) -> Result<ExitCode, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    match validate_chrome_trace(&json) {
        Ok(events) => {
            println!("OK: {path} is well-formed Chrome trace JSON ({events} records)");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            println!("FAIL: {path}: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn replay(args: &Args) -> Result<ExitCode, String> {
    let workload = Workload::parse(
        args.workload
            .as_deref()
            .ok_or("--replay needs --workload")?,
    )?;
    let combo = Combo::parse(args.combo.as_deref().ok_or("--replay needs --combo")?)?;
    let trial = Trial {
        combo,
        workload,
        seed: args.seed,
        threads: args.threads,
        ops: args.ops.unwrap_or(32),
        sched: args.sched,
    };
    let plan = RunPlan {
        preemptions: parse_trace(args.trace.as_deref().unwrap_or(""))?,
        trace: args.trace_out.as_ref().map(|_| TraceConfig::default()),
        ..RunPlan::default()
    };
    println!("replaying {trial}");
    let verdict = check_trial_plan(&trial, &plan, true);
    if let Some(path) = &args.trace_out {
        // Harvest the trace from a dedicated observed run so a *failing*
        // replay still leaves a trace file behind (the whole point of
        // replaying a shrunk repro).
        let (_, obs) = run_trial_observed(&trial, &plan);
        write_trace_out(path, &obs)?;
    }
    match verdict {
        Ok(_) => {
            println!("PASS: every invariant held (determinism re-checked)");
            Ok(ExitCode::SUCCESS)
        }
        Err(detail) => {
            println!("FAIL: {detail}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn run_explore(args: &Args) -> Result<ExitCode, String> {
    let cfg = ExploreConfig {
        combo: match args.combo.as_deref() {
            Some(c) => Combo::parse(c)?,
            None => Combo::parse("stm:obj:full").unwrap(),
        },
        workload: match args.workload.as_deref() {
            Some(w) => Workload::parse(w)?,
            None => Workload::Counter,
        },
        seed: args.seed,
        threads: args.threads.min(3),
        ops: args.ops.unwrap_or(2),
        bound: args.bound,
        max_runs: args.max_runs,
        ..ExploreConfig::default()
    };
    println!(
        "exploring {} on {} (threads={}, ops={}, bound={}, budget={} runs)",
        cfg.workload.slug(),
        cfg.combo,
        cfg.threads,
        cfg.ops,
        cfg.bound,
        cfg.max_runs
    );
    let report = explore(&cfg);
    println!(
        "  {} runs, {} pruned as duplicate schedules{}",
        report.runs,
        report.pruned,
        if report.truncated {
            " (budget exhausted before the frontier drained)"
        } else {
            ""
        }
    );
    println!("  coverage: {}", report.coverage.summary());
    match report.failure {
        None => {
            println!("OK: every enumerated interleaving matched the serial oracle");
            Ok(ExitCode::SUCCESS)
        }
        Some(f) => {
            println!("\nFAIL  trace [{}]", hastm_check::trace_slug(&f.trace));
            println!("      {}", f.detail);
            println!(
                "      shrunk to: [{}] ({})",
                hastm_check::trace_slug(&f.shrunk),
                f.shrunk_detail
            );
            println!("      replay: {}", f.replay);
            println!("      timeline of the shrunk repro:");
            print!("{}", f.timeline);
            Ok(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_combos {
        for combo in Combo::all() {
            println!("{combo}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.validate_trace {
        return match run_validate_trace(path) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    if args.replay || args.explore {
        let result = if args.replay {
            replay(&args)
        } else {
            run_explore(&args)
        };
        return match result {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }

    let workload_filter = match args.workload.as_deref().map(Workload::parse) {
        None => None,
        Some(Ok(w)) => Some(w),
        Some(Err(e)) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let combo_filter = match args.combo.as_deref().map(Combo::parse) {
        None => None,
        Some(Ok(c)) => Some(c),
        Some(Err(e)) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut clean = true;
    if args.backend != Backend::Native {
        clean &= run_sim_suite(&args, workload_filter, combo_filter);
    }
    if args.backend != Backend::Sim {
        clean &= run_native_backend(&args, workload_filter);
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_sim_suite(args: &Args, workload: Option<Workload>, combo: Option<Combo>) -> bool {
    let mut cfg = CheckConfig {
        seeds: args.seeds,
        start_seed: args.start_seed,
        threads: args.threads,
        ops: args.ops.unwrap_or(32),
        sched: args.sched,
        coverage: args.coverage,
        ..CheckConfig::default()
    };
    if let Some(w) = workload {
        cfg.workloads = vec![w];
    }
    if let Some(c) = combo {
        cfg.combos = vec![c];
    }
    let combos = cfg.combos.len();
    let workloads = cfg.workloads.len();
    if !args.quiet {
        println!(
            "sweeping {combos} combinations x {workloads} workloads x {} seeds \
             ({} trials; sched={}, threads={}, ops={})",
            cfg.seeds,
            combos as u64 * workloads as u64 * cfg.seeds,
            cfg.sched,
            cfg.threads,
            cfg.ops,
        );
    }

    let per_seed = (combos * workloads) as u64;
    let mut done_in_seed = 0u64;
    let quiet = args.quiet;
    let report = run_suite(&cfg, |trial, ok| {
        if !ok {
            println!("FAIL  {trial}");
        }
        done_in_seed += 1;
        if !quiet && done_in_seed.is_multiple_of(per_seed) {
            let seed_no = trial.seed - cfg.start_seed + 1;
            if seed_no.is_multiple_of(10) || seed_no == cfg.seeds {
                println!("  seed {seed_no}/{}", cfg.seeds);
            }
        }
    });

    if args.coverage {
        println!("coverage: {}", report.coverage.summary());
    }
    if report.failures.is_empty() {
        println!(
            "OK: {} trials, 0 violations (determinism re-checked on seed {})",
            report.trials, cfg.start_seed
        );
        true
    } else {
        println!("\n{} violation(s):", report.failures.len());
        for f in &report.failures {
            println!("\nFAIL  {}", f.trial);
            println!("      {}", f.detail);
            println!("      shrunk to: {}", f.shrunk);
            println!("      ({})", f.shrunk_detail);
            println!("      replay: {}", f.replay);
        }
        false
    }
}

fn run_native_backend(args: &Args, workload: Option<Workload>) -> bool {
    let mut cfg = NativeCheckConfig {
        seeds: args.seeds,
        start_seed: args.start_seed,
        ops: args.ops.unwrap_or(16),
        ..NativeCheckConfig::default()
    };
    if let Some(w) = workload {
        cfg.workloads = vec![w];
    }
    let per_seed = (cfg.thread_counts.len()
        * cfg.filter_modes.len()
        * cfg.versionings.len()
        * cfg.phased_modes.len()
        * cfg.workloads.len()) as u64;
    if !args.quiet {
        println!(
            "native backend: {} workloads x threads {:?} x filter on/off x {} versionings \
             x phased on/off x {} seeds ({} trials; ops={}, host cpus={})",
            cfg.workloads.len(),
            cfg.thread_counts,
            cfg.versionings.len(),
            cfg.seeds,
            per_seed * cfg.seeds,
            cfg.ops,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
    }
    let mut done_in_seed = 0u64;
    let quiet = args.quiet;
    let report = run_native_suite(&cfg, |trial, ok| {
        if !ok {
            println!("FAIL  {trial}");
        }
        done_in_seed += 1;
        if !quiet && done_in_seed.is_multiple_of(per_seed) {
            let seed_no = trial.seed - cfg.start_seed + 1;
            if seed_no.is_multiple_of(10) || seed_no == cfg.seeds {
                println!("  native seed {seed_no}/{}", cfg.seeds);
            }
        }
    });
    if report.failures.is_empty() {
        println!(
            "OK: {} native trials, 0 divergences from the simulated reference \
             ({} commits, {} aborts, {} fast-path reads, {} snapshot reads, \
             {} snapshot aborts)",
            report.trials,
            report.stats.commits,
            report.stats.aborts(),
            report.stats.fast_reads,
            report.stats.snapshot_reads,
            report.stats.ro_aborts,
        );
        true
    } else {
        println!("\n{} native violation(s):", report.failures.len());
        for f in &report.failures {
            println!("\nFAIL  {}", f.trial);
            println!("      {}", f.detail);
        }
        false
    }
}
