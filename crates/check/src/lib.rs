//! # hastm-check — differential-testing harness for the HASTM reproduction
//!
//! Runs small workloads with *interleaving-independent expected answers*
//! under every `Scheme` × `Granularity` × `IsaLevel` × `GateMode` ×
//! `ModePolicy` combination, across many seeds of the simulator's
//! [`SchedulePolicy::Fuzzed`] schedule/pressure perturbation, and
//! cross-checks:
//!
//! * **exact answers** — a shared-counter workload whose final sum must be
//!   exactly `threads × ops` under every scheme (lost updates and dirty
//!   reads shift the sum);
//! * **differential state** — partitioned-map workloads over the hash
//!   table, the rotating BST, and the B-tree (each thread owns a disjoint
//!   key range, so the final *abstract* map state is independent of the
//!   interleaving, even where the physical tree shape is not) whose final
//!   digest must equal a sequential reference execution of the same
//!   operation streams;
//! * **serializability** — the runtime's [`hastm::OracleLog`] journal is
//!   settled after every run ([`StmRuntime::verify_serializability`]) and
//!   any violation fails the trial;
//! * **replayability** — the first trial of each combination is run twice
//!   and must produce a bit-identical fingerprint (final state digest and
//!   simulated makespan), the property that makes seed replay meaningful;
//! * **cross-scheduler equality** — the per-op and quantum gate admission
//!   modes ([`hastm_sim::GateMode`]) are schedule-identical by
//!   construction, and the speculative gate certifies (or rolls back to)
//!   exactly the quantum schedule, so for every seed all three gate
//!   variants of a combination must produce bit-equal fingerprints; any
//!   divergence is reported as a failure of its own.
//!
//! On failure the harness **shrinks** the trial to a minimal failing
//! `ops`/`threads`/`seed` and prints an exact replay command
//! (`cargo run -p hastm-check --release -- --replay …`); the whole trial
//! is deterministic given its parameters, so the replay reproduces the
//! failure exactly.

use std::collections::BTreeSet;
use std::sync::Mutex;

use hastm::{
    Granularity, ModePolicy, ObjRef, OracleMode, PhasedParams, StmRuntime, TimeBreakdown,
    TmContext, TxResult, Versioning,
};
use hastm_locks::SpinLock;
use hastm_sim::{
    FaultEvent, GateMode, IsaLevel, Machine, MachineConfig, Preemption, RunReport, ScheduleEvent,
    SchedulePolicy, SpecOutcome, TraceConfig, TraceLog, WorkerFn,
};
use hastm_workloads::{AnyMap, BTree, Bst, HashTable, Scheme, Structure, ThreadExec, TxMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod explore;
pub mod native;
pub mod zombie;

#[cfg(test)]
use std::sync::atomic::{AtomicBool, Ordering};

/// Test-only fault injection: when armed, the shared-counter workload
/// performs its increment as a *non-atomic* read-modify-write split across
/// two separate atomic regions — the classic lost-update bug. Exists so the
/// harness's own tests can prove that a real concurrency bug is caught,
/// shrunk, and replayed.
#[cfg(test)]
pub(crate) static INJECT_LOST_UPDATE: AtomicBool = AtomicBool::new(false);

/// Shared plumbing for the in-crate tests (this module and
/// [`explore`]'s): the injection switch is process-global, so every test
/// that runs trials serializes on [`test_support::TEST_LOCK`].
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::atomic::Ordering;
    use std::sync::Mutex;

    /// Serializes tests that run trials: the lost-update injection switch
    /// is process-global, so trial-running tests must not overlap.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Arms the injected lost-update bug for the guard's lifetime.
    pub(crate) struct InjectGuard;
    impl InjectGuard {
        pub(crate) fn arm() -> Self {
            super::INJECT_LOST_UPDATE.store(true, Ordering::SeqCst);
            InjectGuard
        }
    }
    impl Drop for InjectGuard {
        fn drop(&mut self) {
            super::INJECT_LOST_UPDATE.store(false, Ordering::SeqCst);
        }
    }
}

#[inline]
fn lost_update_injected() -> bool {
    #[cfg(test)]
    {
        INJECT_LOST_UPDATE.load(Ordering::Relaxed)
    }
    #[cfg(not(test))]
    {
        false
    }
}

/// One point in the configuration matrix under differential test.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Combo {
    /// Concurrency-control scheme.
    pub scheme: Scheme,
    /// Conflict-detection granularity of the STM runtime.
    pub granularity: Granularity,
    /// Mark-bit ISA implementation level of the simulated machine.
    pub isa: IsaLevel,
    /// Gate admission mode of the simulated machine's scheduler. Both
    /// modes must be schedule-identical; the suite cross-checks their
    /// fingerprints per seed.
    pub gate: GateMode,
    /// Mode policy override; `Some` only for [`Scheme::Hastm`], which is
    /// the one scheme whose policy is not implied by the scheme itself.
    pub policy: Option<ModePolicy>,
    /// Version retention of the STM runtime. Under [`Versioning::Multi`]
    /// the map workloads' lookups run as declared read-only snapshot
    /// transactions, which must commit abort-free; the suite additionally
    /// cross-checks each seed's final *state* against the
    /// [`Versioning::Single`] twin (makespans legitimately differ — the
    /// snapshot path changes per-op cycle costs and thus the
    /// interleaving).
    pub versioning: Versioning,
}

/// The five HASTM mode policies swept for [`Scheme::Hastm`].
const HASTM_POLICIES: [ModePolicy; 5] = [
    ModePolicy::AlwaysCautious,
    ModePolicy::SingleThreadAggressive,
    ModePolicy::AbortRatioWatermark { watermark: 0.1 },
    ModePolicy::NaiveAggressive,
    ModePolicy::Phased(PhasedParams {
        // Tighter than the library defaults so the small suite workloads
        // actually exercise transitions (including the serial phase)
        // within a trial's few hundred transactions.
        demote_after: 2,
        promote_after: 4,
        hysteresis: 4,
        hw_retry_budget: 2,
    }),
];

impl Combo {
    /// The full matrix: every scheme × granularity × ISA level × gate
    /// mode, with [`Scheme::Hastm`] additionally swept over every mode
    /// policy (144 single-version combinations), plus a
    /// [`Versioning::Multi`]`{k: 3}` twin of every STM-based quantum-gate
    /// combination (36 more, 180 total). Gate variants of a combination
    /// are adjacent so the suite's cross-scheduler comparison sees the
    /// whole triplet in the same seed pass; the multi-version twin rides
    /// directly after its quantum single-version original for the same
    /// reason.
    pub fn all() -> Vec<Combo> {
        let mut v = Vec::new();
        let mut push = |combo: Combo| {
            v.push(combo);
            // Multi-version twins only where the snapshot path exists
            // (STM-based schemes), and only under the default quantum gate
            // to keep the matrix focused — the gate axis is already
            // cross-checked on the single-version combos.
            if combo.scheme.is_stm_based() && combo.gate == GateMode::Quantum {
                v.push(Combo {
                    versioning: Versioning::Multi { k: 3 },
                    ..combo
                });
            }
        };
        for &scheme in &Scheme::ALL {
            for granularity in [Granularity::Object, Granularity::CacheLine] {
                for isa in [IsaLevel::Full, IsaLevel::Default] {
                    for gate in [GateMode::Quantum, GateMode::PerOp, GateMode::Speculative] {
                        if scheme == Scheme::Hastm {
                            for policy in HASTM_POLICIES {
                                push(Combo {
                                    scheme,
                                    granularity,
                                    isa,
                                    gate,
                                    policy: Some(policy),
                                    versioning: Versioning::Single,
                                });
                            }
                        } else {
                            push(Combo {
                                scheme,
                                granularity,
                                isa,
                                gate,
                                policy: None,
                                versioning: Versioning::Single,
                            });
                        }
                    }
                }
            }
        }
        v
    }

    /// The combination with its gate mode canonicalized away — the key the
    /// cross-scheduler comparison groups fingerprints by.
    pub fn gate_erased(&self) -> Combo {
        Combo {
            gate: GateMode::default(),
            ..*self
        }
    }

    /// The combination with its versioning canonicalized away — the key
    /// the single-vs-multi final-state comparison groups trials by.
    pub fn versioning_erased(&self) -> Combo {
        Combo {
            versioning: Versioning::Single,
            ..*self
        }
    }

    /// The combination with its mode policy canonicalized away — the key
    /// the phased-vs-watermark final-state comparison groups trials by.
    /// Mode policies legitimately change interleavings and makespans
    /// (they change per-attempt barrier costs), so like the versioning
    /// axis only the final *state* is comparable — which every suite
    /// workload makes interleaving-independent by construction.
    pub fn policy_erased(&self) -> Combo {
        Combo {
            policy: self.policy.map(|_| ModePolicy::AlwaysCautious),
            ..*self
        }
    }

    /// Stable machine-parseable identifier, e.g.
    /// `hastm:obj:full:watermark:quantum`.
    pub fn slug(&self) -> String {
        let scheme = match self.scheme {
            Scheme::Sequential => "seq",
            Scheme::Lock => "lock",
            Scheme::Stm => "stm",
            Scheme::HastmCautious => "hastm-cautious",
            Scheme::Hastm => "hastm",
            Scheme::HastmNoReuse => "hastm-noreuse",
            Scheme::NaiveAggressive => "naive-aggressive",
            Scheme::Hytm => "hytm",
        };
        let gran = match self.granularity {
            Granularity::Object => "obj",
            Granularity::CacheLine => "line",
        };
        let isa = match self.isa {
            IsaLevel::Full => "full",
            IsaLevel::Default => "default",
        };
        let mut s = format!("{scheme}:{gran}:{isa}");
        if let Some(p) = self.policy {
            s.push(':');
            s.push_str(match p {
                ModePolicy::AlwaysCautious => "cautious",
                ModePolicy::SingleThreadAggressive => "single",
                ModePolicy::AbortRatioWatermark { .. } => "watermark",
                ModePolicy::NaiveAggressive => "naive",
                ModePolicy::Phased(_) => "ph",
            });
        }
        s.push(':');
        s.push_str(match self.gate {
            GateMode::PerOp => "perop",
            GateMode::Quantum => "quantum",
            GateMode::Speculative => "spec",
        });
        if let Versioning::Multi { k } = self.versioning {
            s.push_str(&format!(":v{k}"));
        }
        s
    }

    /// Parses a [`Combo::slug`] back into a combination. The gate suffix
    /// is optional and defaults to [`GateMode::Quantum`] (pre-gate-mode
    /// slugs stay valid), as is the `v<k>` versioning suffix (`v1` means
    /// single-version, `v2`+ a `k`-deep multi-version ring); policy, gate,
    /// and versioning names are disjoint, so every subset of the optional
    /// suffixes parses unambiguously as long as it keeps the canonical
    /// `policy:gate:v<k>` order.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed component.
    pub fn parse(s: &str) -> Result<Combo, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 3 || parts.len() > 6 {
            return Err(format!(
                "combo `{s}`: want scheme:gran:isa[:policy][:gate][:v<k>]"
            ));
        }
        let scheme = match parts[0] {
            "seq" => Scheme::Sequential,
            "lock" => Scheme::Lock,
            "stm" => Scheme::Stm,
            "hastm-cautious" => Scheme::HastmCautious,
            "hastm" => Scheme::Hastm,
            "hastm-noreuse" => Scheme::HastmNoReuse,
            "naive-aggressive" => Scheme::NaiveAggressive,
            "hytm" => Scheme::Hytm,
            other => return Err(format!("unknown scheme `{other}`")),
        };
        let granularity = match parts[1] {
            "obj" => Granularity::Object,
            "line" => Granularity::CacheLine,
            other => return Err(format!("unknown granularity `{other}`")),
        };
        let isa = match parts[2] {
            "full" => IsaLevel::Full,
            "default" => IsaLevel::Default,
            other => return Err(format!("unknown isa level `{other}`")),
        };
        let mut policy = None;
        let mut gate = None;
        let mut versioning = None;
        for part in &parts[3..] {
            let as_policy = match *part {
                "cautious" => Some(ModePolicy::AlwaysCautious),
                "single" => Some(ModePolicy::SingleThreadAggressive),
                "watermark" => Some(ModePolicy::AbortRatioWatermark { watermark: 0.1 }),
                "naive" => Some(ModePolicy::NaiveAggressive),
                "ph" => Some(HASTM_POLICIES[4]),
                _ => None,
            };
            let as_gate = match *part {
                "perop" => Some(GateMode::PerOp),
                "quantum" => Some(GateMode::Quantum),
                "spec" => Some(GateMode::Speculative),
                _ => None,
            };
            let as_versioning = part
                .strip_prefix('v')
                .and_then(|k| k.parse::<usize>().ok())
                .map(|k| {
                    if k <= 1 {
                        Versioning::Single
                    } else {
                        Versioning::Multi { k }
                    }
                });
            match (as_policy, as_gate, as_versioning) {
                (Some(p), _, _) if policy.is_none() && gate.is_none() && versioning.is_none() => {
                    policy = Some(p);
                }
                (Some(_), _, _) => {
                    return Err(format!("combo `{s}`: policy `{part}` out of place"))
                }
                (_, Some(g), _) if gate.is_none() && versioning.is_none() => gate = Some(g),
                (_, Some(_), _) => return Err(format!("combo `{s}`: gate `{part}` out of place")),
                (_, _, Some(v)) if versioning.is_none() => versioning = Some(v),
                (_, _, Some(_)) => {
                    return Err(format!("combo `{s}`: duplicate versioning `{part}`"))
                }
                _ => return Err(format!("unknown policy, gate, or versioning `{part}`")),
            }
        }
        if policy.is_some() && scheme != Scheme::Hastm {
            return Err(format!("combo `{s}`: only `hastm` takes a policy"));
        }
        let versioning = versioning.unwrap_or_default();
        if versioning.is_multi() && !scheme.is_stm_based() {
            return Err(format!(
                "combo `{s}`: only STM-based schemes take multi-versioning"
            ));
        }
        Ok(Combo {
            scheme,
            granularity,
            isa,
            gate: gate.unwrap_or_default(),
            policy,
            versioning,
        })
    }

    fn stm_config(&self, threads: usize) -> hastm::StmConfig {
        let mut c = self.scheme.stm_config(self.granularity, threads);
        if let Some(p) = self.policy {
            c.mode_policy = p;
        }
        c.versioning = self.versioning;
        c
    }
}

impl std::fmt::Display for Combo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.slug())
    }
}

/// Which invariant-bearing workload a trial runs. The three partitioned
/// structure workloads share one differential runner and differ only in
/// the transactional data structure under test — which is the point:
/// trees exercise rotations, node splits, and long read paths the hash
/// table never does.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Shared-counter increments; final sum must be exactly
    /// `threads × ops`.
    Counter,
    /// Partitioned hash-table map; final digest must match a sequential
    /// reference.
    Map,
    /// Partitioned map over the rotating BST (root rotations make remote
    /// threads' paths overlap even with disjoint key partitions).
    Bst,
    /// Partitioned map over the B-tree (node splits/merges move many keys
    /// per transaction).
    BTree,
    /// OLTP traffic mill: Zipf-skewed zero-sum bank transfers whose final
    /// balances equal a closed-form ledger regardless of interleaving
    /// (genuine cross-thread contention, unlike the partitioned maps).
    Oltp,
}

impl Workload {
    /// Every workload.
    pub const ALL: [Workload; 5] = [
        Workload::Counter,
        Workload::Map,
        Workload::Bst,
        Workload::BTree,
        Workload::Oltp,
    ];

    /// CLI identifier.
    pub fn slug(self) -> &'static str {
        match self {
            Workload::Counter => "counter",
            Workload::Map => "map",
            Workload::Bst => "bst",
            Workload::BTree => "btree",
            Workload::Oltp => "oltp",
        }
    }

    /// Parses a [`Workload::slug`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown workload.
    pub fn parse(s: &str) -> Result<Workload, String> {
        match s {
            "counter" => Ok(Workload::Counter),
            "map" => Ok(Workload::Map),
            "bst" => Ok(Workload::Bst),
            "btree" => Ok(Workload::BTree),
            "oltp" => Ok(Workload::Oltp),
            other => Err(format!(
                "unknown workload `{other}` (counter|map|bst|btree|oltp)"
            )),
        }
    }
}

/// Schedule-exploration policy of a trial's measured run. The trial seed
/// doubles as the policy seed, so one `(sched, seed)` pair fully pins the
/// interleaving.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Sched {
    /// Seeded priority jitter plus random cache pressure (the harness's
    /// original perturbation; good at volume, weak at rare orderings).
    #[default]
    Fuzzed,
    /// PCT (probabilistic concurrency testing): random per-core priorities
    /// with `depth − 1` priority-change points, giving a provable chance
    /// of hitting any bug of preemption depth ≤ `depth`.
    Pct {
        /// PCT bug depth (number of ordering constraints targeted).
        depth: u32,
    },
    /// No perturbation at all: the base deterministic schedule. Used by
    /// the exhaustive explorer, which supplies explicit preemption traces
    /// on top of it.
    Det,
}

impl Sched {
    /// Stable identifier: `fuzzed`, `pct:<depth>`, or `det`.
    pub fn slug(self) -> String {
        match self {
            Sched::Fuzzed => "fuzzed".into(),
            Sched::Pct { depth } => format!("pct:{depth}"),
            Sched::Det => "det".into(),
        }
    }

    /// Parses a [`Sched::slug`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed policy.
    pub fn parse(s: &str) -> Result<Sched, String> {
        match s {
            "fuzzed" => Ok(Sched::Fuzzed),
            "det" => Ok(Sched::Det),
            _ => match s.strip_prefix("pct:") {
                Some(d) => {
                    let depth: u32 = d
                        .parse()
                        .map_err(|_| format!("pct depth `{d}` is not a number"))?;
                    if depth == 0 {
                        return Err("pct depth must be at least 1".into());
                    }
                    Ok(Sched::Pct { depth })
                }
                None => Err(format!("unknown sched `{s}` (fuzzed|pct:<depth>|det)")),
            },
        }
    }

    /// The simulator schedule policy this sched selects for `seed`.
    pub fn policy(self, seed: u64) -> SchedulePolicy {
        match self {
            Sched::Fuzzed => SchedulePolicy::Fuzzed { seed },
            Sched::Pct { depth } => SchedulePolicy::Pct { seed, depth },
            Sched::Det => SchedulePolicy::Deterministic,
        }
    }
}

impl std::fmt::Display for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.slug())
    }
}

/// One fully-determined harness execution: re-running a `Trial` always
/// reproduces the same machine, schedule, and outcome.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Trial {
    /// Configuration-matrix point.
    pub combo: Combo,
    /// Workload under test.
    pub workload: Workload,
    /// Seed for both the operation streams and the schedule policy.
    pub seed: u64,
    /// Worker threads (forced to 1 for [`Scheme::Sequential`]).
    pub threads: usize,
    /// Operations per thread.
    pub ops: u64,
    /// Schedule policy of the measured run.
    pub sched: Sched,
}

impl Trial {
    fn effective_threads(&self) -> usize {
        if self.combo.scheme == Scheme::Sequential {
            1
        } else {
            self.threads
        }
    }
}

impl std::fmt::Display for Trial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} sched={} seed={} threads={} ops={}",
            self.workload.slug(),
            self.combo,
            self.sched,
            self.seed,
            self.effective_threads(),
            self.ops
        )
    }
}

/// Bit-exact summary of one trial run, compared across re-runs to enforce
/// determinism (the property seed replay depends on).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Digest of the final abstract state (sum or map digest).
    pub state: u64,
    /// Simulated makespan of the measured run in cycles.
    pub makespan: u64,
}

/// FNV-1a over one `(key, value)` pair; summed with a commutative combine
/// so the digest depends only on the final abstract state (same fold the
/// workload driver uses).
pub(crate) fn fnv_pair(key: u64, value: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.to_le_bytes().iter().chain(value.to_le_bytes().iter()) {
        h = (h ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn machine_config(trial: &Trial, cores: usize, perturbed: bool) -> MachineConfig {
    let mut mc = MachineConfig::with_cores(cores);
    mc.isa = trial.combo.isa;
    mc.gate = trial.combo.gate;
    if perturbed {
        mc.schedule = trial.sched.policy(trial.seed);
    }
    mc
}

// ---------------------------------------------------------------------------
// Run plans and observations
// ---------------------------------------------------------------------------

/// Extra machinery applied to a trial's *measured* run only (the setup and
/// digest phases stay unperturbed): an explicit preemption trace, a fault
/// plan, and optional schedule recording. The empty default reproduces the
/// plain trial exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunPlan {
    /// Preemption directives, sorted by `at_op` (favored-core switches).
    pub preemptions: Vec<Preemption>,
    /// Fault events, sorted by `at_op` (evictions, back-invalidations,
    /// spurious HTM aborts).
    pub faults: Vec<FaultEvent>,
    /// Record the measured run's per-op schedule into the observation.
    pub record_schedule: bool,
    /// Record the measured run's structured event trace into the
    /// observation (see [`hastm_sim::TraceLog`]).
    pub trace: Option<TraceConfig>,
}

/// Formats a preemption trace as a replayable slug: `at@core,at@core,…`
/// (empty string for the empty trace).
pub fn trace_slug(trace: &[Preemption]) -> String {
    trace
        .iter()
        .map(|p| format!("{}@{}", p.at_op, p.core))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a [`trace_slug`] back into a preemption trace.
///
/// # Errors
///
/// Returns a message describing the malformed directive.
pub fn parse_trace(s: &str) -> Result<Vec<Preemption>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    let mut trace = Vec::new();
    for part in s.split(',') {
        let (at, core) = part
            .split_once('@')
            .ok_or_else(|| format!("trace directive `{part}`: want at_op@core"))?;
        let at_op: u64 = at
            .parse()
            .map_err(|_| format!("trace at_op `{at}` is not a number"))?;
        let core: usize = core
            .parse()
            .map_err(|_| format!("trace core `{core}` is not a number"))?;
        trace.push(Preemption { at_op, core });
    }
    if !trace.is_sorted_by_key(|p| p.at_op) {
        return Err(format!("trace `{s}` is not sorted by at_op"));
    }
    Ok(trace)
}

/// What one measured run exposed beyond its fingerprint: the recorded
/// schedule (empty unless the plan asked for it) and the abort causes the
/// worker threads observed.
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Per-op schedule of the measured run (op index, core, touched line).
    pub schedule: Vec<ScheduleEvent>,
    /// Distinct abort causes observed across all worker threads.
    pub abort_causes: BTreeSet<&'static str>,
    /// Committed transactions across all worker threads.
    pub commits: u64,
    /// Aborted transaction attempts across all worker threads.
    pub aborts: u64,
    /// Committed read-only snapshot transactions across all worker
    /// threads (nonzero only under [`Versioning::Multi`]).
    pub ro_commits: u64,
    /// Read-only snapshot transaction attempts that did not commit.
    /// Snapshot reads cannot conflict-abort, so any nonzero count here is
    /// a runtime bug; [`run_map`] fails the trial on it.
    pub ro_aborts: u64,
    /// Global phase transitions the worker threads published (nonzero only
    /// under [`ModePolicy::Phased`]). The oscillation stress suite bounds
    /// this against the transaction count to catch HW/SW ping-pong.
    pub phase_transitions: u64,
    /// Transactions committed inside the serial (irrevocable) phase.
    pub serial_commits: u64,
    /// Structured event trace of the measured run (`None` unless the plan
    /// armed [`RunPlan::trace`]).
    pub trace: Option<TraceLog>,
    /// Summed per-thread time breakdown of the measured run (STM schemes
    /// only; zero for schemes without [`hastm::TxnStats`]).
    pub breakdown: TimeBreakdown,
    /// The measured run's machine report (`None` until the run finishes).
    pub report: Option<RunReport>,
    /// Speculative-gate verdict of the measured run (`None` unless the
    /// trial's gate is [`GateMode::Speculative`]). A tainted (uncertified)
    /// run is discarded by [`run_trial_observed`] and re-run under the
    /// quantum gate, so fingerprints are always certified.
    pub spec: Option<SpecOutcome>,
}

/// Folds one thread's executor statistics into a shared observation.
fn observe_thread(obs: &Mutex<Observation>, ex: &ThreadExec<'_, '_>) {
    let mut obs = obs.lock().unwrap();
    if let Some(st) = ex.txn_stats() {
        obs.commits += st.commits;
        obs.aborts += st.aborts();
        obs.ro_commits += st.ro_commits;
        obs.ro_aborts += st.ro_aborts;
        obs.phase_transitions += st.phase_transitions;
        obs.serial_commits += st.serial_commits;
        obs.breakdown.merge(&st.breakdown);
        for (n, label) in [
            (st.aborts_conflict, "conflict"),
            (st.aborts_mark_dirty, "mark-dirty"),
            (st.aborts_retry, "retry"),
            (st.aborts_explicit, "explicit"),
        ] {
            if n > 0 {
                obs.abort_causes.insert(label);
            }
        }
    }
    if let Some(st) = ex.hytm_stats() {
        obs.commits += st.hw_commits + st.sw_commits;
        obs.aborts += st.hw_aborts_conflict + st.hw_aborts_capacity + st.hw_aborts_spurious;
        for (n, label) in [
            (st.hw_aborts_conflict, "hw-conflict"),
            (st.hw_aborts_capacity, "hw-capacity"),
            (st.hw_aborts_spurious, "hw-spurious"),
            (st.sw_commits, "hw-fallback"),
        ] {
            if n > 0 {
                obs.abort_causes.insert(label);
            }
        }
    }
}

/// Installs the plan on `machine` for the next run.
fn arm_plan(machine: &mut Machine, plan: &RunPlan) {
    machine.set_preemptions(plan.preemptions.clone());
    machine.set_faults(plan.faults.clone());
    machine.set_record_schedule(plan.record_schedule);
    machine.set_tracing(plan.trace);
}

/// Clears any installed plan so later (digest) runs are unperturbed, and
/// harvests the recorded schedule and event trace into `obs`.
fn disarm_plan(machine: &mut Machine, obs: &mut Observation) {
    obs.schedule = machine.take_schedule_log();
    obs.trace = machine.take_trace();
    // Harvest the speculative verdict before any later (digest) run_one
    // resets it.
    obs.spec = machine.spec_outcome();
    machine.set_preemptions(Vec::new());
    machine.set_faults(Vec::new());
    machine.set_record_schedule(false);
    machine.set_tracing(None);
}

// ---------------------------------------------------------------------------
// Counter workload
// ---------------------------------------------------------------------------

/// Number of contended counter cells (2 cells on adjacent heap objects:
/// high contention, plus false sharing under cache-line granularity).
pub(crate) const COUNTER_CELLS: usize = 2;

fn run_counter(trial: &Trial, plan: &RunPlan) -> (Result<Fingerprint, String>, Observation) {
    let threads = trial.effective_threads();
    let mut machine = Machine::new(machine_config(trial, threads, true));
    let runtime = StmRuntime::new(
        &mut machine,
        trial
            .combo
            .stm_config(threads)
            .with_oracle(OracleMode::Record),
    );
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;
    let (cells, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        (0..COUNTER_CELLS)
            .map(|_| {
                let cell = ex.alloc_obj(1);
                ex.atomic(|ctx| ctx.ctx_write(cell, 0, 0));
                cell
            })
            .collect::<Vec<ObjRef>>()
    });

    arm_plan(&mut machine, plan);
    let obs = Mutex::new(Observation::default());
    let scheme = trial.combo.scheme;
    let seed = trial.seed;
    let ops = trial.ops;
    let cells_ref = &cells;
    let obs_ref = &obs;
    let workers: Vec<WorkerFn<'_>> = (0..threads)
        .map(|tid| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de ^ ((tid as u64) << 24));
                for _ in 0..ops {
                    let cell = cells_ref[rng.gen_range(0..COUNTER_CELLS as u64) as usize];
                    if lost_update_injected() {
                        // Injected bug (test-only): the read-modify-write is
                        // split across two atomic regions, so a concurrent
                        // increment between them is lost.
                        let v = ex.atomic(|ctx| ctx.ctx_read(cell, 0));
                        ex.atomic(|ctx| ctx.ctx_write(cell, 0, v + 1));
                    } else {
                        ex.atomic(|ctx| {
                            let v = ctx.ctx_read(cell, 0)?;
                            ctx.ctx_write(cell, 0, v + 1)
                        });
                    }
                }
                observe_thread(obs_ref, &ex);
            }) as WorkerFn<'_>
        })
        .collect();
    let report = machine.run(workers);
    let mut obs = obs.into_inner().unwrap();
    disarm_plan(&mut machine, &mut obs);
    obs.report = Some(report.clone());

    let violations = runtime.verify_serializability(&machine);
    if let Some(v) = violations.first() {
        let err = format!("oracle: {v} ({} violations total)", violations.len());
        return (Err(err), obs);
    }

    let expected = threads as u64 * trial.ops;
    let mut total = 0u64;
    let mut state = 0u64;
    for (i, cell) in cells.iter().enumerate() {
        let v = machine.peek_u64(cell.word(0));
        total += v;
        state = state.wrapping_add(fnv_pair(i as u64, v));
    }
    if total != expected {
        let err = format!(
            "counter sum {total} != expected {expected} ({} increments lost)",
            expected as i64 - total as i64
        );
        return (Err(err), obs);
    }
    (
        Ok(Fingerprint {
            state,
            makespan: report.makespan(),
        }),
        obs,
    )
}

// ---------------------------------------------------------------------------
// Map workload
// ---------------------------------------------------------------------------

/// Keys per thread partition.
pub(crate) const KEYS_PER_THREAD: u64 = 8;

#[derive(Copy, Clone, Debug)]
pub(crate) enum MapOpKind {
    Insert,
    Remove,
    Get,
}

#[derive(Copy, Clone, Debug)]
pub(crate) struct MapOp {
    kind: MapOpKind,
    key: u64,
    value: u64,
}

/// Thread `tid`'s deterministic operation stream. All keys fall inside the
/// thread's own partition `[tid·K, (tid+1)·K)`, so the final per-partition
/// state — and therefore the whole map — is independent of how the
/// threads interleave.
pub(crate) fn stream(seed: u64, tid: usize, ops: u64) -> Vec<MapOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff ^ ((tid as u64) << 20));
    let base = tid as u64 * KEYS_PER_THREAD;
    (0..ops)
        .map(|i| {
            let key = base + rng.gen_range(0..KEYS_PER_THREAD);
            let roll: u32 = rng.gen_range(0..100);
            let kind = if roll < 45 {
                MapOpKind::Insert
            } else if roll < 70 {
                MapOpKind::Remove
            } else {
                MapOpKind::Get
            };
            let value = (seed ^ (i << 8) ^ key).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            MapOp { kind, key, value }
        })
        .collect()
}

/// Creates the structure under test. The hash table is sized small (32
/// buckets) to force bucket-chain traversals; trees size themselves.
pub(crate) fn create_map(ctx: &mut dyn TmContext, structure: Structure) -> TxResult<AnyMap> {
    Ok(match structure {
        Structure::HashTable => AnyMap::Hash(HashTable::create(ctx, 32)),
        Structure::Bst => AnyMap::Bst(Bst::create(ctx)),
        Structure::BTree => AnyMap::BTree(BTree::create(ctx)?),
    })
}

pub(crate) fn apply_stream<E: hastm::TmExec>(ex: &mut E, map: &AnyMap, ops: &[MapOp]) {
    for op in ops {
        match op.kind {
            MapOpKind::Insert => {
                ex.atomic(|ctx| map.insert(ctx, op.key, op.value));
            }
            MapOpKind::Remove => {
                ex.atomic(|ctx| map.remove(ctx, op.key));
            }
            MapOpKind::Get => {
                // Declared read-only: under a multi-version runtime this
                // takes the abort-free snapshot path; under a
                // single-version runtime (or a non-STM scheme) it is
                // exactly an ordinary atomic region, so single-version
                // fingerprints are unchanged by the routing.
                ex.atomic_ro(|ctx| map.get(ctx, op.key));
            }
        }
    }
}

pub(crate) fn map_digest<E: hastm::TmExec>(ex: &mut E, map: &AnyMap, key_span: u64) -> u64 {
    let mut digest = 0u64;
    let mut resident = 0u64;
    for key in 0..key_span {
        if let Some(value) = ex.atomic(|ctx| map.get(ctx, key)) {
            digest = digest.wrapping_add(fnv_pair(key, value));
            resident += 1;
        }
    }
    digest.wrapping_add(resident.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn run_map(
    trial: &Trial,
    structure: Structure,
    plan: &RunPlan,
) -> (Result<Fingerprint, String>, Observation) {
    let threads = trial.effective_threads();
    let streams: Vec<Vec<MapOp>> = (0..threads)
        .map(|t| stream(trial.seed, t, trial.ops))
        .collect();
    let key_span = threads as u64 * KEYS_PER_THREAD;

    // Sequential reference on a fresh single-core machine: applies the same
    // streams one thread after another. Because partitions are disjoint,
    // any legal concurrent execution must end in this exact map state.
    let expected = {
        let mut machine = Machine::new(machine_config(trial, 1, false));
        let runtime = StmRuntime::new(
            &mut machine,
            Scheme::Sequential.stm_config(trial.combo.granularity, 1),
        );
        let lock = SpinLock::alloc(runtime.heap());
        let rt = &runtime;
        let streams_ref = &streams;
        let (digest, _) = machine.run_one(move |cpu| {
            let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
            let map = ex.atomic(|ctx| create_map(ctx, structure));
            for s in streams_ref {
                apply_stream(&mut ex, &map, s);
            }
            map_digest(&mut ex, &map, key_span)
        });
        digest
    };

    // Measured run under the combination, fuzzed schedule.
    let mut machine = Machine::new(machine_config(trial, threads, true));
    let runtime = StmRuntime::new(
        &mut machine,
        trial
            .combo
            .stm_config(threads)
            .with_oracle(OracleMode::Record),
    );
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;
    let (map, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        ex.atomic(|ctx| create_map(ctx, structure))
    });
    arm_plan(&mut machine, plan);
    let obs = Mutex::new(Observation::default());
    let obs_ref = &obs;
    let scheme = trial.combo.scheme;
    let streams_ref = &streams;
    let workers: Vec<WorkerFn<'_>> = (0..threads)
        .map(|tid| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                apply_stream(&mut ex, &map, &streams_ref[tid]);
                observe_thread(obs_ref, &ex);
            }) as WorkerFn<'_>
        })
        .collect();
    let report = machine.run(workers);
    let mut obs = obs.into_inner().unwrap();
    disarm_plan(&mut machine, &mut obs);
    obs.report = Some(report.clone());

    let violations = runtime.verify_serializability(&machine);
    if let Some(v) = violations.first() {
        let err = format!("oracle: {v} ({} violations total)", violations.len());
        return (Err(err), obs);
    }

    // Zero-abort guarantee of the snapshot path: a multi-version runtime
    // commits declared read-only transactions without validation, so a
    // single snapshot abort is a runtime bug, not contention.
    if trial.combo.versioning.is_multi() && obs.ro_aborts > 0 {
        let err = format!(
            "{} read-only snapshot aborts under {:?} (snapshot reads must be abort-free)",
            obs.ro_aborts, trial.combo.versioning
        );
        return (Err(err), obs);
    }

    let (digest, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        map_digest(&mut ex, &map, key_span)
    });
    if digest != expected {
        let err = format!("map digest {digest:#018x} != sequential reference {expected:#018x}");
        return (Err(err), obs);
    }
    (
        Ok(Fingerprint {
            state: digest,
            makespan: report.makespan(),
        }),
        obs,
    )
}

// ---------------------------------------------------------------------------
// OLTP workload
// ---------------------------------------------------------------------------

/// The mill parameters a trial maps to: a small, hot ledger (16 accounts,
/// θ = 0.9, a 10% eight-key tail) so real cross-thread conflicts occur
/// even at the harness's small op counts. Shared with the native runner so
/// sim and native trials of the same `(seed, threads, ops)` replay the
/// identical traffic and must end in the identical closed-form state.
pub(crate) fn oltp_params(seed: u64, threads: usize, ops: u64) -> hastm_workloads::OltpConfig {
    hastm_workloads::OltpConfig {
        threads,
        txns_per_thread: ops,
        accounts: 16,
        zipf_theta: 0.9,
        read_pct: 25,
        txn_keys: 3,
        large_txn_pct: 10,
        large_txn_keys: 8,
        flash_phases: 2,
        mean_arrival_gap: 300,
        seed,
    }
}

/// Runs the OLTP mill on the simulator (base STM, fuzzed schedule) for the
/// shared [`oltp_params`] point and returns the final ledger digest. The
/// native differential suite compares this against the native TL2 digest
/// directly — a belt-and-braces check on top of the closed-form ledger
/// both runners verify independently.
///
/// # Panics
///
/// Panics if the simulated run itself violates the ledger or the
/// serializability oracle (that is a sim bug, not a differential finding).
pub fn oltp_sim_digest(seed: u64, threads: usize, ops: u64) -> u64 {
    use hastm_workloads::oltp;

    let mut cfg = oltp::OltpSimConfig::new(
        oltp_params(seed, threads, ops),
        Scheme::Stm,
        Granularity::CacheLine,
    );
    cfg.machine.schedule = hastm_sim::SchedulePolicy::Fuzzed { seed };
    let r = oltp::run_oltp_sim(&cfg);
    assert_eq!(r.oracle_violations, 0, "sim oltp run is unserializable");
    let expected = oltp::expected_balances(&cfg.oltp);
    assert_eq!(
        r.balances, expected,
        "sim oltp run diverged from the ledger"
    );
    r.digest
}

fn run_oltp(trial: &Trial, plan: &RunPlan) -> (Result<Fingerprint, String>, Observation) {
    use hastm_workloads::oltp;

    let threads = trial.effective_threads();
    let params = oltp_params(trial.seed, threads, trial.ops);
    let streams: Vec<Vec<hastm_workloads::OltpTxn>> = (0..threads)
        .map(|t| oltp::thread_txns(&params, t))
        .collect();
    // Closed-form reference: transfers apply fixed zero-sum deltas, so the
    // final ledger is initial + Σ deltas regardless of interleaving.
    let expected = oltp::expected_balances(&params);

    let mut machine = Machine::new(machine_config(trial, threads, true));
    let runtime = StmRuntime::new(
        &mut machine,
        trial
            .combo
            .stm_config(threads)
            .with_oracle(OracleMode::Record),
    );
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;
    let n_accounts = params.accounts;
    let (accounts, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        (0..n_accounts)
            .map(|key| {
                let obj = ex.alloc_obj(oltp::ACCOUNT_WORDS);
                ex.atomic(|ctx| ctx.ctx_write(obj, 0, oltp::initial_balance(key)));
                obj
            })
            .collect::<Vec<ObjRef>>()
    });

    arm_plan(&mut machine, plan);
    let obs = Mutex::new(Observation::default());
    let obs_ref = &obs;
    let scheme = trial.combo.scheme;
    let accounts_ref = &accounts;
    let streams_ref = &streams;
    let workers: Vec<WorkerFn<'_>> = (0..threads)
        .map(|tid| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                oltp::run_mill_thread(&mut ex, accounts_ref, &streams_ref[tid]);
                observe_thread(obs_ref, &ex);
            }) as WorkerFn<'_>
        })
        .collect();
    let report = machine.run(workers);
    let mut obs = obs.into_inner().unwrap();
    disarm_plan(&mut machine, &mut obs);
    obs.report = Some(report.clone());

    let violations = runtime.verify_serializability(&machine);
    if let Some(v) = violations.first() {
        let err = format!("oracle: {v} ({} violations total)", violations.len());
        return (Err(err), obs);
    }

    let balances: Vec<u64> = accounts
        .iter()
        .map(|obj| machine.peek_u64(obj.word(0)))
        .collect();
    if oltp::total_balance(&balances) != oltp::total_balance(&expected) {
        let err = format!(
            "oltp total balance {} != conserved total {}",
            oltp::total_balance(&balances),
            oltp::total_balance(&expected)
        );
        return (Err(err), obs);
    }
    if let Some(key) = (0..balances.len()).find(|&k| balances[k] != expected[k]) {
        let err = format!(
            "oltp account {key} balance {} != ledger {} (first of {} divergent accounts)",
            balances[key],
            expected[key],
            balances
                .iter()
                .zip(&expected)
                .filter(|(a, b)| a != b)
                .count()
        );
        return (Err(err), obs);
    }
    (
        Ok(Fingerprint {
            state: oltp::balances_digest(&balances),
            makespan: report.makespan(),
        }),
        obs,
    )
}

// ---------------------------------------------------------------------------
// Trial execution, determinism, shrinking
// ---------------------------------------------------------------------------

/// Runs one trial under a [`RunPlan`] and returns its fingerprint plus
/// what the run exposed (recorded schedule, abort causes), or a
/// description of the violated invariant.
///
/// # Errors
///
/// Returns the invariant-violation message (lost updates, digest
/// divergence from the sequential reference, or an oracle
/// serializability violation).
pub fn run_trial_plan(trial: &Trial, plan: &RunPlan) -> Result<(Fingerprint, Observation), String> {
    let (res, obs) = run_trial_observed(trial, plan);
    res.map(|fp| (fp, obs))
}

/// Like [`run_trial_plan`], but yields the observation even when the trial
/// fails — a failing run's recorded schedule, event trace, and machine
/// report are exactly what post-mortem tooling (timeline summaries,
/// `--trace-out` on a shrunk repro) needs.
pub fn run_trial_observed(
    trial: &Trial,
    plan: &RunPlan,
) -> (Result<Fingerprint, String>, Observation) {
    let (res, obs) = run_trial_raw(trial, plan);
    if obs.spec.is_none_or(|o| o.certified) {
        return (res, obs);
    }
    // Speculative execution tainted: the run it produced is a valid but
    // alternative schedule, so its fingerprint is not comparable to the
    // quantum gate's. Discard everything and re-run conservatively — the
    // same discard-and-redo contract `run_workload_spec` implements.
    let mut quantum = *trial;
    quantum.combo.gate = GateMode::Quantum;
    run_trial_raw(&quantum, plan)
}

/// One uncertified execution of the trial: dispatches to the workload's
/// runner with the trial's own gate, taint verdict left in
/// [`Observation::spec`].
fn run_trial_raw(trial: &Trial, plan: &RunPlan) -> (Result<Fingerprint, String>, Observation) {
    match trial.workload {
        Workload::Counter => run_counter(trial, plan),
        Workload::Map => run_map(trial, Structure::HashTable, plan),
        Workload::Bst => run_map(trial, Structure::Bst, plan),
        Workload::BTree => run_map(trial, Structure::BTree, plan),
        Workload::Oltp => run_oltp(trial, plan),
    }
}

/// [`run_trial_plan`] with the empty plan, fingerprint only.
///
/// # Errors
///
/// As [`run_trial_plan`].
pub fn run_trial(trial: &Trial) -> Result<Fingerprint, String> {
    run_trial_plan(trial, &RunPlan::default()).map(|(fp, _)| fp)
}

// ---------------------------------------------------------------------------
// Coverage
// ---------------------------------------------------------------------------

/// One ordered conflict between two cores on the same cache line:
/// `(first core, second core, first was a write, second was a write)`,
/// with at least one side writing. The set of these a campaign has seen is
/// its interleaving coverage — a lost-update bug, for example, requires
/// the specific `(reader, writer)` then `(writer, reader)` orderings.
pub type ConflictOrdering = (usize, usize, bool, bool);

/// Interleaving-coverage accumulator across runs of a campaign (PCT sweep
/// or exhaustive exploration). All metrics count *distinct* items, so a
/// campaign that keeps replaying one schedule shows flat coverage.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    /// Distinct ordered conflict pairs observed (requires recorded
    /// schedules).
    pub conflict_orderings: BTreeSet<ConflictOrdering>,
    /// Distinct abort causes observed across all runs.
    pub abort_causes: BTreeSet<&'static str>,
    /// Distinct whole-run schedule hashes (requires recorded schedules).
    pub schedules: BTreeSet<u64>,
    /// Runs folded in.
    pub runs: u64,
}

/// FNV-1a hash of a recorded schedule: the `(core, line, is_write)`
/// sequence of every gated op. Two runs with equal hashes executed the
/// same interleaving of the same per-core op streams, hence (the machine
/// being deterministic) are the same run.
pub fn schedule_hash(schedule: &[ScheduleEvent]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
    };
    for ev in schedule {
        mix(ev.core as u64);
        match ev.line {
            Some((line, write)) => {
                mix(line.0);
                mix(u64::from(write));
            }
            None => mix(u64::MAX),
        }
    }
    h
}

impl Coverage {
    /// Folds one run's observation in.
    pub fn note(&mut self, obs: &Observation) {
        self.runs += 1;
        self.abort_causes.extend(obs.abort_causes.iter());
        if obs.schedule.is_empty() {
            return;
        }
        self.schedules.insert(schedule_hash(&obs.schedule));
        let mut last: std::collections::HashMap<hastm_sim::LineId, (usize, bool)> =
            std::collections::HashMap::new();
        for ev in &obs.schedule {
            let Some((line, write)) = ev.line else {
                continue;
            };
            if let Some(&(prev_core, prev_write)) = last.get(&line) {
                if prev_core != ev.core && (prev_write || write) {
                    self.conflict_orderings
                        .insert((prev_core, ev.core, prev_write, write));
                }
            }
            last.insert(line, (ev.core, write));
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} runs, {} distinct schedules, {} conflict-pair orderings, {} abort causes [{}]",
            self.runs,
            self.schedules.len(),
            self.conflict_orderings.len(),
            self.abort_causes.len(),
            self.abort_causes
                .iter()
                .copied()
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

/// Runs a trial under a plan (twice when `determinism` is set) and returns
/// its fingerprint and observation, or the failure detail. With schedule
/// recording on, the determinism re-run must reproduce the schedule
/// bit-for-bit, not just the fingerprint.
///
/// # Errors
///
/// Returns the invariant-violation or nondeterminism detail.
pub fn check_trial_plan(
    trial: &Trial,
    plan: &RunPlan,
    determinism: bool,
) -> Result<(Fingerprint, Observation), String> {
    let (fp, obs) = run_trial_plan(trial, plan)?;
    if determinism {
        match run_trial_plan(trial, plan) {
            Err(detail) => return Err(format!("nondeterministic: re-run failed: {detail}")),
            Ok((fp2, _)) if fp2 != fp => {
                return Err(format!(
                    "nondeterministic: fingerprint {fp:?} then {fp2:?} from identical trials"
                ))
            }
            Ok((_, obs2)) if schedule_hash(&obs2.schedule) != schedule_hash(&obs.schedule) => {
                return Err(
                    "nondeterministic: identical trials recorded different schedules".into(),
                )
            }
            Ok(_) => {}
        }
    }
    Ok((fp, obs))
}

/// Runs a trial (twice when `determinism` is set) and returns its
/// fingerprint, or the failure detail.
///
/// # Errors
///
/// Returns the invariant-violation or nondeterminism detail.
pub fn check_trial_fingerprint(trial: &Trial, determinism: bool) -> Result<Fingerprint, String> {
    check_trial_plan(trial, &RunPlan::default(), determinism).map(|(fp, _)| fp)
}

/// Runs a trial (twice when `determinism` is set) and returns `Some`
/// failure detail, or `None` when every invariant holds.
pub fn check_trial(trial: &Trial, determinism: bool) -> Option<String> {
    check_trial_fingerprint(trial, determinism).err()
}

/// Greedily shrinks a failing trial: halve/decrement `ops`, then reduce
/// `threads`, then try small seeds — keeping every candidate that still
/// fails. The predicate re-runs the (deterministic) trial, so the result
/// is a genuinely minimal reproducer within `budget` re-runs.
pub fn shrink_failure(trial: Trial, detail: String, budget: u32) -> (Trial, String) {
    let determinism = detail.starts_with("nondeterministic");
    let mut fails = {
        let mut left = budget;
        move |t: &Trial| -> Option<String> {
            if left == 0 {
                return None;
            }
            left -= 1;
            check_trial(t, determinism)
        }
    };

    let mut best = trial;
    let mut best_detail = detail;
    loop {
        let mut candidates = vec![];
        if best.ops > 1 {
            candidates.push(Trial {
                ops: best.ops / 2,
                ..best
            });
            candidates.push(Trial {
                ops: best.ops - 1,
                ..best
            });
        }
        let mut progressed = false;
        for t in candidates {
            if let Some(d) = fails(&t) {
                best = t;
                best_detail = d;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    while best.threads > 2 {
        let t = Trial {
            threads: best.threads - 1,
            ..best
        };
        match fails(&t) {
            Some(d) => {
                best = t;
                best_detail = d;
            }
            None => break,
        }
    }
    for s in 0..best.seed.min(4) {
        let t = Trial { seed: s, ..best };
        if let Some(d) = fails(&t) {
            best = t;
            best_detail = d;
            break;
        }
    }
    (best, best_detail)
}

/// The exact command that reproduces one trial.
pub fn replay_command(trial: &Trial) -> String {
    format!(
        "cargo run -p hastm-check --release -- --replay --workload {} --combo {} --sched {} --seed {} --threads {} --ops {}",
        trial.workload.slug(),
        trial.combo.slug(),
        trial.sched.slug(),
        trial.seed,
        trial.effective_threads(),
        trial.ops
    )
}

// ---------------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------------

/// Suite parameters (CLI flags map onto these one-to-one).
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Number of consecutive seeds to sweep.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Worker threads per trial.
    pub threads: usize,
    /// Operations per thread per trial.
    pub ops: u64,
    /// Configuration matrix (defaults to [`Combo::all`]).
    pub combos: Vec<Combo>,
    /// Workloads to run (defaults to all five).
    pub workloads: Vec<Workload>,
    /// Maximum trial re-runs the shrinker may spend per failure.
    pub shrink_budget: u32,
    /// Schedule policy every trial runs under.
    pub sched: Sched,
    /// Record every trial's schedule and accumulate interleaving coverage
    /// into the report (small per-trial cost; abort-cause coverage is
    /// collected regardless).
    pub coverage: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seeds: 50,
            start_seed: 0,
            threads: 3,
            ops: 32,
            combos: Combo::all(),
            workloads: Workload::ALL.to_vec(),
            shrink_budget: 48,
            sched: Sched::Fuzzed,
            coverage: false,
        }
    }
}

/// One confirmed invariant violation, shrunk and replayable.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The trial that first exposed the violation.
    pub trial: Trial,
    /// Its failure detail.
    pub detail: String,
    /// The minimal failing trial the shrinker reached.
    pub shrunk: Trial,
    /// The shrunk trial's failure detail.
    pub shrunk_detail: String,
    /// Exact reproduction command for the shrunk trial.
    pub replay: String,
}

/// Suite outcome.
#[derive(Clone, Debug, Default)]
pub struct SuiteReport {
    /// Trials executed (excluding determinism re-runs and shrink re-runs).
    pub trials: u64,
    /// Every invariant violation found.
    pub failures: Vec<Failure>,
    /// Interleaving coverage across all trials (schedule-based metrics
    /// only populated when [`CheckConfig::coverage`] is on).
    pub coverage: Coverage,
}

/// Sweeps the full matrix across the seed range, calling `on_trial` after
/// each trial with its pass/fail status. The first seed of every
/// combination additionally checks determinism by re-running. Within each
/// seed, passing trials that differ only in [`GateMode`] are cross-checked
/// for bit-equal fingerprints (the schedule-identity property of the
/// run-until-overtaken quantum gate), and passing trials that differ only
/// in [`Versioning`] are cross-checked for equal final *state* (the
/// snapshot path must never change what writers commit; makespans
/// legitimately differ); a divergence is reported as its own [`Failure`].
pub fn run_suite(cfg: &CheckConfig, mut on_trial: impl FnMut(&Trial, bool)) -> SuiteReport {
    let mut report = SuiteReport::default();
    let plan = RunPlan {
        record_schedule: cfg.coverage,
        ..RunPlan::default()
    };
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        // (gate-erased combo slug, workload) → first gate variant's result,
        // reset per seed so only same-seed trials are compared.
        let mut by_gate_erased: std::collections::HashMap<
            (String, Workload),
            (Trial, Fingerprint),
        > = std::collections::HashMap::new();
        // (versioning-erased combo slug, workload) → first versioning
        // variant's result. Unlike the gate axis, versioning twins are
        // *not* schedule-identical (the snapshot path changes per-op
        // cycle costs), so only the final state is compared — which every
        // suite workload makes interleaving-independent by construction.
        let mut by_versioning_erased: std::collections::HashMap<
            (String, Workload),
            (Trial, Fingerprint),
        > = std::collections::HashMap::new();
        // (policy-erased combo slug, workload) → first policy variant's
        // result, restricted to the Phased / AbortRatioWatermark pair:
        // the phase controller must be *observationally invisible* in the
        // final state — it may change when transactions run, never what
        // they commit (serial-phase soundness included).
        let mut by_policy_pair: std::collections::HashMap<(String, Workload), (Trial, Fingerprint)> =
            std::collections::HashMap::new();
        for combo in &cfg.combos {
            for &workload in &cfg.workloads {
                let trial = Trial {
                    combo: *combo,
                    workload,
                    seed,
                    threads: cfg.threads,
                    ops: cfg.ops,
                    sched: cfg.sched,
                };
                let determinism = seed == cfg.start_seed;
                let outcome = check_trial_plan(&trial, &plan, determinism).map(|(fp, obs)| {
                    report.coverage.note(&obs);
                    fp
                });
                report.trials += 1;
                on_trial(&trial, outcome.is_ok());
                match outcome {
                    Err(detail) => {
                        let (shrunk, shrunk_detail) =
                            shrink_failure(trial, detail.clone(), cfg.shrink_budget);
                        let replay = replay_command(&shrunk);
                        report.failures.push(Failure {
                            trial,
                            detail,
                            shrunk,
                            shrunk_detail,
                            replay,
                        });
                    }
                    Ok(fp) => {
                        let key = (combo.gate_erased().slug(), workload);
                        match by_gate_erased.get(&key) {
                            None => {
                                by_gate_erased.insert(key, (trial, fp));
                            }
                            Some(&(other, other_fp)) if other.combo.gate != combo.gate => {
                                if other_fp != fp {
                                    // The divergence is a relation between
                                    // two trials, so the single-trial
                                    // shrinker cannot reproduce it; report
                                    // the pair unshrunk with a replay for
                                    // each side.
                                    let detail = format!(
                                        "gate divergence: {} fingerprint {fp:?} != {} \
                                         fingerprint {other_fp:?} (schedule-identity violated)",
                                        trial.combo, other.combo
                                    );
                                    let replay = format!(
                                        "{}\n    vs: {}",
                                        replay_command(&trial),
                                        replay_command(&other)
                                    );
                                    report.failures.push(Failure {
                                        trial,
                                        detail: detail.clone(),
                                        shrunk: trial,
                                        shrunk_detail: detail,
                                        replay,
                                    });
                                }
                            }
                            // Same gate listed twice (user-selected combos
                            // may duplicate); nothing to cross-check.
                            Some(_) => {}
                        }
                        let vkey = (combo.versioning_erased().slug(), workload);
                        match by_versioning_erased.get(&vkey) {
                            None => {
                                by_versioning_erased.insert(vkey, (trial, fp));
                            }
                            Some(&(other, other_fp))
                                if other.combo.versioning != combo.versioning =>
                            {
                                if other_fp.state != fp.state {
                                    let detail = format!(
                                        "versioning divergence: {} final state {:#018x} != {} \
                                         final state {:#018x} (multi-version writers must reach \
                                         the single-version state)",
                                        trial.combo, fp.state, other.combo, other_fp.state
                                    );
                                    let replay = format!(
                                        "{}\n    vs: {}",
                                        replay_command(&trial),
                                        replay_command(&other)
                                    );
                                    report.failures.push(Failure {
                                        trial,
                                        detail: detail.clone(),
                                        shrunk: trial,
                                        shrunk_detail: detail,
                                        replay,
                                    });
                                }
                            }
                            Some(_) => {}
                        }
                        if matches!(
                            combo.policy,
                            Some(ModePolicy::Phased(_) | ModePolicy::AbortRatioWatermark { .. })
                        ) {
                            let pkey = (combo.policy_erased().slug(), workload);
                            match by_policy_pair.get(&pkey) {
                                None => {
                                    by_policy_pair.insert(pkey, (trial, fp));
                                }
                                Some(&(other, other_fp))
                                    if other.combo.policy != combo.policy =>
                                {
                                    if other_fp.state != fp.state {
                                        let detail = format!(
                                            "phase-policy divergence: {} final state {:#018x} != \
                                             {} final state {:#018x} (the phase controller must \
                                             not change what transactions commit)",
                                            trial.combo, fp.state, other.combo, other_fp.state
                                        );
                                        let replay = format!(
                                            "{}\n    vs: {}",
                                            replay_command(&trial),
                                            replay_command(&other)
                                        );
                                        report.failures.push(Failure {
                                            trial,
                                            detail: detail.clone(),
                                            shrunk: trial,
                                            shrunk_detail: detail,
                                            replay,
                                        });
                                    }
                                }
                                Some(_) => {}
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::test_support::{InjectGuard, TEST_LOCK};
    use super::*;

    #[test]
    fn combo_matrix_size_and_slug_round_trip() {
        let all = Combo::all();
        assert_eq!(
            all.len(),
            180,
            "8 schemes, Hastm x5 policies, x2 gran x2 isa x3 gate, \
             + v3 twins of the 36 STM-based quantum combos"
        );
        assert_eq!(
            all.iter()
                .filter(|c| c.versioning.is_multi())
                .inspect(|c| {
                    assert!(c.scheme.is_stm_based());
                    assert_eq!(c.gate, GateMode::Quantum);
                })
                .count(),
            36
        );
        for combo in &all {
            let slug = combo.slug();
            let parsed = Combo::parse(&slug).expect("slug parses");
            assert_eq!(&parsed, combo, "round trip of {slug}");
        }
        // Pre-gate-mode slugs stay valid and default to the quantum gate;
        // both explicit gates parse with or without a policy in front.
        let legacy = Combo::parse("stm:obj:full").unwrap();
        assert_eq!(legacy.gate, GateMode::Quantum);
        assert_eq!(legacy.slug(), "stm:obj:full:quantum");
        assert_eq!(
            Combo::parse("stm:obj:full:perop").unwrap().gate,
            GateMode::PerOp
        );
        assert_eq!(
            Combo::parse("stm:obj:full:spec").unwrap().gate,
            GateMode::Speculative
        );
        assert_eq!(
            Combo::parse("stm:obj:full:spec").unwrap().slug(),
            "stm:obj:full:spec"
        );
        let full = Combo::parse("hastm:line:default:naive:perop").unwrap();
        assert_eq!(full.gate, GateMode::PerOp);
        assert_eq!(full.policy, Some(ModePolicy::NaiveAggressive));
        assert!(Combo::parse("bogus:obj:full").is_err());
        assert!(
            Combo::parse("stm:obj:full:watermark").is_err(),
            "policy only for hastm"
        );
        assert!(
            Combo::parse("hastm:obj:full:perop:naive").is_err(),
            "policy must precede the gate"
        );
        assert!(
            Combo::parse("stm:obj:full:perop:quantum").is_err(),
            "one gate only"
        );
        assert!(Combo::parse("hastm:obj").is_err());
        // Versioning suffix: `v1` canonicalizes to single-version (and
        // drops out of the slug), `v3` round-trips, and the suffix obeys
        // the canonical policy:gate:v<k> order.
        let v3 = Combo::parse("stm:obj:full:v3").unwrap();
        assert_eq!(v3.versioning, Versioning::Multi { k: 3 });
        assert_eq!(v3.slug(), "stm:obj:full:quantum:v3");
        assert_eq!(
            Combo::parse("stm:obj:full:v1").unwrap().versioning,
            Versioning::Single
        );
        assert_eq!(
            Combo::parse("stm:obj:full:v1").unwrap().slug(),
            "stm:obj:full:quantum"
        );
        let full_v = Combo::parse("hastm:line:full:watermark:quantum:v2").unwrap();
        assert_eq!(full_v.versioning, Versioning::Multi { k: 2 });
        assert_eq!(full_v.slug(), "hastm:line:full:watermark:quantum:v2");
        assert!(
            Combo::parse("seq:obj:full:v3").is_err(),
            "multi-versioning needs an STM-based scheme"
        );
        assert!(
            Combo::parse("stm:obj:full:v3:quantum").is_err(),
            "gate must precede the versioning suffix"
        );
        assert!(Combo::parse("stm:obj:full:v3:v3").is_err(), "one v only");
        assert!(Combo::parse("stm:obj:full:vx").is_err());
        assert!(Workload::parse("map").is_ok());
        assert!(Workload::parse("nope").is_err());
    }

    #[test]
    fn suite_is_green_on_a_matrix_sample() {
        let _guard = TEST_LOCK.lock().unwrap();
        // One representative per scheme (obj/full), plus line-granularity
        // and default-ISA spot checks; tiny trials keep this fast under
        // the dev profile — the full matrix runs in CI via the binary.
        let combos: Vec<Combo> = [
            "seq:obj:full",
            "lock:obj:full",
            "stm:line:full",
            // Per-op and speculative twins of two quantum combos:
            // exercises the suite's cross-scheduler fingerprint comparison
            // (any divergence would surface as a `gate divergence`
            // failure). Under the fuzzed sched the speculative gate clamps
            // to the per-op schedule, so this checks the clamp path; the
            // engaged path gets its own `Sched::Det` test below.
            "stm:line:full:perop",
            "stm:line:full:spec",
            // Multi-version twins of two quantum combos: exercises the
            // suite's single-vs-multi final-state comparison (a writer
            // divergence would surface as a `versioning divergence`
            // failure) and the zero-snapshot-abort invariant.
            "stm:line:full:v3",
            "hastm:obj:full:watermark:v3",
            "hastm-cautious:obj:full",
            "hastm:obj:full:watermark",
            "hastm:obj:full:watermark:perop",
            "hastm:obj:full:watermark:spec",
            "hastm:line:default:naive",
            "hastm-noreuse:obj:full",
            "naive-aggressive:line:full",
            "hytm:obj:full",
        ]
        .iter()
        .map(|s| Combo::parse(s).unwrap())
        .collect();
        let cfg = CheckConfig {
            seeds: 2,
            ops: 10,
            combos,
            // The two fast workloads; the tree workloads get their own
            // (smaller) green test below.
            workloads: vec![Workload::Counter, Workload::Map],
            ..CheckConfig::default()
        };
        let report = run_suite(&cfg, |_, _| {});
        assert_eq!(report.trials, 2 * 15 * 2);
        assert!(
            report.failures.is_empty(),
            "unexpected violations: {:#?}",
            report.failures
        );
    }

    #[test]
    fn multi_version_map_trials_snapshot_read_and_never_abort() {
        let _guard = TEST_LOCK.lock().unwrap();
        let trial = Trial {
            combo: Combo::parse("stm:line:full:v3").unwrap(),
            workload: Workload::Map,
            seed: 11,
            threads: 3,
            ops: 24,
            sched: Sched::Fuzzed,
        };
        let (res, obs) = run_trial_observed(&trial, &RunPlan::default());
        res.expect("multi-version map trial passes");
        assert!(
            obs.ro_commits > 0,
            "gets must run as snapshot transactions: {obs:?}"
        );
        assert_eq!(obs.ro_aborts, 0, "snapshot reads are abort-free");
        // The single-version twin of the same trial reaches the identical
        // final state (the suite cross-checks this per seed; here the
        // relation is asserted directly).
        let single = Trial {
            combo: Combo::parse("stm:line:full").unwrap(),
            ..trial
        };
        let fp_multi = run_trial(&trial).unwrap();
        let fp_single = run_trial(&single).unwrap();
        assert_eq!(
            fp_multi.state, fp_single.state,
            "multi-version writers must commit the single-version state"
        );
    }

    #[test]
    fn versioning_twins_sweep_green_across_workloads() {
        let _guard = TEST_LOCK.lock().unwrap();
        let combos: Vec<Combo> = [
            "stm:line:full",
            "stm:line:full:v3",
            "hastm:obj:full:watermark",
            "hastm:obj:full:watermark:v3",
            "hastm:obj:full:watermark:v2",
        ]
        .iter()
        .map(|s| Combo::parse(s).unwrap())
        .collect();
        let cfg = CheckConfig {
            seeds: 2,
            ops: 8,
            combos,
            workloads: vec![Workload::Map, Workload::Oltp],
            ..CheckConfig::default()
        };
        let report = run_suite(&cfg, |_, _| {});
        assert_eq!(report.trials, 2 * 5 * 2);
        assert!(
            report.failures.is_empty(),
            "versioning sweep diverged: {:#?}",
            report.failures
        );
    }

    #[test]
    fn speculative_gate_engages_under_det_sched_and_matches_quantum() {
        let _guard = TEST_LOCK.lock().unwrap();
        // Only the deterministic sched lets the speculative gate engage
        // (fuzz/PCT perturbation clamps it to the per-op schedule), so
        // this is the path where certification and rollback really run.
        let mut engaged = 0u64;
        for seed in 0..4 {
            let spec = Trial {
                combo: Combo::parse("stm:line:full:spec").unwrap(),
                workload: Workload::Counter,
                seed,
                threads: 3,
                ops: 24,
                sched: Sched::Det,
            };
            let quantum = Trial {
                combo: Combo::parse("stm:line:full").unwrap(),
                ..spec
            };
            // Raw run: the verdict must be present and speculation must
            // actually attempt ops (the workers outnumber the minimal
            // core, so clock-only ops speculate even when every memory
            // probe is refused).
            let (_, obs) = run_trial_raw(&spec, &RunPlan::default());
            let outcome = obs.spec.expect("speculative trial reports a verdict");
            assert!(outcome.total_ops > 0);
            engaged += outcome.spec_ops;
            // Certified-or-rerun contract: the public runner's fingerprint
            // is always the quantum one, bit-exact.
            let fp_spec = run_trial(&spec).expect("spec trial passes");
            let fp_quantum = run_trial(&quantum).expect("quantum trial passes");
            assert_eq!(
                fp_spec, fp_quantum,
                "seed {seed}: speculative fingerprint diverged from quantum"
            );
        }
        assert!(
            engaged > 0,
            "speculation never attempted an op across 4 det-sched seeds"
        );
    }

    #[test]
    fn injected_lost_update_is_caught_shrunk_and_replayable() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _inject = InjectGuard::arm();
        let cfg = CheckConfig {
            seeds: 8,
            ops: 24,
            combos: vec![Combo::parse("stm:line:full").unwrap()],
            workloads: vec![Workload::Counter],
            ..CheckConfig::default()
        };
        let report = run_suite(&cfg, |_, _| {});
        let failure = report
            .failures
            .first()
            .expect("the injected lost-update bug must be caught");
        assert!(
            failure.detail.contains("counter sum"),
            "caught as a lost update: {}",
            failure.detail
        );
        // Shrunk to no larger than the original trial, and the shrunk
        // trial still fails when replayed from scratch.
        assert!(failure.shrunk.ops <= failure.trial.ops);
        let replayed = check_trial(&failure.shrunk, false);
        assert!(
            replayed.is_some(),
            "replaying the shrunk trial must reproduce the failure"
        );
        assert!(failure.replay.contains("--replay"));
        assert!(failure
            .replay
            .contains(&format!("--seed {}", failure.shrunk.seed)));
        assert!(failure
            .replay
            .contains(&format!("--ops {}", failure.shrunk.ops)));
    }

    #[test]
    fn tree_workloads_are_green_and_deterministic() {
        let _guard = TEST_LOCK.lock().unwrap();
        // The BST and B-tree differential workloads on the matrix points
        // most likely to disturb tree internals: STM at line granularity
        // (false sharing across node fields) and HASTM under the naive
        // always-aggressive policy (spurious aborts force re-execution).
        let combos: Vec<Combo> = ["stm:line:full", "hastm:obj:full:naive"]
            .iter()
            .map(|s| Combo::parse(s).unwrap())
            .collect();
        let cfg = CheckConfig {
            seeds: 2,
            ops: 8,
            combos,
            workloads: vec![Workload::Bst, Workload::BTree],
            ..CheckConfig::default()
        };
        let report = run_suite(&cfg, |_, _| {});
        assert_eq!(report.trials, 2 * 2 * 2);
        assert!(
            report.failures.is_empty(),
            "tree workloads diverged from the sequential reference: {:#?}",
            report.failures
        );
    }

    #[test]
    fn shrink_failure_is_deterministic() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _inject = InjectGuard::arm();
        let combo = Combo::parse("stm:line:full").unwrap();
        let failing = (0..8)
            .map(|seed| Trial {
                combo,
                workload: Workload::Counter,
                seed,
                threads: 3,
                ops: 24,
                sched: Sched::Fuzzed,
            })
            .find_map(|t| check_trial(&t, false).map(|d| (t, d)))
            .expect("the injected bug must fail within 8 seeds");
        // The shrinker only consults the (deterministic) runner, so the
        // same failing input must always reach the same minimal trial.
        let a = shrink_failure(failing.0, failing.1.clone(), 64);
        let b = shrink_failure(failing.0, failing.1, 64);
        assert_eq!(a.0, b.0, "same minimal trial");
        assert_eq!(a.1, b.1, "same failure detail");
        assert!(a.0.ops <= failing.0.ops);
    }

    #[test]
    fn fingerprints_are_stable_across_processes_of_the_same_trial() {
        let _guard = TEST_LOCK.lock().unwrap();
        let trial = Trial {
            combo: Combo::parse("hastm:obj:full:watermark").unwrap(),
            workload: Workload::Map,
            seed: 7,
            threads: 3,
            ops: 12,
            sched: Sched::Fuzzed,
        };
        let a = run_trial(&trial).expect("trial passes");
        let b = run_trial(&trial).expect("trial passes");
        assert_eq!(a, b, "same trial, same machine, same fingerprint");
    }
}
