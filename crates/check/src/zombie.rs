//! Opacity-violation ("zombie") scenarios: fault-injected OLTP schedules
//! engineered so that doomed transactions read inconsistent state, plus
//! the detection harness that proves the serializability oracle flags any
//! zombie that actually commits.
//!
//! A *zombie* is a transaction that has already lost a conflict but keeps
//! executing on stale reads (the sandboxing literature's term). The STM's
//! defense is software read-set revalidation — periodic, at `ctx_guard`,
//! and at commit. Each scenario here is tuned to maximize the windows
//! that defense must close:
//!
//! * **delayed validation** — `validation_period` is raised to `u32::MAX`,
//!   so the periodic walk never fires and everything rides on the
//!   commit-time (and `ctx_guard`) walk;
//! * **forced evictions / back-invalidations / spurious watch violations**
//!   — an injected fault plan knocks marked lines out of the caches,
//!   dirtying HASTM mark counters so the cautious scheme cannot take its
//!   hardware shortcut and must fall into the software walk;
//! * **hot, skewed traffic** — a 12-account θ=1.1 mill with back-to-back
//!   arrivals, so cross-thread read-write overlap is the common case, not
//!   the exception.
//!
//! Against an *unmutated* tree the scenarios are green: the slow-path walk
//! catches every doomed transaction, the ledger matches the closed form,
//! and the oracle settles clean. Under the core crate's `seeded-bug`
//! mutation (forwarded by this crate's `seeded-zombie` feature) the walk
//! silently succeeds, zombies commit, and [`run_zombie_scenario`] must
//! report the damage — via the oracle and/or ledger divergence. The
//! `zombie_mutation` integration test asserts both directions.

use hastm::Granularity;
use hastm_sim::{FaultEvent, FaultKind, SchedulePolicy};
use hastm_workloads::oltp::{
    balances_digest, expected_balances, run_oltp_sim, total_balance, OltpConfig, OltpSimConfig,
};
use hastm_workloads::Scheme;

/// One zombie scenario: a scheme whose transactions run through the
/// software revalidation slow path, plus the seed that picks the fuzzed
/// interleaving and traffic.
#[derive(Copy, Clone, Debug)]
pub struct ZombieScenario {
    /// Scheme under attack ([`Scheme::Stm`] or [`Scheme::HastmCautious`];
    /// both route commit-time validation through the software walk).
    pub scheme: Scheme,
    /// Conflict-detection granularity.
    pub granularity: Granularity,
    /// Traffic + schedule seed.
    pub seed: u64,
}

/// The scenario matrix for one seed: both slow-path schemes at cache-line
/// granularity (line granularity maximizes false-sharing-driven record
/// churn, widening the zombie windows).
pub fn scenarios(seed: u64) -> Vec<ZombieScenario> {
    [Scheme::Stm, Scheme::HastmCautious]
        .into_iter()
        .map(|scheme| ZombieScenario {
            scheme,
            granularity: Granularity::CacheLine,
            seed,
        })
        .collect()
}

/// Builds the fault-injected mill configuration of a scenario.
pub fn scenario_config(sc: &ZombieScenario) -> OltpSimConfig {
    let oltp = OltpConfig {
        threads: 3,
        txns_per_thread: 24,
        accounts: 12,
        zipf_theta: 1.1,
        read_pct: 40,
        txn_keys: 3,
        large_txn_pct: 5,
        large_txn_keys: 6,
        flash_phases: 2,
        // Back-to-back arrivals: every thread is always behind, so
        // transactions overlap maximally.
        mean_arrival_gap: 50,
        seed: sc.seed,
    };
    let mut cfg = OltpSimConfig::new(oltp, sc.scheme, sc.granularity);
    cfg.machine.schedule = SchedulePolicy::Fuzzed { seed: sc.seed };
    // Delayed validation: the periodic read-set walk never fires;
    // commit-time revalidation is the only line of defense.
    cfg.validation_period = Some(u32::MAX);
    // Rotating fault plan: forced L1 evictions, inclusive-L2
    // back-invalidations, and spurious watch violations, staggered across
    // cores through the whole run.
    cfg.faults = (0..18u64)
        .map(|i| FaultEvent {
            at_op: 25 + 35 * i,
            core: (i % 3) as usize,
            kind: match i % 3 {
                0 => FaultKind::EvictL1 { nth: i as usize },
                1 => FaultKind::BackInvalidate { nth: i as usize },
                _ => FaultKind::SpuriousAbort,
            },
        })
        .collect();
    cfg
}

/// What a passing (green) scenario run exposed — the coverage facts the
/// unmutated test asserts.
#[derive(Clone, Debug)]
pub struct ZombieReport {
    /// Software read-set walks performed (must be nonzero unmutated: the
    /// mutated code path is genuinely exercised).
    pub validations_full: u64,
    /// Top-level commits.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
}

/// Runs one zombie scenario and checks it: the serializability oracle
/// must settle clean, total balance must be conserved, and the final
/// ledger must equal the closed form.
///
/// # Errors
///
/// Returns a description of the detected damage — an oracle
/// serializability violation or a ledger divergence — which is exactly
/// what the `seeded-zombie` mutation must provoke.
pub fn run_zombie_scenario(sc: &ZombieScenario) -> Result<ZombieReport, String> {
    let cfg = scenario_config(sc);
    let expected = expected_balances(&cfg.oltp);
    let r = run_oltp_sim(&cfg);
    if r.oracle_violations > 0 {
        return Err(format!(
            "oracle: {} serializability violations (zombie committed on stale reads) [{:?} seed {}]",
            r.oracle_violations, sc.scheme, sc.seed
        ));
    }
    if total_balance(&r.balances) != total_balance(&expected) {
        return Err(format!(
            "ledger: total balance {} != conserved total {} [{:?} seed {}]",
            total_balance(&r.balances),
            total_balance(&expected),
            sc.scheme,
            sc.seed
        ));
    }
    if r.digest != balances_digest(&expected) {
        let divergent = r
            .balances
            .iter()
            .zip(&expected)
            .filter(|(a, b)| a != b)
            .count();
        return Err(format!(
            "ledger: {divergent} accounts diverge from the closed form [{:?} seed {}]",
            sc.scheme, sc.seed
        ));
    }
    Ok(ZombieReport {
        validations_full: r.txn.validations_full,
        commits: r.metrics.commits,
        aborts: r.metrics.aborts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scenarios are green on the unmutated tree and genuinely drive
    /// the software revalidation walk (the mutation's target) — asserted
    /// here so the in-crate suite catches a scenario that rots into
    /// vacuity. The mutated direction lives in `tests/zombie_mutation.rs`.
    #[cfg(not(feature = "seeded-zombie"))]
    #[test]
    fn scenarios_are_green_and_exercise_the_slow_path() {
        for sc in scenarios(1) {
            let report = run_zombie_scenario(&sc)
                .unwrap_or_else(|e| panic!("{:?} must be green unmutated: {e}", sc.scheme));
            assert!(
                report.validations_full > 0,
                "{:?}: the scenario must exercise software revalidation",
                sc.scheme
            );
            assert!(report.commits >= 3 * 24);
        }
    }
}
