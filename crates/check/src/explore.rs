//! Bounded-exhaustive interleaving enumeration for tiny workloads.
//!
//! The explorer walks the tree of preemption traces over a *deterministic*
//! base schedule ([`Sched::Det`]): each node is a trace (a sorted list of
//! `at_op@core` directives, at most [`ExploreConfig::bound`] long), and
//! each run replays the workload from scratch with that trace installed,
//! recording the per-op schedule. Terminal states are cross-checked
//! against the workload's interleaving-independent expected answer and the
//! serializability oracle by the ordinary trial runner — any violation is
//! a found bug, which the trace shrinker then minimizes.
//!
//! **Branching.** Children of a trace are generated from its own recorded
//! run: at every op that touched a *conflict line* (a cache line accessed
//! by more than one core, with at least one write, anywhere in the run),
//! the explorer tries handing the machine to each other core instead.
//! Preemptions at non-conflict ops cannot change the final abstract state
//! (they only reorder operations that commute), so this candidate set is
//! exhaustive for state-distinguishable interleavings at the given
//! preemption bound.
//!
//! **Pruning.** Runs are fingerprinted by [`schedule_hash`] — the full
//! `(core, line, is_write)` admission sequence. The workload's per-core op
//! streams and the machine are deterministic, so two runs with equal
//! hashes are *the same run*; when a trace reproduces an
//! already-expanded schedule, its subtree is a duplicate (child candidates
//! are derived from the identical log) and is pruned.

use std::collections::{HashMap, HashSet, VecDeque};

use hastm_sim::{LineId, Preemption};

use crate::{
    replay_command, run_trial_observed, run_trial_plan, schedule_hash, trace_slug, Combo, Coverage,
    Observation, RunPlan, Sched, Trial, Workload,
};

/// Parameters of one exploration campaign.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Configuration-matrix point under test.
    pub combo: Combo,
    /// Workload under test (the counter is the classic choice: every op
    /// conflicts).
    pub workload: Workload,
    /// Seed of the workload's operation streams.
    pub seed: u64,
    /// Worker threads (keep to 2–3; the tree is exponential in this).
    pub threads: usize,
    /// Operations per thread (keep tiny; ~20 total gated ops per core).
    pub ops: u64,
    /// Maximum preemption directives per trace (the preemption bound).
    pub bound: usize,
    /// Maximum workload runs to spend before giving up on draining the
    /// frontier (the report marks truncation).
    pub max_runs: u64,
    /// Maximum re-runs the trace shrinker may spend on a failure.
    pub shrink_budget: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            combo: Combo::parse("stm:obj:full").expect("static slug"),
            workload: Workload::Counter,
            seed: 0,
            threads: 2,
            ops: 2,
            bound: 2,
            max_runs: 2_000,
            shrink_budget: 64,
        }
    }
}

impl ExploreConfig {
    /// The trial every exploration run replays (deterministic base
    /// schedule; the trace supplies all perturbation).
    pub fn trial(&self) -> Trial {
        Trial {
            combo: self.combo,
            workload: self.workload,
            seed: self.seed,
            threads: self.threads,
            ops: self.ops,
            sched: Sched::Det,
        }
    }
}

/// A bug the explorer found: the first failing trace and its shrunk form.
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// The trace that first exposed the violation.
    pub trace: Vec<Preemption>,
    /// Its failure detail.
    pub detail: String,
    /// The minimal failing trace the shrinker reached.
    pub shrunk: Vec<Preemption>,
    /// The shrunk trace's failure detail.
    pub shrunk_detail: String,
    /// Exact reproduction command for the shrunk trace.
    pub replay: String,
    /// Per-transaction timeline of the shrunk failing run (see
    /// [`hastm_sim::summarize`]): the minimal repro, narrated.
    pub timeline: String,
}

/// Event lines the timeline summary shows per core before truncating.
const TIMELINE_LINES_PER_CORE: usize = 40;

/// Re-runs a (failing) trace with the event trace armed and renders its
/// per-transaction timeline. Failures here are expected — that is the
/// point — so the observation is harvested regardless of the verdict.
fn failure_timeline(trial: &Trial, trace: &[Preemption]) -> String {
    let plan = RunPlan {
        preemptions: trace.to_vec(),
        faults: Vec::new(),
        record_schedule: false,
        trace: Some(hastm_sim::TraceConfig::default()),
    };
    let (_, obs) = run_trial_observed(trial, &plan);
    match obs.trace {
        Some(log) => hastm_sim::summarize(&log, TIMELINE_LINES_PER_CORE),
        None => "(no trace recorded)".to_string(),
    }
}

/// Outcome of an exploration campaign.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Workload runs executed (including the base run, excluding shrink
    /// re-runs).
    pub runs: u64,
    /// Traces whose schedule had already been expanded (subtree pruned).
    pub pruned: u64,
    /// True when `max_runs` ran out before the frontier drained — coverage
    /// below the bound is then incomplete.
    pub truncated: bool,
    /// Interleaving coverage across all runs.
    pub coverage: Coverage,
    /// The first invariant violation found, if any (exploration stops on
    /// it).
    pub failure: Option<ExploreFailure>,
}

fn run_traced(trial: &Trial, trace: &[Preemption]) -> Result<Observation, String> {
    let plan = RunPlan {
        preemptions: trace.to_vec(),
        faults: Vec::new(),
        record_schedule: true,
        trace: None,
    };
    run_trial_plan(trial, &plan).map(|(_, obs)| obs)
}

/// The lines more than one core touched, with at least one write — the
/// ops where a preemption can change the final abstract state.
fn conflict_lines(obs: &Observation) -> HashSet<LineId> {
    let mut readers_writers: HashMap<LineId, (HashSet<usize>, bool)> = HashMap::new();
    for ev in &obs.schedule {
        let Some((line, write)) = ev.line else {
            continue;
        };
        let entry = readers_writers.entry(line).or_default();
        entry.0.insert(ev.core);
        entry.1 |= write;
    }
    readers_writers
        .into_iter()
        .filter(|(_, (cores, wrote))| cores.len() > 1 && *wrote)
        .map(|(line, _)| line)
        .collect()
}

/// Child directives of a trace, derived from its recorded run: at each op
/// on a conflict line (past the trace's last directive), hand the machine
/// to each other core.
fn candidates(cfg: &ExploreConfig, trace: &[Preemption], obs: &Observation) -> Vec<Preemption> {
    let conflicts = conflict_lines(obs);
    let min_at = trace.last().map_or(0, |p| p.at_op + 1);
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for ev in &obs.schedule {
        if ev.op < min_at {
            continue;
        }
        let Some((line, _)) = ev.line else { continue };
        if !conflicts.contains(&line) {
            continue;
        }
        for core in 0..cfg.threads {
            if core != ev.core && seen.insert((ev.op, core)) {
                out.push(Preemption { at_op: ev.op, core });
            }
        }
    }
    out
}

/// Greedily minimizes a failing trace: drop whole directives, then shrink
/// `at_op` values toward the previous directive — keeping every candidate
/// that still fails. Deterministic: candidates are tried in a fixed order
/// and the (deterministic) runner decides, so the same input always
/// shrinks to the same minimal trace.
pub fn shrink_trace(
    trial: &Trial,
    trace: Vec<Preemption>,
    detail: String,
    budget: u32,
) -> (Vec<Preemption>, String) {
    let mut left = budget;
    let mut fails = move |t: &[Preemption]| -> Option<String> {
        if left == 0 {
            return None;
        }
        left -= 1;
        run_traced(trial, t).err()
    };

    let mut best = trace;
    let mut best_detail = detail;
    // Pass 1: drop directives, first-to-last, restarting after each win so
    // a drop that enables further drops is found.
    'drop: loop {
        for i in 0..best.len() {
            let mut t = best.clone();
            t.remove(i);
            if let Some(d) = fails(&t) {
                best = t;
                best_detail = d;
                continue 'drop;
            }
        }
        break;
    }
    // Pass 2: pull each at_op toward its predecessor's (halving, then
    // decrementing), preserving sort order.
    for i in 0..best.len() {
        let floor = if i == 0 { 0 } else { best[i - 1].at_op };
        loop {
            let cur = best[i].at_op;
            if cur <= floor {
                break;
            }
            let mut progressed = false;
            for cand in [floor + (cur - floor) / 2, cur - 1] {
                if cand >= cur {
                    continue;
                }
                let mut t = best.clone();
                t[i].at_op = cand;
                if let Some(d) = fails(&t) {
                    best = t;
                    best_detail = d;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    (best, best_detail)
}

/// Replay command for a failing exploration trace.
pub fn trace_replay_command(trial: &Trial, trace: &[Preemption]) -> String {
    format!("{} --trace {}", replay_command(trial), trace_slug(trace))
}

/// Runs one exploration campaign: breadth-first over preemption traces up
/// to the bound, pruning duplicate schedules, cross-checking every
/// terminal state, accumulating coverage, and stopping on (and shrinking)
/// the first violation.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    let trial = cfg.trial();
    let mut report = ExploreReport::default();
    let mut expanded: HashSet<u64> = HashSet::new();
    let mut frontier: VecDeque<Vec<Preemption>> = VecDeque::from([Vec::new()]);

    while let Some(trace) = frontier.pop_front() {
        if report.runs >= cfg.max_runs {
            report.truncated = true;
            break;
        }
        report.runs += 1;
        let obs = match run_traced(&trial, &trace) {
            Err(detail) => {
                let (shrunk, shrunk_detail) =
                    shrink_trace(&trial, trace.clone(), detail.clone(), cfg.shrink_budget);
                let replay = trace_replay_command(&trial, &shrunk);
                let timeline = failure_timeline(&trial, &shrunk);
                report.failure = Some(ExploreFailure {
                    trace,
                    detail,
                    shrunk,
                    shrunk_detail,
                    replay,
                    timeline,
                });
                break;
            }
            Ok(obs) => obs,
        };
        report.coverage.note(&obs);
        if !expanded.insert(schedule_hash(&obs.schedule)) {
            report.pruned += 1;
            continue;
        }
        if trace.len() < cfg.bound {
            for directive in candidates(cfg, &trace, &obs) {
                let mut child = trace.clone();
                child.push(directive);
                frontier.push_back(child);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_counter_is_green_and_covers_orderings() {
        let _guard = crate::test_support::TEST_LOCK.lock().unwrap();
        let cfg = ExploreConfig {
            combo: Combo::parse("stm:obj:full").unwrap(),
            max_runs: 300,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        assert!(
            report.failure.is_none(),
            "unmutated tree must be green: {:?}",
            report.failure
        );
        assert!(report.runs > 1, "the base run must spawn children");
        assert!(
            report.coverage.schedules.len() > 1,
            "preemptions must produce distinct schedules"
        );
        assert!(
            !report.coverage.conflict_orderings.is_empty(),
            "the counter workload must expose conflict orderings"
        );
    }

    #[test]
    fn explore_is_deterministic() {
        let _guard = crate::test_support::TEST_LOCK.lock().unwrap();
        let cfg = ExploreConfig {
            max_runs: 120,
            ..ExploreConfig::default()
        };
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.coverage.schedules, b.coverage.schedules);
        assert_eq!(a.coverage.conflict_orderings, b.coverage.conflict_orderings);
    }

    #[test]
    fn shrink_trace_is_deterministic_and_minimal() {
        let _guard = crate::test_support::TEST_LOCK.lock().unwrap();
        let _inject = crate::test_support::InjectGuard::arm();
        // The injected non-atomic increment races under plain preemption
        // traces too, so the explorer must find a failing trace…
        let cfg = ExploreConfig {
            combo: Combo::parse("stm:line:full").unwrap(),
            threads: 2,
            ops: 2,
            bound: 2,
            max_runs: 500,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        let failure = report
            .failure
            .expect("the injected lost update must surface during exploration");
        assert!(
            failure.timeline.contains("txn"),
            "shrunk failure must carry a transactional timeline:\n{}",
            failure.timeline
        );
        // …and re-shrinking the original trace twice must walk the exact
        // same path to the exact same minimal trace (the shrinker only
        // consults the deterministic runner).
        let trial = cfg.trial();
        let a = shrink_trace(&trial, failure.trace.clone(), failure.detail.clone(), 64);
        let b = shrink_trace(&trial, failure.trace.clone(), failure.detail.clone(), 64);
        assert_eq!(a.0, b.0, "same minimal trace");
        assert_eq!(a.1, b.1, "same failure detail");
        assert!(a.0.len() <= failure.trace.len(), "shrinking never grows");
        assert_eq!(a.0, failure.shrunk, "explore() shrinks the same way");
    }

    #[test]
    fn pruning_dedups_equivalent_traces() {
        // With a bound of 2 the frontier revisits schedules reachable via
        // different traces (e.g. a directive at a no-op position); pruning
        // must fire, and pruned + expanded must account for every run.
        let _guard = crate::test_support::TEST_LOCK.lock().unwrap();
        let cfg = ExploreConfig {
            bound: 2,
            max_runs: 500,
            ..ExploreConfig::default()
        };
        let report = explore(&cfg);
        assert!(report.failure.is_none());
        assert!(report.pruned > 0, "duplicate schedules must be pruned");
        assert_eq!(
            report.runs,
            report.pruned + report.coverage.schedules.len() as u64,
            "every run either expanded a new schedule or was pruned"
        );
    }
}
