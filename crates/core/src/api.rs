//! The user-facing transaction API: `atomic` blocks, closed nesting with
//! partial rollback, and `retry`/`orElse` condition synchronization.

use crate::config::{Abort, TxResult, TxnKind};
use crate::stats::Category;
use crate::txn::TxThread;

/// Maximum local retries of a nested transaction before the conflict is
/// escalated to the parent.
const NESTED_RETRY_LIMIT: u32 = 8;

impl<'c, 'm> TxThread<'c, 'm> {
    /// Runs `f` as a transaction, retrying on conflicts until it commits,
    /// and returns its result. This is the runtime entry point for a
    /// language-level `atomic { ... }` block.
    ///
    /// If a transaction is already active, this is a **nested** transaction
    /// and behaves like [`TxThread::nested`] except that non-local aborts
    /// restart the outermost transaction (flat `atomic` composition).
    ///
    /// `Err(Abort::Retry)` from `f` implements the `retry` primitive: the
    /// transaction rolls back and re-executes after a (simulated) wait.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns `Err(Abort::Explicit)`; use
    /// [`TxThread::try_atomic`] for abortable transactions.
    pub fn atomic<R>(&mut self, mut f: impl FnMut(&mut Self) -> TxResult<R>) -> R {
        if self.is_active() {
            match self.nested(&mut f) {
                Ok(r) => return r,
                Err(Abort::Explicit) => panic!("explicit abort inside atomic; use try_atomic"),
                Err(cause) => {
                    // Non-local conflict: the enclosing atomic loop will
                    // observe the error and restart from the top. We cannot
                    // unwind to it from here, so surface as a panic only if
                    // there is no enclosing `atomic` to catch it — which
                    // cannot happen because `is_active()` implied one.
                    // Propagation happens via the TxResult of the enclosing
                    // closure, so re-raise by... aborting to the top level.
                    // The enclosing closure must use `?`; we emulate that by
                    // panicking with a typed payload that the top-level
                    // `atomic` catches.
                    std::panic::panic_any(EscalatedAbort(cause));
                }
            }
        }
        match self.try_atomic(f) {
            Ok(r) => r,
            Err(_) => panic!("explicit abort inside atomic; use try_atomic"),
        }
    }

    /// Like [`TxThread::atomic`], but `Err(Abort::Explicit)` from `f`
    /// rolls the transaction back and surfaces as `Err(Abort::Explicit)`
    /// instead of panicking (user-initiated abort, §2).
    ///
    /// # Errors
    ///
    /// Returns `Err(Abort::Explicit)` iff `f` requested it; all other abort
    /// causes are retried internally.
    pub fn try_atomic<R>(
        &mut self,
        f: impl FnMut(&mut Self) -> TxResult<R>,
    ) -> Result<R, Abort> {
        self.try_atomic_kind(TxnKind::ReadWrite, f)
    }

    /// Runs `f` as a transaction declared **read-only**
    /// ([`TxnKind::ReadOnly`]), retrying until it commits.
    ///
    /// Under [`crate::Versioning::Multi`] the transaction reads a
    /// consistent snapshot at its start stamp and commits without
    /// validation — it cannot conflict-abort, so `f` runs exactly once
    /// (unless it requests `retry`). Under [`crate::Versioning::Single`]
    /// this is [`TxThread::atomic`]. Writing inside `f` is a bug and
    /// panics on the snapshot path.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active, if `f` writes on the
    /// snapshot path, or if `f` returns `Err(Abort::Explicit)` (use
    /// [`TxThread::try_atomic_ro`]).
    pub fn atomic_ro<R>(&mut self, f: impl FnMut(&mut Self) -> TxResult<R>) -> R {
        assert!(!self.is_active(), "atomic_ro requires no enclosing txn");
        match self.try_atomic_kind(TxnKind::ReadOnly, f) {
            Ok(r) => r,
            Err(_) => panic!("explicit abort inside atomic_ro; use try_atomic_ro"),
        }
    }

    /// [`TxThread::atomic_ro`] with `Err(Abort::Explicit)` surfaced to the
    /// caller instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns `Err(Abort::Explicit)` iff `f` requested it.
    pub fn try_atomic_ro<R>(
        &mut self,
        f: impl FnMut(&mut Self) -> TxResult<R>,
    ) -> Result<R, Abort> {
        self.try_atomic_kind(TxnKind::ReadOnly, f)
    }

    fn try_atomic_kind<R>(
        &mut self,
        kind: TxnKind,
        mut f: impl FnMut(&mut Self) -> TxResult<R>,
    ) -> Result<R, Abort> {
        assert!(!self.is_active(), "try_atomic requires no enclosing txn");
        let mut attempt: u32 = 0;
        loop {
            // The span starts *before* `begin` and the roll-back in `abort`
            // runs before the span is captured, so their bookkeeping cycles
            // land in App (per its contract: "application work, begin/abort
            // bookkeeping") — every cycle of the attempt is attributed to
            // exactly one category and the breakdown sums to elapsed time.
            let t_begin = self.cpu.now();
            let non_app_before = self.stats.breakdown.total() - self.stats.breakdown.app;
            match kind {
                TxnKind::ReadWrite => self.begin(attempt),
                TxnKind::ReadOnly => self.begin_ro(attempt),
            }
            // Captured now: the commit/abort hooks consume `self.phase`.
            let attempt_phase = self.phase;
            let outcome = match catch_escalation(|| f(self)) {
                Ok(body) => body.and_then(|r| self.commit().map(|()| r)),
                Err(cause) => Err(cause),
            };
            if let Err(cause) = &outcome {
                self.abort(*cause);
            }
            // Attribute un-categorized transaction time to App.
            let span = self.cpu.now() - t_begin;
            let non_app_after = self.stats.breakdown.total() - self.stats.breakdown.app;
            let overhead = non_app_after - non_app_before;
            self.attribute(Category::App, span.saturating_sub(overhead));
            if let Some(p) = attempt_phase {
                // HyTM cost-model instrumentation: time-in-phase and the
                // phase's fast-path penalty (non-application cycles).
                self.stats.phase_cycles[p.idx()] += span;
                self.stats.phase_overhead_cycles[p.idx()] += overhead;
            }
            match outcome {
                Ok(r) => return Ok(r),
                Err(cause) => {
                    if cause == Abort::Explicit {
                        return Err(Abort::Explicit);
                    }
                    // Exponential backoff with jitter before re-executing;
                    // `retry` waits longer (condition polling).
                    let shift = attempt.min(8);
                    let base = match cause {
                        Abort::Retry => 256u64 << shift.min(4),
                        _ => 32u64 << shift,
                    };
                    let wait = base + self.next_rand() % base;
                    self.timed(Category::Contention, |t| t.cpu.tick(wait));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Runs `f` as a closed nested transaction with partial rollback.
    ///
    /// On a conflict that involves only state read/written *inside* the
    /// nested scope, the nested transaction is rolled back to its savepoint
    /// and retried locally (up to a bounded number of times) without
    /// disturbing the parent. Conflicts touching the parent's footprint —
    /// or explicit aborts and retries — roll back the nested scope and
    /// propagate.
    ///
    /// # Errors
    ///
    /// Propagates the abort cause when the parent must handle it.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn nested<R>(&mut self, mut f: impl FnMut(&mut Self) -> TxResult<R>) -> TxResult<R> {
        assert!(self.is_active(), "nested requires an active transaction");
        self.stats.nested_begins += 1;
        let sp = self.savepoint();
        self.savepoints.push(sp);
        let mut local_attempt = 0;
        let result = loop {
            match f(self) {
                Ok(r) => break Ok(r),
                Err(cause) => {
                    self.rollback_to(sp);
                    self.stats.nested_rollbacks += 1;
                    let local = cause == Abort::Conflict
                        && local_attempt < NESTED_RETRY_LIMIT
                        && self.parent_portion_valid(sp);
                    if !local {
                        break Err(cause);
                    }
                    local_attempt += 1;
                    let wait = 32u64 << local_attempt.min(6);
                    let jitter = self.next_rand() % wait;
                    self.timed(Category::Contention, |t| t.cpu.tick(wait + jitter));
                }
            }
        };
        self.savepoints.pop();
        result
    }

    /// `orElse` composition (§2, §5): runs `f`; if it calls
    /// [`TxThread::retry_now`], rolls it back and runs `g`; if both retry,
    /// propagates `Retry` so the enclosing atomic waits.
    ///
    /// # Errors
    ///
    /// Propagates aborts from whichever alternative ran.
    pub fn or_else<R>(
        &mut self,
        f: impl FnMut(&mut Self) -> TxResult<R>,
        g: impl FnMut(&mut Self) -> TxResult<R>,
    ) -> TxResult<R> {
        match self.nested(f) {
            Err(Abort::Retry) => self.nested(g),
            other => other,
        }
    }

    /// The `retry` primitive: aborts and blocks until (a change suggests)
    /// the transaction might take a different path. Use as
    /// `return tx.retry_now();`.
    ///
    /// # Errors
    ///
    /// Always returns `Err(Abort::Retry)`.
    pub fn retry_now<R>(&mut self) -> TxResult<R> {
        Err(Abort::Retry)
    }

    /// User-initiated abort. Use as `return tx.abort_now();` inside
    /// [`TxThread::try_atomic`].
    ///
    /// # Errors
    ///
    /// Always returns `Err(Abort::Explicit)`.
    pub fn abort_now<R>(&mut self) -> TxResult<R> {
        Err(Abort::Explicit)
    }
}

/// Payload for aborts escalated out of an inner flat `atomic`.
struct EscalatedAbort(Abort);

/// Runs `f`, converting an [`EscalatedAbort`] panic back into its cause.
fn catch_escalation<R>(f: impl FnOnce() -> TxResult<R>) -> Result<TxResult<R>, Abort> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    match result {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<EscalatedAbort>() {
            Ok(esc) => Err(esc.0),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Granularity, StmConfig};
    use crate::runtime::StmRuntime;
    use hastm_sim::{Machine, MachineConfig};

    fn setup(config: StmConfig) -> (Machine, StmRuntime) {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        (m, rt)
    }

    #[test]
    fn atomic_commits_and_returns() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| {
                tx.write_word(o, 0, 5)?;
                tx.read_word(o, 0)
            })
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn try_atomic_explicit_abort_rolls_back() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| tx.write_word(o, 0, 1));
            let r: Result<(), Abort> = tx.try_atomic(|tx| {
                tx.write_word(o, 0, 99)?;
                tx.abort_now()
            });
            assert_eq!(r, Err(Abort::Explicit));
            let v = tx.atomic(|tx| tx.read_word(o, 0));
            assert_eq!(v, 1, "explicit abort rolled back the write");
            assert_eq!(tx.stats().aborts_explicit, 1);
        });
    }

    #[test]
    #[should_panic(expected = "use try_atomic")]
    fn atomic_panics_on_explicit_abort() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.atomic(|tx| tx.abort_now::<()>());
        });
    }

    #[test]
    fn nested_commit_merges_into_parent() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(2);
            tx.atomic(|tx| {
                tx.write_word(o, 0, 10)?;
                tx.nested(|tx| tx.write_word(o, 1, 20))?;
                Ok(())
            });
            tx.atomic(|tx| Ok((tx.read_word(o, 0)?, tx.read_word(o, 1)?)))
        });
        assert_eq!(v, (10, 20));
    }

    #[test]
    fn nested_explicit_abort_partially_rolls_back() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(2);
            tx.atomic(|tx| {
                tx.write_word(o, 0, 10)?;
                let inner: TxResult<()> = tx.nested(|tx| {
                    tx.write_word(o, 1, 99)?;
                    Err(Abort::Explicit)
                });
                assert_eq!(inner, Err(Abort::Explicit));
                // Parent continues: its own write survives, nested one is
                // rolled back.
                Ok(())
            });
            tx.atomic(|tx| Ok((tx.read_word(o, 0)?, tx.read_word(o, 1)?)))
        });
        assert_eq!(v, (10, 0), "nested write undone, parent write kept");
    }

    #[test]
    fn nested_atomic_composes() {
        // An `atomic` inside an `atomic` is a nested transaction.
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| {
                tx.write_word(o, 0, 1)?;
                let inner = tx.atomic(|tx| tx.read_word(o, 0));
                tx.write_word(o, 0, inner + 1)?;
                tx.read_word(o, 0)
            })
        });
        assert_eq!(v, 2);
        // Nested bookkeeping visible.
    }

    #[test]
    fn or_else_takes_second_branch_on_retry() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| {
                tx.or_else(
                    |tx| {
                        let v = tx.read_word(o, 0)?;
                        if v == 0 {
                            tx.retry_now()
                        } else {
                            Ok(v)
                        }
                    },
                    |tx| {
                        tx.write_word(o, 0, 7)?;
                        Ok(100)
                    },
                )
            })
        });
        assert_eq!(v, 100, "first branch retried; second ran");
    }

    #[test]
    fn retry_blocks_until_condition_changes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Producer/consumer across two cores: the consumer `retry`s until
        // the producer publishes a value. (The object is allocated in a
        // setup run; host-side blocking inside workers would stall the
        // logical-clock gate.)
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let rt = StmRuntime::new(&mut m, StmConfig::stm(Granularity::CacheLine));
        let (o, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.alloc_obj(1)
        });
        let got = AtomicU64::new(0);
        let got_ref = &got;
        let rt_ref = &rt;
        m.run(vec![
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                // Let the consumer start retrying first.
                tx.cpu().tick(20_000);
                tx.atomic(|tx| tx.write_word(o, 0, 42));
            }),
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                let v = tx.atomic(|tx| {
                    let v = tx.read_word(o, 0)?;
                    if v == 0 {
                        tx.retry_now()
                    } else {
                        Ok(v)
                    }
                });
                got_ref.store(v, Ordering::Relaxed);
            }),
        ]);
        assert_eq!(got.load(Ordering::Relaxed), 42);
    }
}
