//! Per-thread transaction statistics and the execution-time breakdown used
//! by Figures 12 and 17.

use crate::config::Abort;

/// Category of transactional work, for time attribution (Figure 12).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Category {
    /// Thread-local-state access at barrier entry (`gettxndesc`).
    TlsAccess,
    /// Read barriers.
    ReadBarrier,
    /// Write barriers (including undo logging).
    WriteBarrier,
    /// Read-set validation (periodic and commit-time).
    Validate,
    /// Commit processing (write-set release).
    Commit,
    /// Contention handling (waiting on owned records).
    Contention,
    /// Application work inside the transaction.
    App,
}

/// Cycle totals per [`Category`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// `gettxndesc` / TLS cycles.
    pub tls: u64,
    /// Read-barrier cycles.
    pub read_barrier: u64,
    /// Write-barrier cycles.
    pub write_barrier: u64,
    /// Validation cycles.
    pub validate: u64,
    /// Commit cycles.
    pub commit: u64,
    /// Contention-management cycles.
    pub contention: u64,
    /// Everything else (application work, begin/abort bookkeeping).
    pub app: u64,
}

impl TimeBreakdown {
    /// Adds `cycles` to `cat`.
    pub fn add(&mut self, cat: Category, cycles: u64) {
        match cat {
            Category::TlsAccess => self.tls += cycles,
            Category::ReadBarrier => self.read_barrier += cycles,
            Category::WriteBarrier => self.write_barrier += cycles,
            Category::Validate => self.validate += cycles,
            Category::Commit => self.commit += cycles,
            Category::Contention => self.contention += cycles,
            Category::App => self.app += cycles,
        }
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.tls
            + self.read_barrier
            + self.write_barrier
            + self.validate
            + self.commit
            + self.contention
            + self.app
    }

    /// STM overhead cycles: everything except application work.
    pub fn overhead(&self) -> u64 {
        self.total() - self.app
    }
}

/// Counters kept by each transactional thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Committed transactions (top-level).
    pub commits: u64,
    /// Aborts due to validation/contention conflicts.
    pub aborts_conflict: u64,
    /// Aggressive-mode aborts due to a dirty mark counter.
    pub aborts_mark_dirty: u64,
    /// User-requested retries (condition synchronization).
    pub aborts_retry: u64,
    /// User-requested aborts.
    pub aborts_explicit: u64,
    /// Nested transactions begun.
    pub nested_begins: u64,
    /// Nested transactions partially rolled back.
    pub nested_rollbacks: u64,
    /// Read barriers that took the 2-instruction mark-filtered fast path.
    pub read_fast_path: u64,
    /// Read barriers that took a slow path.
    pub read_slow_path: u64,
    /// Read barriers whose logging was elided by aggressive mode.
    pub reads_unlogged: u64,
    /// Write barriers that took the write-filter fast path (§5 extension).
    pub write_fast_path: u64,
    /// Undo-log appends elided by write filtering (§5 extension).
    pub undo_elided: u64,
    /// Validations satisfied by a zero mark counter alone.
    pub validations_skipped: u64,
    /// Validations that walked the read set.
    pub validations_full: u64,
    /// Transactions that committed in aggressive mode.
    pub aggressive_commits: u64,
    /// Transactions that committed in cautious mode.
    pub cautious_commits: u64,
    /// Times a barrier found the record owned by another transaction.
    pub contention_encounters: u64,
    /// Commits the serializability oracle checked (linearization evidence;
    /// zero unless [`crate::StmConfig::oracle`] is on).
    pub oracle_commits_checked: u64,
    /// Reads the oracle cross-checked against the pre-transaction image.
    pub oracle_reads_checked: u64,
    /// Unserializable reads the oracle found (only nonzero in
    /// [`crate::OracleMode::Record`]; `Panic` mode dies on the first).
    pub oracle_violations: u64,
    /// Execution-time breakdown.
    pub breakdown: TimeBreakdown,
}

impl TxnStats {
    /// Total aborts of any cause.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_mark_dirty + self.aborts_retry + self.aborts_explicit
    }

    /// Records an abort of the given cause.
    pub fn record_abort(&mut self, cause: Abort) {
        match cause {
            Abort::Conflict => self.aborts_conflict += 1,
            Abort::MarkCounterDirty => self.aborts_mark_dirty += 1,
            Abort::Retry => self.aborts_retry += 1,
            Abort::Explicit => self.aborts_explicit += 1,
        }
    }

    /// Merges another thread's stats into this one (for aggregation across
    /// cores).
    pub fn merge(&mut self, other: &TxnStats) {
        self.commits += other.commits;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_mark_dirty += other.aborts_mark_dirty;
        self.aborts_retry += other.aborts_retry;
        self.aborts_explicit += other.aborts_explicit;
        self.nested_begins += other.nested_begins;
        self.nested_rollbacks += other.nested_rollbacks;
        self.read_fast_path += other.read_fast_path;
        self.read_slow_path += other.read_slow_path;
        self.reads_unlogged += other.reads_unlogged;
        self.write_fast_path += other.write_fast_path;
        self.undo_elided += other.undo_elided;
        self.validations_skipped += other.validations_skipped;
        self.validations_full += other.validations_full;
        self.aggressive_commits += other.aggressive_commits;
        self.cautious_commits += other.cautious_commits;
        self.contention_encounters += other.contention_encounters;
        self.oracle_commits_checked += other.oracle_commits_checked;
        self.oracle_reads_checked += other.oracle_reads_checked;
        self.oracle_violations += other.oracle_violations;
        let b = &other.breakdown;
        self.breakdown.tls += b.tls;
        self.breakdown.read_barrier += b.read_barrier;
        self.breakdown.write_barrier += b.write_barrier;
        self.breakdown.validate += b.validate;
        self.breakdown.commit += b.commit;
        self.breakdown.contention += b.contention;
        self.breakdown.app += b.app;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let mut b = TimeBreakdown::default();
        b.add(Category::ReadBarrier, 10);
        b.add(Category::App, 5);
        b.add(Category::Validate, 3);
        assert_eq!(b.total(), 18);
        assert_eq!(b.overhead(), 13);
    }

    #[test]
    fn abort_recording() {
        let mut s = TxnStats::default();
        s.record_abort(Abort::Conflict);
        s.record_abort(Abort::MarkCounterDirty);
        s.record_abort(Abort::Retry);
        assert_eq!(s.aborts(), 3);
        assert_eq!(s.aborts_mark_dirty, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TxnStats {
            commits: 2,
            ..TxnStats::default()
        };
        a.breakdown.app = 100;
        let mut b = TxnStats {
            commits: 3,
            read_fast_path: 7,
            oracle_commits_checked: 3,
            oracle_reads_checked: 11,
            oracle_violations: 1,
            ..TxnStats::default()
        };
        b.breakdown.app = 50;
        a.merge(&b);
        assert_eq!(a.commits, 5);
        assert_eq!(a.breakdown.app, 150);
        assert_eq!(a.read_fast_path, 7);
        assert_eq!(a.oracle_commits_checked, 3);
        assert_eq!(a.oracle_reads_checked, 11);
        assert_eq!(a.oracle_violations, 1);
    }
}
