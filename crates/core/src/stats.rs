//! Per-thread transaction statistics, the execution-time breakdown used
//! by Figures 12 and 17, and the unified counters registry
//! ([`MetricsSnapshot`]) that flattens STM + simulator statistics into one
//! machine-readable dump.

use crate::config::Abort;
use hastm_sim::{RunReport, TxnPhase};

/// Category of transactional work, for time attribution (Figure 12).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Category {
    /// Thread-local-state access at barrier entry (`gettxndesc`).
    TlsAccess,
    /// Read barriers.
    ReadBarrier,
    /// Write barriers (including undo logging).
    WriteBarrier,
    /// Read-set validation (periodic and commit-time).
    Validate,
    /// Commit processing (write-set release).
    Commit,
    /// Contention handling (waiting on owned records).
    Contention,
    /// Application work inside the transaction.
    App,
}

impl Category {
    /// The simulator-side trace phase this category maps onto (the trace
    /// layer cannot depend on this crate, so the mapping lives here).
    pub fn phase(self) -> TxnPhase {
        match self {
            Category::TlsAccess => TxnPhase::Tls,
            Category::ReadBarrier => TxnPhase::ReadBarrier,
            Category::WriteBarrier => TxnPhase::WriteBarrier,
            Category::Validate => TxnPhase::Validate,
            Category::Commit => TxnPhase::Commit,
            Category::Contention => TxnPhase::Contention,
            Category::App => TxnPhase::App,
        }
    }
}

/// Cycle totals per [`Category`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// `gettxndesc` / TLS cycles.
    pub tls: u64,
    /// Read-barrier cycles.
    pub read_barrier: u64,
    /// Write-barrier cycles.
    pub write_barrier: u64,
    /// Validation cycles.
    pub validate: u64,
    /// Commit cycles.
    pub commit: u64,
    /// Contention-management cycles.
    pub contention: u64,
    /// Everything else (application work, begin/abort bookkeeping).
    pub app: u64,
}

impl TimeBreakdown {
    /// Adds `cycles` to `cat`.
    pub fn add(&mut self, cat: Category, cycles: u64) {
        match cat {
            Category::TlsAccess => self.tls += cycles,
            Category::ReadBarrier => self.read_barrier += cycles,
            Category::WriteBarrier => self.write_barrier += cycles,
            Category::Validate => self.validate += cycles,
            Category::Commit => self.commit += cycles,
            Category::Contention => self.contention += cycles,
            Category::App => self.app += cycles,
        }
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.tls
            + self.read_barrier
            + self.write_barrier
            + self.validate
            + self.commit
            + self.contention
            + self.app
    }

    /// STM overhead cycles: everything except application work.
    pub fn overhead(&self) -> u64 {
        self.total() - self.app
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.tls += other.tls;
        self.read_barrier += other.read_barrier;
        self.write_barrier += other.write_barrier;
        self.validate += other.validate;
        self.commit += other.commit;
        self.contention += other.contention;
        self.app += other.app;
    }
}

/// Counters kept by each transactional thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Committed transactions (top-level).
    pub commits: u64,
    /// Aborts due to validation/contention conflicts.
    pub aborts_conflict: u64,
    /// Aggressive-mode aborts due to a dirty mark counter.
    pub aborts_mark_dirty: u64,
    /// User-requested retries (condition synchronization).
    pub aborts_retry: u64,
    /// User-requested aborts.
    pub aborts_explicit: u64,
    /// Nested transactions begun.
    pub nested_begins: u64,
    /// Nested transactions partially rolled back.
    pub nested_rollbacks: u64,
    /// Read barriers that took the 2-instruction mark-filtered fast path.
    pub read_fast_path: u64,
    /// Read barriers that took a slow path.
    pub read_slow_path: u64,
    /// Read barriers whose logging was elided by aggressive mode.
    pub reads_unlogged: u64,
    /// Write barriers that took the write-filter fast path (§5 extension).
    pub write_fast_path: u64,
    /// Undo-log appends elided by write filtering (§5 extension).
    pub undo_elided: u64,
    /// Validations satisfied by a zero mark counter alone.
    pub validations_skipped: u64,
    /// Validations that walked the read set.
    pub validations_full: u64,
    /// Transactions that committed in aggressive mode.
    pub aggressive_commits: u64,
    /// Transactions that committed in cautious mode.
    pub cautious_commits: u64,
    /// Times a barrier found the record owned by another transaction.
    pub contention_encounters: u64,
    /// Commits the serializability oracle checked (linearization evidence;
    /// zero unless [`crate::StmConfig::oracle`] is on).
    pub oracle_commits_checked: u64,
    /// Reads the oracle cross-checked against the pre-transaction image.
    pub oracle_reads_checked: u64,
    /// Unserializable reads the oracle found (only nonzero in
    /// [`crate::OracleMode::Record`]; `Panic` mode dies on the first).
    pub oracle_violations: u64,
    /// Snapshot read-only transactions committed
    /// ([`crate::Versioning::Multi`] only; a subset of `commits`).
    pub ro_commits: u64,
    /// Snapshot read-only transactions aborted. Only user-initiated
    /// retries/aborts can land here — the snapshot path cannot
    /// conflict-abort, which the test battery asserts as "zero RO aborts".
    pub ro_aborts: u64,
    /// Reads served by the snapshot path (version ring or ring-miss
    /// memory image).
    pub snapshot_reads: u64,
    /// Versions this thread's commits published into the version rings.
    pub versions_published: u64,
    /// Attempts begun in each global phase (indexed by
    /// [`crate::Phase::idx`]; all-zero unless the policy is
    /// [`crate::ModePolicy::Phased`]).
    pub phase_begins: [u64; 4],
    /// Commits landed in each global phase.
    pub phase_commits: [u64; 4],
    /// Conflict-classified aborts per phase.
    pub phase_aborts_conflict: [u64; 4],
    /// Capacity-classified aborts per phase.
    pub phase_aborts_capacity: [u64; 4],
    /// Cycles spent executing attempts in each phase (time-in-phase, the
    /// HyTM cost-model numerator).
    pub phase_cycles: [u64; 4],
    /// Non-application (barrier/validate/commit/contention) cycles of
    /// those attempts — the per-phase fast-path penalty.
    pub phase_overhead_cycles: [u64; 4],
    /// Phase transitions this thread published.
    pub phase_transitions: u64,
    /// Transactions committed on the irrevocable serial path (a subset of
    /// `commits`).
    pub serial_commits: u64,
    /// Execution-time breakdown.
    pub breakdown: TimeBreakdown,
}

impl TxnStats {
    /// Total aborts of any cause.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_mark_dirty + self.aborts_retry + self.aborts_explicit
    }

    /// Records an abort of the given cause.
    pub fn record_abort(&mut self, cause: Abort) {
        match cause {
            Abort::Conflict => self.aborts_conflict += 1,
            Abort::MarkCounterDirty => self.aborts_mark_dirty += 1,
            Abort::Retry => self.aborts_retry += 1,
            Abort::Explicit => self.aborts_explicit += 1,
        }
    }

    /// Merges another thread's stats into this one (for aggregation across
    /// cores).
    pub fn merge(&mut self, other: &TxnStats) {
        self.commits += other.commits;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_mark_dirty += other.aborts_mark_dirty;
        self.aborts_retry += other.aborts_retry;
        self.aborts_explicit += other.aborts_explicit;
        self.nested_begins += other.nested_begins;
        self.nested_rollbacks += other.nested_rollbacks;
        self.read_fast_path += other.read_fast_path;
        self.read_slow_path += other.read_slow_path;
        self.reads_unlogged += other.reads_unlogged;
        self.write_fast_path += other.write_fast_path;
        self.undo_elided += other.undo_elided;
        self.validations_skipped += other.validations_skipped;
        self.validations_full += other.validations_full;
        self.aggressive_commits += other.aggressive_commits;
        self.cautious_commits += other.cautious_commits;
        self.contention_encounters += other.contention_encounters;
        self.oracle_commits_checked += other.oracle_commits_checked;
        self.oracle_reads_checked += other.oracle_reads_checked;
        self.oracle_violations += other.oracle_violations;
        self.ro_commits += other.ro_commits;
        self.ro_aborts += other.ro_aborts;
        self.snapshot_reads += other.snapshot_reads;
        self.versions_published += other.versions_published;
        for p in 0..4 {
            self.phase_begins[p] += other.phase_begins[p];
            self.phase_commits[p] += other.phase_commits[p];
            self.phase_aborts_conflict[p] += other.phase_aborts_conflict[p];
            self.phase_aborts_capacity[p] += other.phase_aborts_capacity[p];
            self.phase_cycles[p] += other.phase_cycles[p];
            self.phase_overhead_cycles[p] += other.phase_overhead_cycles[p];
        }
        self.phase_transitions += other.phase_transitions;
        self.serial_commits += other.serial_commits;
        self.breakdown.merge(&other.breakdown);
    }
}

/// Per-transaction latency samples and their serving-style summary
/// statistics (p50/p99, mean, max) — the unit is whatever clock the
/// executor's [`crate::TmExec::clock`] exposes: simulated cycles on the
/// simulator backends, host nanoseconds on the native TL2 backend.
///
/// Samples are kept exact (the OLTP mill records at most a few thousand
/// transactions per thread), so quantiles are true order statistics
/// rather than histogram-bucket approximations, and two backends that
/// observe the same latencies report bit-identical quantiles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    /// Records one transaction's latency.
    pub fn record(&mut self, latency: u64) {
        self.samples.push(latency);
    }

    /// Merges another thread's samples in.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// The nearest-rank `q`-quantile (`q` in `(0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Integer mean; 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        (sum / self.samples.len() as u128) as u64
    }
}

/// A flat, ordered registry of every counter the stack keeps — the STM's
/// [`TxnStats`] (including the time breakdown) and the simulator's
/// [`RunReport`] (per-core counters summed, machine-wide counters, and the
/// makespan) — under stable dotted names, with a machine-readable JSON
/// dump. This is the single place harnesses should read counters from
/// instead of spelunking both stats structs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    /// Collects a snapshot from an aggregated [`TxnStats`] and the run's
    /// [`RunReport`].
    pub fn collect(txn: &TxnStats, report: &RunReport) -> Self {
        let b = &txn.breakdown;
        let mut entries: Vec<(&'static str, u64)> = vec![
            ("txn.commits", txn.commits),
            ("txn.aborts", txn.aborts()),
            ("txn.aborts.conflict", txn.aborts_conflict),
            ("txn.aborts.mark_dirty", txn.aborts_mark_dirty),
            ("txn.aborts.retry", txn.aborts_retry),
            ("txn.aborts.explicit", txn.aborts_explicit),
            ("txn.nested.begins", txn.nested_begins),
            ("txn.nested.rollbacks", txn.nested_rollbacks),
            ("txn.read.fast_path", txn.read_fast_path),
            ("txn.read.slow_path", txn.read_slow_path),
            ("txn.read.unlogged", txn.reads_unlogged),
            ("txn.write.fast_path", txn.write_fast_path),
            ("txn.write.undo_elided", txn.undo_elided),
            ("txn.validate.skipped", txn.validations_skipped),
            ("txn.validate.full", txn.validations_full),
            ("txn.commit.aggressive", txn.aggressive_commits),
            ("txn.commit.cautious", txn.cautious_commits),
            ("txn.contention.encounters", txn.contention_encounters),
            ("txn.oracle.commits_checked", txn.oracle_commits_checked),
            ("txn.oracle.reads_checked", txn.oracle_reads_checked),
            ("txn.oracle.violations", txn.oracle_violations),
            ("txn.ro.commits", txn.ro_commits),
            ("txn.ro.aborts", txn.ro_aborts),
            ("txn.ro.snapshot_reads", txn.snapshot_reads),
            ("txn.ro.versions_published", txn.versions_published),
            ("phase.transitions", txn.phase_transitions),
            ("phase.serial_commits", txn.serial_commits),
            ("phase.hw.begins", txn.phase_begins[0]),
            ("phase.aggr.begins", txn.phase_begins[1]),
            ("phase.caut.begins", txn.phase_begins[2]),
            ("phase.serial.begins", txn.phase_begins[3]),
            ("phase.hw.commits", txn.phase_commits[0]),
            ("phase.aggr.commits", txn.phase_commits[1]),
            ("phase.caut.commits", txn.phase_commits[2]),
            ("phase.serial.commits", txn.phase_commits[3]),
            ("phase.hw.aborts_conflict", txn.phase_aborts_conflict[0]),
            ("phase.aggr.aborts_conflict", txn.phase_aborts_conflict[1]),
            ("phase.caut.aborts_conflict", txn.phase_aborts_conflict[2]),
            ("phase.serial.aborts_conflict", txn.phase_aborts_conflict[3]),
            ("phase.hw.aborts_capacity", txn.phase_aborts_capacity[0]),
            ("phase.aggr.aborts_capacity", txn.phase_aborts_capacity[1]),
            ("phase.caut.aborts_capacity", txn.phase_aborts_capacity[2]),
            ("phase.serial.aborts_capacity", txn.phase_aborts_capacity[3]),
            ("phase.hw.cycles", txn.phase_cycles[0]),
            ("phase.aggr.cycles", txn.phase_cycles[1]),
            ("phase.caut.cycles", txn.phase_cycles[2]),
            ("phase.serial.cycles", txn.phase_cycles[3]),
            ("phase.hw.overhead_cycles", txn.phase_overhead_cycles[0]),
            ("phase.aggr.overhead_cycles", txn.phase_overhead_cycles[1]),
            ("phase.caut.overhead_cycles", txn.phase_overhead_cycles[2]),
            ("phase.serial.overhead_cycles", txn.phase_overhead_cycles[3]),
            ("breakdown.tls", b.tls),
            ("breakdown.read_barrier", b.read_barrier),
            ("breakdown.write_barrier", b.write_barrier),
            ("breakdown.validate", b.validate),
            ("breakdown.commit", b.commit),
            ("breakdown.contention", b.contention),
            ("breakdown.app", b.app),
            ("breakdown.total", b.total()),
            ("breakdown.overhead", b.overhead()),
        ];
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut l1_hits = 0u64;
        let mut l1_misses = 0u64;
        let mut l2_hits = 0u64;
        let mut mem_accesses = 0u64;
        let mut marked_lines_lost = 0u64;
        let mut marked_lost_capacity = 0u64;
        let mut marked_lost_conflict = 0u64;
        let mut mark_sets = 0u64;
        let mut mark_tests = 0u64;
        let mut mark_test_hits = 0u64;
        let mut invalidations = 0u64;
        for c in &report.cores {
            loads += c.loads;
            stores += c.stores;
            l1_hits += c.l1_hits;
            l1_misses += c.l1_misses;
            l2_hits += c.l2_hits;
            mem_accesses += c.mem_accesses;
            marked_lines_lost += c.marked_lines_lost;
            marked_lost_capacity += c.marked_lost_capacity;
            marked_lost_conflict += c.marked_lost_conflict;
            mark_sets += c.mark_sets;
            mark_tests += c.mark_tests;
            mark_test_hits += c.mark_test_hits;
            invalidations += c.invalidations_received;
        }
        entries.extend([
            ("sim.loads", loads),
            ("sim.stores", stores),
            ("sim.l1_hits", l1_hits),
            ("sim.l1_misses", l1_misses),
            ("sim.l2_hits", l2_hits),
            ("sim.mem_accesses", mem_accesses),
            ("sim.marked_lines_lost", marked_lines_lost),
            ("sim.marked_lost_capacity", marked_lost_capacity),
            ("sim.marked_lost_conflict", marked_lost_conflict),
            ("sim.mark_sets", mark_sets),
            ("sim.mark_tests", mark_tests),
            ("sim.mark_test_hits", mark_test_hits),
            ("sim.invalidations_received", invalidations),
            ("sim.l2_evictions", report.machine.l2_evictions),
            ("sim.back_invalidations", report.machine.back_invalidations),
            ("sim.makespan", report.makespan()),
            ("sim.cores", report.cores.len() as u64),
        ]);
        MetricsSnapshot { entries }
    }

    /// Appends serving-style latency counters from `latency` (the OLTP
    /// mill's per-transaction samples) under fixed `latency.*` names, so a
    /// snapshot from an open-loop run carries its p50/p99 alongside the
    /// commit/abort/breakdown registry.
    pub fn push_latency(&mut self, latency: &LatencyStats) {
        self.entries.extend([
            ("latency.count", latency.count()),
            ("latency.p50", latency.quantile(0.50)),
            ("latency.p90", latency.quantile(0.90)),
            ("latency.p99", latency.quantile(0.99)),
            ("latency.max", latency.max()),
            ("latency.mean", latency.mean()),
        ]);
    }

    /// The counters, in stable registration order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// Looks up a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the registry as a flat JSON object, one counter per line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 * self.entries.len() + 4);
        out.push_str("{\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{name}\": {value}"));
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_are_nearest_rank() {
        let mut lat = LatencyStats::default();
        for v in [50, 10, 40, 30, 20] {
            lat.record(v);
        }
        assert_eq!(lat.count(), 5);
        assert_eq!(lat.quantile(0.50), 30);
        assert_eq!(lat.quantile(0.99), 50);
        assert_eq!(lat.quantile(1.0), 50);
        assert_eq!(lat.max(), 50);
        assert_eq!(lat.mean(), 30);

        let mut other = LatencyStats::default();
        other.record(60);
        lat.merge(&other);
        assert_eq!(lat.count(), 6);
        assert_eq!(lat.max(), 60);

        let empty = LatencyStats::default();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0);
    }

    #[test]
    fn snapshot_carries_latency_entries() {
        let mut lat = LatencyStats::default();
        lat.record(7);
        lat.record(9);
        let mut snap = MetricsSnapshot::default();
        snap.push_latency(&lat);
        assert_eq!(snap.get("latency.count"), Some(2));
        assert_eq!(snap.get("latency.p50"), Some(7));
        assert_eq!(snap.get("latency.p99"), Some(9));
        assert_eq!(snap.get("latency.mean"), Some(8));
    }

    #[test]
    fn breakdown_totals() {
        let mut b = TimeBreakdown::default();
        b.add(Category::ReadBarrier, 10);
        b.add(Category::App, 5);
        b.add(Category::Validate, 3);
        assert_eq!(b.total(), 18);
        assert_eq!(b.overhead(), 13);
    }

    #[test]
    fn abort_recording() {
        let mut s = TxnStats::default();
        s.record_abort(Abort::Conflict);
        s.record_abort(Abort::MarkCounterDirty);
        s.record_abort(Abort::Retry);
        assert_eq!(s.aborts(), 3);
        assert_eq!(s.aborts_mark_dirty, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TxnStats {
            commits: 2,
            ..TxnStats::default()
        };
        a.breakdown.app = 100;
        let mut b = TxnStats {
            commits: 3,
            read_fast_path: 7,
            oracle_commits_checked: 3,
            oracle_reads_checked: 11,
            oracle_violations: 1,
            ..TxnStats::default()
        };
        b.breakdown.app = 50;
        a.merge(&b);
        assert_eq!(a.commits, 5);
        assert_eq!(a.breakdown.app, 150);
        assert_eq!(a.read_fast_path, 7);
        assert_eq!(a.oracle_commits_checked, 3);
        assert_eq!(a.oracle_reads_checked, 11);
        assert_eq!(a.oracle_violations, 1);
    }
}
