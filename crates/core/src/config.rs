//! STM/HASTM configuration and abort causes.

use crate::oracle::OracleMode;

/// Conflict-detection granularity (§4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Managed-environment style: every object carries a transaction record
    /// in its header word; conflicts are detected per object.
    Object,
    /// Unmanaged style: data addresses hash into a global record table;
    /// conflicts are detected per cache line.
    #[default]
    CacheLine,
}

/// Which read/write barrier family a thread runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// The base software-only barriers of §4 (Figures 3–4).
    #[default]
    Stm,
    /// The hardware-accelerated barriers of §5–6 (Figures 5, 7, 8, 9).
    Hastm,
}

/// Transaction execution mode under HASTM (§6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// §5: barriers are filtered by mark bits, reads are still logged, and
    /// validation falls back to software when the mark counter is dirty.
    #[default]
    Cautious,
    /// §6: reads are additionally *not* logged; the transaction can only
    /// commit if the mark counter stayed zero, otherwise it aborts and
    /// re-executes cautiously.
    Aggressive,
}

/// Policy deciding the mode of each transaction attempt (§6, §7.4).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum ModePolicy {
    /// Never use aggressive mode (the paper's "Cautious"/"HASTM-Cautious").
    AlwaysCautious,
    /// Single-threaded policy: "always changes to aggressive mode after a
    /// transaction commits". Re-executions after an abort run cautiously.
    SingleThreadAggressive,
    /// Multi-threaded policy: go aggressive only while the running ratio of
    /// transactions that observed a dirty mark counter stays below the low
    /// watermark. This is what makes HASTM "start off in cautious mode and
    /// remain in cautious mode till the number of evictions/invalidations is
    /// below a threshold" (§7.4).
    AbortRatioWatermark {
        /// Go aggressive while the exponentially weighted dirty/abort ratio
        /// is below this value.
        watermark: f64,
    },
    /// The naïve strawman of Figures 21–22 (an HTM-with-software-fallback
    /// analogue): always try aggressive first, re-execute cautiously after
    /// an abort.
    NaiveAggressive,
    /// PhTM-style *global* phase machine: all threads of a runtime share a
    /// CAS-published phase indicator (`Hw → Aggressive → Cautious →
    /// Serial`, with recovery transitions back up) driven by
    /// capacity-abort persistence and hysteresis. The `Serial` phase runs
    /// transactions irrevocably under a global token — no validation, no
    /// aborts. See [`crate::phase`].
    Phased(crate::phase::PhasedParams),
}

impl Default for ModePolicy {
    fn default() -> Self {
        ModePolicy::AbortRatioWatermark { watermark: 0.1 }
    }
}

impl ModePolicy {
    /// The phased policy with default tuning.
    pub fn phased() -> Self {
        ModePolicy::Phased(crate::phase::PhasedParams::default())
    }
}

/// How many committed versions each record retains.
///
/// [`Versioning::Single`] is the paper's system: one committed value per
/// word, read-only transactions validate like everyone else.
/// [`Versioning::Multi`] keeps a `k`-deep ring of committed
/// `(stamp, value)` pairs so transactions opened with
/// [`TxnKind::ReadOnly`] read a consistent snapshot (newest version with
/// stamp ≤ their start stamp) and commit without validation — they can
/// never abort.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Versioning {
    /// Single committed version per record (the measured configuration).
    Single,
    /// `k`-deep version ring; enables the snapshot-read path.
    Multi {
        /// Ring depth (clamped to ≥ 1). Depth 1 still snapshots: readers
        /// see the newest committed value at their start stamp.
        k: usize,
    },
}

impl Default for Versioning {
    fn default() -> Self {
        Versioning::Single
    }
}

impl Versioning {
    /// Ring depth under [`Versioning::Multi`] (min 1), else 0.
    pub fn depth(self) -> usize {
        match self {
            Versioning::Single => 0,
            Versioning::Multi { k } => k.max(1),
        }
    }

    /// Whether the snapshot-read machinery is active.
    pub fn is_multi(self) -> bool {
        matches!(self, Versioning::Multi { .. })
    }
}

/// Whether a transaction declares itself read-only at begin.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum TxnKind {
    /// Ordinary read-write transaction: full barriers, validation, 2PL.
    #[default]
    ReadWrite,
    /// Declared read-only: under [`Versioning::Multi`] it reads the
    /// snapshot at its start stamp and commits without validation;
    /// under [`Versioning::Single`] it behaves like a read-write
    /// transaction that happens not to write.
    ReadOnly,
}

/// What a barrier does when it finds a record owned by another transaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ContentionPolicy {
    /// Abort immediately and let the re-execution loop back off.
    Suicide,
    /// Spin-wait (bounded, with exponential backoff) for the owner to
    /// release the record; abort if it does not.
    Backoff {
        /// Maximum number of re-probes before giving up and aborting.
        max_probes: u32,
    },
}

impl Default for ContentionPolicy {
    fn default() -> Self {
        ContentionPolicy::Backoff { max_probes: 16 }
    }
}

/// Per-runtime STM configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct StmConfig {
    /// Conflict-detection granularity.
    pub granularity: Granularity,
    /// Barrier family.
    pub barrier: BarrierKind,
    /// Mode policy (only meaningful with [`BarrierKind::Hastm`]).
    pub mode_policy: ModePolicy,
    /// Contention-management policy.
    pub contention: ContentionPolicy,
    /// Validate the read set after this many read barriers (bounds the work
    /// a doomed "zombie" transaction can perform).
    pub validation_period: u32,
    /// Clear mark bits at transaction end, disabling the inter-atomic-block
    /// reuse optimization of Figure 10. The paper's measurements keep this
    /// `true` ("we cleared the mark bits at the end of every transaction
    /// thus eliminating inter-atomic optimizations ... the measurements
    /// represent HASTM performance conservatively").
    pub clear_marks_between_txns: bool,
    /// Ablation (Figure 17, "HASTM-NoReuse"): disable the mark-bit *filter*
    /// fast path while keeping read-log elimination and mark-counter
    /// validation.
    pub no_reuse: bool,
    /// §5 extension: "an implementation could also filter STM write barrier
    /// and undo logging operations using additional mark bits." Uses the
    /// hardware's second mark filter to skip record re-acquisition on
    /// repeat writes and to elide duplicate undo entries within a nesting
    /// scope. Off by default (the paper's measured configuration).
    pub filter_writes: bool,
    /// Capacity, in entries, of each simulated log region before the
    /// overflow slow path allocates another chunk.
    pub log_capacity: u32,
    /// Serializability-oracle mode ([`crate::Oracle`]): commit-time
    /// cross-checking of every transactional read against the
    /// pre-transaction memory image. Off by default (verification aid, not
    /// part of the measured system).
    pub oracle: OracleMode,
    /// Version retention: [`Versioning::Single`] (paper) or a k-deep
    /// multi-version ring enabling abort-free snapshot reads for
    /// [`TxnKind::ReadOnly`] transactions.
    pub versioning: Versioning,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            granularity: Granularity::CacheLine,
            barrier: BarrierKind::Stm,
            mode_policy: ModePolicy::default(),
            contention: ContentionPolicy::default(),
            validation_period: 16,
            clear_marks_between_txns: true,
            no_reuse: false,
            filter_writes: false,
            log_capacity: 4096,
            oracle: OracleMode::default(),
            versioning: Versioning::default(),
        }
    }
}

impl StmConfig {
    /// Base STM configuration (software-only barriers).
    pub fn stm(granularity: Granularity) -> Self {
        StmConfig {
            granularity,
            barrier: BarrierKind::Stm,
            ..StmConfig::default()
        }
    }

    /// Full HASTM with the given mode policy.
    pub fn hastm(granularity: Granularity, mode_policy: ModePolicy) -> Self {
        StmConfig {
            granularity,
            barrier: BarrierKind::Hastm,
            mode_policy,
            ..StmConfig::default()
        }
    }

    /// HASTM pinned to cautious mode (Figure 15/17 "Cautious").
    pub fn hastm_cautious(granularity: Granularity) -> Self {
        Self::hastm(granularity, ModePolicy::AlwaysCautious)
    }

    /// The same configuration with the serializability oracle in `mode`.
    #[must_use]
    pub fn with_oracle(mut self, mode: OracleMode) -> Self {
        self.oracle = mode;
        self
    }

    /// The same configuration with the given versioning scheme.
    #[must_use]
    pub fn with_versioning(mut self, versioning: Versioning) -> Self {
        self.versioning = versioning;
        self
    }
}

/// Why a transaction (or one attempt of it) stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Abort {
    /// Read-set validation found a changed version, or contention
    /// management gave up on an owned record.
    Conflict,
    /// Aggressive mode observed a nonzero mark counter: either a true
    /// conflict or a spurious marked-line loss — indistinguishable without a
    /// read log, so the transaction re-executes cautiously (§6).
    MarkCounterDirty,
    /// The user requested `retry` (condition synchronization, §5).
    Retry,
    /// The user explicitly aborted the transaction.
    Explicit,
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::Conflict => write!(f, "data conflict"),
            Abort::MarkCounterDirty => write!(f, "mark counter dirty in aggressive mode"),
            Abort::Retry => write!(f, "user retry"),
            Abort::Explicit => write!(f, "user abort"),
        }
    }
}

impl std::error::Error for Abort {}

/// Result of a transactional operation.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = StmConfig::default();
        assert_eq!(c.granularity, Granularity::CacheLine);
        assert!(c.clear_marks_between_txns);
        assert!(!c.no_reuse);
        assert_eq!(c.oracle, OracleMode::Off, "oracle off in measured config");
    }

    #[test]
    fn with_oracle_only_changes_oracle() {
        let c = StmConfig::hastm_cautious(Granularity::Object).with_oracle(OracleMode::Panic);
        assert_eq!(c.oracle, OracleMode::Panic);
        assert_eq!(
            StmConfig {
                oracle: OracleMode::Off,
                ..c
            },
            StmConfig::hastm_cautious(Granularity::Object)
        );
    }

    #[test]
    fn constructors() {
        let s = StmConfig::stm(Granularity::Object);
        assert_eq!(s.barrier, BarrierKind::Stm);
        let h = StmConfig::hastm_cautious(Granularity::CacheLine);
        assert_eq!(h.barrier, BarrierKind::Hastm);
        assert_eq!(h.mode_policy, ModePolicy::AlwaysCautious);
    }

    #[test]
    fn versioning_defaults_and_depth() {
        assert_eq!(StmConfig::default().versioning, Versioning::Single);
        assert_eq!(Versioning::Single.depth(), 0);
        assert_eq!(Versioning::Multi { k: 0 }.depth(), 1, "depth clamps to 1");
        assert_eq!(Versioning::Multi { k: 3 }.depth(), 3);
        assert!(Versioning::Multi { k: 3 }.is_multi());
        let c = StmConfig::stm(Granularity::Object).with_versioning(Versioning::Multi { k: 2 });
        assert_eq!(c.versioning, Versioning::Multi { k: 2 });
    }

    #[test]
    fn abort_displays() {
        assert_eq!(Abort::Conflict.to_string(), "data conflict");
        assert!(Abort::MarkCounterDirty.to_string().contains("mark counter"));
    }
}
