//! # hastm — Hardware-Accelerated Software Transactional Memory
//!
//! A full reproduction of the TM system from *"Architectural Support for
//! Software Transactional Memory"* (Saha, Adl-Tabatabai, Jacobson — MICRO
//! 2006), built on the mark-bit ISA extension simulated by [`hastm_sim`].
//!
//! The crate implements:
//!
//! * the **base STM** of §4 (McRT-style): eager version management
//!   (in-place updates + undo log), strict two-phase locking for writes,
//!   optimistic versioned reads, periodic and commit-time validation, and
//!   both object- and cache-line-granularity conflict detection;
//! * **HASTM** (§5): mark-bit-filtered read barriers that collapse from 12
//!   (or 16) instructions to 2, and mark-counter-based validation that
//!   skips the read-set walk entirely when no marked line was lost;
//! * **aggressive mode** (§6): read-set logging elided wholesale, with
//!   abort-and-re-execute-cautiously on a dirty mark counter, governed by a
//!   mode controller (always-cautious / single-thread / abort-ratio
//!   watermark / naïve-always-aggressive);
//! * the **language-integration surface** of §2: closed nested transactions
//!   with partial rollback, `retry`/`orElse` condition synchronization,
//!   user aborts, contention-management policies with diagnostics, and GC
//!   suspension with log inspection and object relocation that does *not*
//!   abort the suspended transaction.
//!
//! ## Quick start
//!
//! ```
//! use hastm::{Granularity, ModePolicy, StmConfig, StmRuntime, TxThread};
//! use hastm_sim::{Machine, MachineConfig};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let config = StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive);
//! let runtime = StmRuntime::new(&mut machine, config);
//!
//! let (value, _report) = machine.run_one(|cpu| {
//!     let mut tx = TxThread::new(&runtime, cpu);
//!     let account = tx.alloc_obj(1);
//!     tx.atomic(|tx| tx.write_word(account, 0, 100));
//!     tx.atomic(|tx| {
//!         let v = tx.read_word(account, 0)?;
//!         tx.write_word(account, 0, v + 1)?;
//!         tx.read_word(account, 0)
//!     })
//! });
//! assert_eq!(value, 101);
//! ```

pub mod api;
pub mod barrier;
pub mod config;
pub mod context;
pub mod gc;
pub mod log;
pub mod mode;
pub mod mvcc;
pub mod phase;
pub mod oracle;
pub mod record;
pub mod runtime;
pub mod stats;
pub mod txn;

pub use config::{
    Abort, BarrierKind, ContentionPolicy, Granularity, Mode, ModePolicy, StmConfig, TxResult,
    TxnKind, Versioning,
};
pub use context::{TmContext, TmExec};
pub use gc::Inspector;
pub use log::{ReadEntry, Savepoint, UndoEntry, WriteEntry};
pub use mode::{AbortClass, ModeController};
pub use mvcc::{VersionStore, VersionStoreStats};
pub use phase::{Phase, PhaseEvent, PhasedParams, SharedModeState};
pub use oracle::{
    CommitEvidence, Obligation, Oracle, OracleLog, OracleMode, OracleViolation, RoObligation,
    SerializationViolation,
};
pub use record::{RecValue, RecordTable};
pub use runtime::{ObjRef, StmRuntime};
pub use stats::{Category, LatencyStats, MetricsSnapshot, TimeBreakdown, TxnStats};
pub use txn::TxThread;
