//! A scheme-independent interface for code running inside a critical
//! section / transaction.
//!
//! The paper's evaluation runs the *same* data-structure code under
//! coarse-grained locks, the base STM, HASTM variants, and best-case HyTM.
//! [`TmContext`] is that common surface: transactional reads/writes of
//! object words plus allocation. Each synchronization scheme provides an
//! executor that repeatedly runs a closure over a `TmContext`
//! implementation (`TxThread` here; lock/sequential/HyTM executors live in
//! the `hastm-locks`, `hastm-htm`, and `hastm-workloads` crates).

use crate::config::TxResult;
use crate::runtime::ObjRef;
use crate::txn::TxThread;

/// Operations available inside one atomic region, independent of how the
/// region is implemented.
pub trait TmContext {
    /// Reads data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Returns the abort cause when the enclosing transaction must roll
    /// back (never errs for lock-based or sequential execution).
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64>;

    /// Writes data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Returns the abort cause when the enclosing transaction must roll
    /// back.
    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()>;

    /// Allocates a fresh object with `data_words` payload words.
    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef;

    /// Bounds doomed-transaction ("zombie") execution: long pointer chases
    /// call this periodically; optimistic schemes revalidate and abort if
    /// inconsistent.
    ///
    /// # Errors
    ///
    /// Returns the abort cause if the execution is already doomed.
    fn ctx_guard(&mut self) -> TxResult<()> {
        Ok(())
    }

    /// Charges `cycles` of application compute (compares, branches,
    /// address arithmetic around the memory accesses). Charged identically
    /// under every scheme, so it calibrates the app-to-overhead ratio
    /// without biasing comparisons.
    fn ctx_work(&mut self, cycles: u64);
}

/// A transaction executor: the backend abstraction over *how* atomic
/// regions run. The simulator-backed executors (`TxThread` here, the
/// lock/sequential/HyTM executors, and `hastm-workloads`' scheme-erased
/// `ThreadExec`) and the host-thread TL2 backend in `hastm-native` all
/// implement this, so harness code written against `TmExec` — workload
/// setup, operation streams, digest sweeps — runs unchanged on simulated
/// cycles or on real hardware.
///
/// `atomic` is generic over the closure's result, so the trait is not
/// object-safe; callers that need dynamic dispatch hold a concrete
/// executor and erase at the [`TmContext`] layer instead (which is what
/// the data structures already do).
pub trait TmExec {
    /// Runs `f` as one atomic region, retrying on aborts until it
    /// commits, and returns its result.
    fn atomic<R>(&mut self, f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R
    where
        Self: Sized;

    /// Runs `f` as one atomic region **declared read-only**. Backends
    /// with a snapshot path ([`crate::Versioning::Multi`] on the
    /// simulator, the k-versioned TL2 stripes on the native backend) read
    /// a consistent snapshot and commit without validation — the region
    /// cannot conflict-abort. `f` must not write. The default falls back
    /// to [`TmExec::atomic`] for backends without one.
    fn atomic_ro<R>(&mut self, f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R
    where
        Self: Sized,
    {
        self.atomic(f)
    }

    /// Allocates an object with `data_words` payload words outside any
    /// atomic region.
    fn alloc_obj(&mut self, data_words: u32) -> ObjRef;

    /// The executor's monotonic clock, read outside any atomic region:
    /// simulated cycles on the simulator backends, host nanoseconds on the
    /// native TL2 backend. Open-loop drivers (the OLTP traffic mill) stamp
    /// per-transaction arrival and completion with this. The default (a
    /// constant 0) is for executors with no meaningful clock; latency
    /// accounting on top of it degenerates gracefully to all-zero samples.
    fn clock(&mut self) -> u64 {
        0
    }

    /// Blocks (simulated stall or host spin) until [`TmExec::clock`]
    /// reaches `tick`; returns immediately if it already has. Open-loop
    /// drivers use this to hold each transaction until its scheduled
    /// arrival.
    fn idle_until(&mut self, tick: u64) {
        let _ = tick;
    }
}

impl TmContext for TxThread<'_, '_> {
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        self.read_word(obj, index)
    }

    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        self.write_word(obj, index, value)
    }

    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef {
        self.alloc_obj(data_words)
    }

    fn ctx_guard(&mut self) -> TxResult<()> {
        self.validate_now()
    }

    fn ctx_work(&mut self, cycles: u64) {
        self.cpu().exec(cycles);
    }
}

impl TmExec for TxThread<'_, '_> {
    fn atomic<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        TxThread::atomic(self, |tx| f(tx))
    }

    fn atomic_ro<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        TxThread::atomic_ro(self, |tx| f(tx))
    }

    fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        TxThread::alloc_obj(self, data_words)
    }

    fn clock(&mut self) -> u64 {
        self.cpu().now()
    }

    fn idle_until(&mut self, tick: u64) {
        let now = self.cpu().now();
        if tick > now {
            self.cpu().tick(tick - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Granularity, StmConfig};
    use crate::runtime::StmRuntime;
    use hastm_sim::{Machine, MachineConfig};

    /// Generic increment usable under any scheme.
    fn bump(ctx: &mut dyn TmContext, obj: ObjRef) -> TxResult<u64> {
        let v = ctx.ctx_read(obj, 0)?;
        ctx.ctx_write(obj, 0, v + 1)?;
        ctx.ctx_guard()?;
        Ok(v + 1)
    }

    #[test]
    fn txthread_implements_context() {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| bump(tx, o));
            tx.atomic(|tx| bump(tx, o))
        });
        assert_eq!(v, 2);
    }
}
