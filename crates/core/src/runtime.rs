//! The shared STM runtime: configuration, the global record table, and
//! object references.

use hastm_sim::{Addr, Machine, SimHeap};

use crate::config::{ModePolicy, StmConfig};
use crate::mvcc::VersionStore;
use crate::oracle::{OracleLog, OracleMode, SerializationViolation};
use crate::phase::SharedModeState;
use crate::record::{RecValue, RecordTable};

/// A reference to a transactional object: a 16-byte-minimum heap cell whose
/// first word is its transaction record (used directly under
/// [`crate::Granularity::Object`]) followed by data words.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ObjRef(pub Addr);

impl ObjRef {
    /// A null reference (no object).
    pub const NULL: ObjRef = ObjRef(Addr::NULL);

    /// Whether this is [`ObjRef::NULL`].
    pub fn is_null(self) -> bool {
        self.0.is_null()
    }

    /// Address of the header (transaction-record) word.
    #[inline]
    pub fn header(self) -> Addr {
        self.0
    }

    /// Address of data word `index`.
    #[inline]
    pub fn word(self, index: u32) -> Addr {
        self.0.offset(8 + 8 * index as u64)
    }
}

impl std::fmt::Display for ObjRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj@{}", self.0)
    }
}

/// Shared, read-only state of one STM instance on one machine.
///
/// # Examples
///
/// ```
/// use hastm::{StmConfig, StmRuntime, Granularity};
/// use hastm_sim::{Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let runtime = StmRuntime::new(&mut machine, StmConfig::stm(Granularity::CacheLine));
/// assert_eq!(runtime.config().granularity, Granularity::CacheLine);
/// ```
#[derive(Debug)]
pub struct StmRuntime {
    config: StmConfig,
    heap: SimHeap,
    rec_table: RecordTable,
    oracle_log: OracleLog,
    versions: Option<VersionStore>,
    phase_state: Option<SharedModeState>,
}

impl StmRuntime {
    /// Creates a runtime on `machine`, allocating and initializing the
    /// global record table (all records start shared at version 1).
    pub fn new(machine: &mut Machine, config: StmConfig) -> Self {
        let heap = machine.heap();
        let rec_table = RecordTable::alloc(&heap);
        for (addr, value) in rec_table.initial_values() {
            machine.poke_u64(addr, value);
        }
        let versions = config
            .versioning
            .is_multi()
            .then(|| VersionStore::new(config.versioning.depth()));
        let phase_state = match config.mode_policy {
            ModePolicy::Phased(params) => Some(SharedModeState::new(params)),
            _ => None,
        };
        StmRuntime {
            config,
            heap,
            rec_table,
            oracle_log: OracleLog::default(),
            versions,
            phase_state,
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// The simulated heap.
    pub fn heap(&self) -> &SimHeap {
        &self.heap
    }

    /// The global cache-line-granularity record table.
    pub fn rec_table(&self) -> &RecordTable {
        &self.rec_table
    }

    /// The shared oracle state: committed-write journal and deferred
    /// obligations (see [`crate::oracle`]). Empty unless
    /// [`StmConfig::oracle`] is on.
    pub fn oracle_log(&self) -> &OracleLog {
        &self.oracle_log
    }

    /// The committed-version store, present only under
    /// [`crate::Versioning::Multi`].
    pub fn version_store(&self) -> Option<&VersionStore> {
        self.versions.as_ref()
    }

    /// The scheme-wide shared phase state, present only under
    /// [`crate::ModePolicy::Phased`].
    pub fn phase_state(&self) -> Option<&SharedModeState> {
        self.phase_state.as_ref()
    }

    /// Checks every committed transaction's deferred serializability
    /// obligations against the committed-write journal, draining both.
    ///
    /// Call after [`Machine::run`] returns (the journal is complete only
    /// once the machine quiesces). A no-op returning `[]` when the oracle
    /// is [`OracleMode::Off`].
    ///
    /// # Panics
    ///
    /// Panics on the first violation under [`OracleMode::Panic`].
    pub fn verify_serializability(&self, machine: &Machine) -> Vec<SerializationViolation> {
        if self.config.oracle == OracleMode::Off {
            return Vec::new();
        }
        let violations = self.oracle_log.verify(|addr| machine.peek_u64(addr));
        if self.config.oracle == OracleMode::Panic {
            if let Some(v) = violations.first() {
                panic!(
                    "oracle: unserializable commit: {v} ({} violations total)",
                    violations.len()
                );
            }
        }
        violations
    }

    /// Collects the unified counters registry for a finished run: the
    /// aggregated per-thread [`crate::TxnStats`] plus the machine's
    /// [`hastm_sim::RunReport`], flattened under stable dotted names (see
    /// [`crate::MetricsSnapshot`]). Harnesses should dump this instead of
    /// hand-picking fields from the two stats structs.
    pub fn metrics_snapshot(
        &self,
        txn: &crate::TxnStats,
        report: &hastm_sim::RunReport,
    ) -> crate::MetricsSnapshot {
        crate::MetricsSnapshot::collect(txn, report)
    }

    /// Allocates an object shell (header + `data_words` words) and returns
    /// the `(ref, header_value)` pair; the caller must store
    /// `header_value` at `ref.header()` before sharing the object. (Done by
    /// [`crate::TxThread::alloc_obj`]; exposed for tests.)
    ///
    /// Allocation goes through `cpu`'s logical-clock gate so concurrent
    /// allocating threads receive run-to-run identical addresses.
    pub fn alloc_obj_shell(&self, cpu: &mut hastm_sim::Cpu<'_>, data_words: u32) -> (ObjRef, u64) {
        let bytes = (8 + 8 * data_words as u64).max(16);
        (ObjRef(cpu.alloc(&self.heap, bytes)), RecValue::INITIAL.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm_sim::MachineConfig;

    #[test]
    fn record_table_initialized() {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, StmConfig::default());
        let rec = rt.rec_table().record_for(Addr(0x1234));
        assert_eq!(m.peek_u64(rec), RecValue::INITIAL.0);
    }

    #[test]
    fn obj_layout() {
        let o = ObjRef(Addr(0x100));
        assert_eq!(o.header(), Addr(0x100));
        assert_eq!(o.word(0), Addr(0x108));
        assert_eq!(o.word(3), Addr(0x120));
        assert!(ObjRef::NULL.is_null());
        assert!(!o.is_null());
        assert_eq!(o.to_string(), "obj@0x100");
    }

    #[test]
    fn shell_allocation_minimum_size() {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, StmConfig::default());
        let ((a, hv), _) = m.run_one(|cpu| {
            let (a, hv) = rt.alloc_obj_shell(cpu, 0);
            let (b, _) = rt.alloc_obj_shell(cpu, 0);
            assert!(b.0 .0 - a.0 .0 >= 16, "minimum 16-byte objects");
            (a, hv)
        });
        assert!(!a.is_null());
        assert_eq!(hv, 1);
    }
}
