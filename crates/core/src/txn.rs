//! Per-thread transaction state: the descriptor, begin/commit/abort,
//! validation, and rollback. Barrier code sequences live in
//! [`crate::barrier`]; the user-facing `atomic`/nesting API in
//! [`crate::api`].

use std::collections::HashMap;

use hastm_sim::{Addr, Cpu};

use crate::config::{Abort, BarrierKind, Mode, ModePolicy, StmConfig, TxResult, TxnKind};
use crate::log::{LogRegion, ReadEntry, Savepoint, UndoEntry, WriteEntry};
use crate::mode::{AbortClass, ModeController};
use crate::oracle::{Oracle, OracleMode, RoObligation};
use crate::phase::{self, Phase, PhaseEvent};
use crate::record::RecValue;
use crate::runtime::{ObjRef, StmRuntime};
use crate::stats::{Category, TxnStats};

/// Descriptor layout offsets (within the 64-byte descriptor line).
const DESC_RDLOG_PTR: u64 = 8;
const DESC_WRLOG_PTR: u64 = 16;
const DESC_UNDOLOG_PTR: u64 = 24;
const DESC_MODE: u64 = 32;

/// Words per log entry.
const READ_ENTRY_WORDS: u32 = 2; // rec, version
const WRITE_ENTRY_WORDS: u32 = 2; // rec, prev version
const UNDO_ENTRY_WORDS: u32 = 3; // addr, old value, GC metadata

/// One thread's transactional execution context.
///
/// Owns the thread's simulated descriptor, logs, mode controller, and
/// statistics, and borrows the thread's [`Cpu`] for the duration of the
/// run. Created inside a worker closure:
///
/// ```
/// use hastm::{StmConfig, StmRuntime, TxThread, Granularity};
/// use hastm_sim::{Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let runtime = StmRuntime::new(&mut machine, StmConfig::stm(Granularity::CacheLine));
/// let (sum, _report) = machine.run_one(|cpu| {
///     let mut tx = TxThread::new(&runtime, cpu);
///     let obj = tx.alloc_obj(2);
///     tx.atomic(|tx| {
///         tx.write_word(obj, 0, 20)?;
///         tx.write_word(obj, 1, 22)?;
///         Ok(())
///     });
///     tx.atomic(|tx| Ok(tx.read_word(obj, 0)? + tx.read_word(obj, 1)?))
/// });
/// assert_eq!(sum, 42);
/// ```
pub struct TxThread<'c, 'm> {
    pub(crate) cpu: &'c mut Cpu<'m>,
    pub(crate) runtime: &'c StmRuntime,
    /// Simulated address of this thread's transaction descriptor. Its value
    /// is what owned records hold.
    pub(crate) desc: Addr,
    pub(crate) read_set: Vec<ReadEntry>,
    pub(crate) write_set: Vec<WriteEntry>,
    pub(crate) undo_log: Vec<UndoEntry>,
    /// rec -> index into `write_set` for records this transaction owns.
    pub(crate) owned: HashMap<Addr, usize>,
    pub(crate) rd_region: LogRegion,
    pub(crate) wr_region: LogRegion,
    pub(crate) undo_region: LogRegion,
    pub(crate) mode: Mode,
    pub(crate) controller: ModeController,
    pub(crate) savepoints: Vec<Savepoint>,
    pub(crate) active: bool,
    pub(crate) reads_since_validation: u32,
    pub(crate) stats: TxnStats,
    pub(crate) rng_state: u64,
    /// Commit-time serializability oracle ([`crate::StmConfig::oracle`]);
    /// a no-op in the default [`OracleMode::Off`].
    pub(crate) oracle: Oracle,
    /// With `filter_writes`: addr -> undo index of its first entry in the
    /// current transaction (dedup within the innermost nesting scope).
    pub(crate) undo_logged: HashMap<Addr, usize>,
    /// Declared kind of the in-flight transaction.
    pub(crate) kind: TxnKind,
    /// Snapshot start stamp of an in-flight read-only transaction
    /// ([`crate::Versioning::Multi`] only).
    pub(crate) ro_start: u64,
    /// Whether `ro_start` is registered live in the version store (so
    /// abort paths deregister exactly once).
    pub(crate) ro_registered: bool,
    /// The global phase this attempt entered under (`None` unless the
    /// policy is [`ModePolicy::Phased`]).
    pub(crate) phase: Option<Phase>,
    /// Whether this attempt runs on the irrevocable serial path (holding
    /// the global token; no validation, no conflict aborts).
    pub(crate) serial: bool,
    /// `(capacity, conflict)` marked-loss counters sampled at the start
    /// of an aggressive attempt, for abort-cause classification.
    pub(crate) loss_base: (u64, u64),
}

impl std::fmt::Debug for TxThread<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxThread")
            .field("desc", &self.desc)
            .field("mode", &self.mode)
            .field("active", &self.active)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .finish_non_exhaustive()
    }
}

impl<'c, 'm> TxThread<'c, 'm> {
    /// Creates the thread context, allocating its descriptor and log
    /// regions from the runtime's heap.
    pub fn new(runtime: &'c StmRuntime, cpu: &'c mut Cpu<'m>) -> Self {
        let heap = runtime.heap();
        let desc = cpu.alloc_aligned(heap, 64, 64);
        let cap = runtime.config().log_capacity;
        let rd_region = LogRegion::new(
            cpu,
            heap,
            desc.offset(DESC_RDLOG_PTR),
            cap,
            READ_ENTRY_WORDS,
        );
        let wr_region = LogRegion::new(
            cpu,
            heap,
            desc.offset(DESC_WRLOG_PTR),
            cap,
            WRITE_ENTRY_WORDS,
        );
        let undo_region = LogRegion::new(
            cpu,
            heap,
            desc.offset(DESC_UNDOLOG_PTR),
            cap,
            UNDO_ENTRY_WORDS,
        );
        // Initialize the descriptor's mode word.
        cpu.store_u64(desc.offset(DESC_MODE), Mode::Cautious as u64);
        let controller = ModeController::new(runtime.config().mode_policy);
        TxThread {
            cpu,
            runtime,
            desc,
            read_set: Vec::new(),
            write_set: Vec::new(),
            undo_log: Vec::new(),
            owned: HashMap::new(),
            rd_region,
            wr_region,
            undo_region,
            mode: Mode::Cautious,
            controller,
            savepoints: Vec::new(),
            active: false,
            reads_since_validation: 0,
            stats: TxnStats::default(),
            rng_state: 0x9e37_79b9_7f4a_7c15 ^ (desc.0 << 1),
            oracle: Oracle::new(runtime.config().oracle),
            undo_logged: HashMap::new(),
            kind: TxnKind::ReadWrite,
            ro_start: 0,
            ro_registered: false,
            phase: None,
            serial: false,
            loss_base: (0, 0),
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StmConfig {
        self.runtime.config()
    }

    /// The shared runtime this thread runs against.
    pub fn runtime(&self) -> &'c StmRuntime {
        self.runtime
    }

    /// Whether a transaction is currently executing.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Current mode of the in-flight transaction.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Declared kind of the in-flight transaction.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// Whether the in-flight transaction runs the wait-free snapshot-read
    /// path: declared read-only *and* the runtime keeps multiple versions.
    /// (Under [`crate::Versioning::Single`] a read-only transaction is an
    /// ordinary transaction that happens not to write.)
    pub fn is_snapshot(&self) -> bool {
        self.kind == TxnKind::ReadOnly && self.runtime.version_store().is_some()
    }

    /// Snapshot start stamp of an in-flight read-only transaction.
    pub fn snapshot_start(&self) -> u64 {
        debug_assert!(self.is_snapshot());
        self.ro_start
    }

    /// This thread's transaction statistics.
    pub fn stats(&self) -> &TxnStats {
        &self.stats
    }

    /// Mutable access to the thread's CPU (for application work between
    /// transactions; inside a transaction, use the transactional API).
    pub fn cpu(&mut self) -> &mut Cpu<'m> {
        self.cpu
    }

    /// Mode-controller diagnostics (current dirty ratio).
    pub fn dirty_ratio(&self) -> f64 {
        self.controller.dirty_ratio()
    }

    pub(crate) fn hastm(&self) -> bool {
        self.runtime.config().barrier == BarrierKind::Hastm
    }

    /// Cheap xorshift for backoff jitter (deterministic per thread).
    pub(crate) fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// This thread's serializability oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Debug-only (oracle on): asserts write-set/owned-map/memory agreement.
    pub(crate) fn check_ownership(&mut self, site: &str) {
        if !self.oracle.enabled() {
            return;
        }
        for (i, w) in self.write_set.iter().enumerate() {
            let cur = self.cpu.peek_u64(w.rec);
            assert!(
                cur == self.desc.0,
                "ownership invariant broken at {site}: write_set[{i}] rec {} prev {:?} but memory holds {cur:#x} (desc {})",
                w.rec,
                w.prev,
                self.desc
            );
            assert_eq!(
                self.owned.get(&w.rec),
                Some(&i),
                "owned map desync at {site}"
            );
        }
    }

    /// Measures a span of simulated cycles and attributes it to `cat`.
    ///
    /// Cycles the closure already attributed itself (a nested `timed`, or
    /// an explicit `breakdown.add` such as `handle_contention`'s wait) are
    /// excluded, so every simulated cycle lands in exactly one category and
    /// the breakdown total never exceeds elapsed time.
    pub(crate) fn timed<T>(&mut self, cat: Category, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = self.cpu.now();
        let attributed0 = self.stats.breakdown.total();
        let r = f(self);
        let dt = self.cpu.now() - t0;
        let nested = self.stats.breakdown.total() - attributed0;
        self.attribute(cat, dt.saturating_sub(nested));
        r
    }

    /// Adds `cycles` to `cat` in the breakdown and mirrors the attribution
    /// into the structured trace (when armed) as a `Phase` event. Every
    /// breakdown update funnels through here, which is what makes the
    /// trace-vs-breakdown reconciliation exact: a lossless trace's
    /// per-phase sums equal the `TimeBreakdown` by construction.
    pub(crate) fn attribute(&mut self, cat: Category, cycles: u64) {
        self.stats.breakdown.add(cat, cycles);
        if cycles > 0 {
            self.cpu.trace(hastm_sim::TraceEvent::Phase {
                phase: cat.phase(),
                cycles,
            });
        }
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Whether the in-flight transaction runs the irrevocable serial
    /// path (the [`Phase::Serial`] token holder).
    pub fn is_serial(&self) -> bool {
        self.serial
    }

    /// The global phase the in-flight attempt entered under (`None`
    /// unless the policy is [`ModePolicy::Phased`]).
    pub fn current_phase(&self) -> Option<Phase> {
        self.phase
    }

    /// Enters the global phase machine for one attempt: registers as an
    /// optimistic transaction (phase-word CAS), or — when the published
    /// phase is [`Phase::Serial`] — acquires the global token and waits
    /// for every optimistic transaction to drain. Each load/CAS of the
    /// phase word is its own gated op (`exec_sync`), mirroring the two
    /// separate instructions real hardware would execute, so concurrent
    /// publications interleave deterministically between them.
    fn enter_phase(&mut self) {
        let rt = self.runtime;
        let Some(ps) = rt.phase_state() else {
            return;
        };
        let mut seen = self.cpu.exec_sync(1, || ps.word());
        let mut expected = seen;
        let mut spins = 0u64;
        loop {
            if Phase::decode(seen) == Phase::Serial {
                let id = self.desc.0 | 1;
                if self.cpu.exec_sync(1, || ps.try_acquire_token(id)) {
                    // Token held — but the previous holder may have
                    // promoted the phase (its SerialCommit event fires
                    // before it releases the token), so re-verify Serial
                    // is still published. Holding a token for a phase
                    // that is gone would mean running irrevocably while
                    // optimistic transactions enter freely.
                    let w = self.cpu.exec_sync(1, || ps.word());
                    if Phase::decode(w) != Phase::Serial {
                        self.cpu.exec_sync(1, || ps.release_token(id));
                        seen = w;
                        expected = w;
                        continue;
                    }
                    // Wait for the optimistic population to drain. No
                    // optimistic transaction can re-enter (the published
                    // phase is Serial), and once the token is held with
                    // Serial re-verified no SerialCommit can promote the
                    // phase (serial commits require this token), so after
                    // the drain this thread is provably alone.
                    loop {
                        let w = self.cpu.exec_sync(1, || ps.word());
                        if crate::phase::SharedModeState::active_count(w) == 0 {
                            break;
                        }
                        self.timed(Category::Contention, |t| t.cpu.tick(64));
                    }
                    self.phase = Some(Phase::Serial);
                    self.serial = true;
                    return;
                }
                // Token busy: back off and re-read — the holder may have
                // promoted the phase, reopening optimistic entry.
                spins += 1;
                self.timed(Category::Contention, |t| t.cpu.tick(64 + (spins & 63)));
                seen = self.cpu.exec_sync(1, || ps.word());
                expected = seen;
                continue;
            }
            match self.cpu.exec_sync(1, || ps.cas_enter(expected, seen)) {
                Ok(p) => {
                    self.phase = Some(p);
                    return;
                }
                Err(cur) => {
                    expected = cur;
                    seen = phase::refresh_view(seen, cur);
                }
            }
        }
    }

    /// Begins a top-level transaction attempt.
    pub(crate) fn begin(&mut self, attempt: u32) {
        debug_assert!(!self.active, "begin while active");
        self.phase = None;
        self.serial = false;
        self.enter_phase();
        self.kind = TxnKind::ReadWrite;
        self.cpu.trace(hastm_sim::TraceEvent::TxnBegin { attempt });
        self.active = true;
        self.reads_since_validation = 0;
        self.read_set.clear();
        self.write_set.clear();
        self.undo_log.clear();
        self.owned.clear();
        self.savepoints.clear();
        self.rd_region.reset();
        self.wr_region.reset();
        self.undo_region.reset();
        if self.oracle.enabled() {
            let (epoch, now) = (self.cpu.run_epoch(), self.cpu.now());
            self.oracle.begin(epoch, now);
        }
        self.undo_logged.clear();
        self.mode = match self.phase {
            // Serial attempts bypass barriers entirely; the descriptor
            // mode is published as cautious so any (impossible) slow-path
            // reader of it sees the safe value.
            Some(_) if self.serial => Mode::Cautious,
            Some(p) if self.hastm() => {
                let budget = match self.runtime.config().mode_policy {
                    ModePolicy::Phased(params) => params.hw_retry_budget,
                    _ => 1,
                };
                p.mode_for(attempt, budget)
            }
            Some(_) => Mode::Cautious,
            None if self.hastm() => self.controller.mode_for(attempt),
            None => Mode::Cautious,
        };
        // Publish the mode in the descriptor (read by barrier slow paths).
        self.cpu
            .store_u64(self.desc.offset(DESC_MODE), self.mode as u64);
        if self.hastm() {
            // Cautious mode's 2-instruction fast path is sound only under
            // the invariant "marked => logged or owned by THIS
            // transaction", so cautious attempts always start from a clean
            // slate. Only aggressive attempts may inherit marks from the
            // previous transaction (the Figure 10 inter-atomic
            // optimization): there, a fast-path read needs no log entry
            // because commit requires the counter to stay clean.
            if self.runtime.config().clear_marks_between_txns || self.mode == Mode::Cautious {
                self.cpu.reset_mark_all();
            }
            self.cpu.reset_mark_counter();
            if self.runtime.config().filter_writes {
                // The write filter's invariant ("write-marked => owned by
                // this transaction") never spans transactions.
                self.cpu.reset_mark_all_f(hastm_sim::FilterId::WRITE);
            }
            if self.mode == Mode::Aggressive {
                // Baseline for abort-cause classification: a dirty-counter
                // abort is attributed to whichever loss class (capacity vs
                // remote-writer conflict) grew more during the attempt.
                self.loss_base = self.cpu.marked_loss_by_cause();
            }
        }
        if let Some(p) = self.phase {
            self.stats.phase_begins[p.idx()] += 1;
        }
    }

    /// Begins a top-level transaction attempt declared
    /// [`TxnKind::ReadOnly`].
    ///
    /// Under [`crate::Versioning::Multi`] this arms the snapshot-read
    /// path: the transaction captures the version store's current commit
    /// stamp as its start stamp, registers itself live (pinning history
    /// against reclamation), reads the newest version ≤ start of every
    /// word, and commits without validation — it cannot conflict-abort.
    /// Under [`crate::Versioning::Single`] it is an ordinary [`begin`].
    pub(crate) fn begin_ro(&mut self, attempt: u32) {
        self.begin(attempt);
        if self.serial {
            // The serial phase runs read-only regions irrevocably too:
            // the token holder is alone, so direct reads are already a
            // consistent snapshot and no version-store registration is
            // needed (the kind stays ReadWrite on purpose — the snapshot
            // machinery must not engage).
            return;
        }
        let Some(store) = self.runtime.version_store() else {
            return;
        };
        self.kind = TxnKind::ReadOnly;
        // Capture the stamp and register live inside the gated op: the
        // version store is side-band host state the gate cannot order on
        // its own, and a racing writer's stamp issue must deterministically
        // land before or after this capture. Doing both under one gated op
        // also means no commit can slip between capture and registration.
        self.ro_start = self.cpu.exec_sync(2, || {
            // load global stamp + register
            let start = store.current_stamp();
            store.register_ro(start);
            start
        });
        self.ro_registered = true;
    }

    /// Deregisters an in-flight snapshot transaction from the version
    /// store (idempotent).
    fn ro_deregister(&mut self) {
        if self.ro_registered {
            if let Some(store) = self.runtime.version_store() {
                store.deregister_ro(self.ro_start);
            }
            self.ro_registered = false;
        }
    }

    /// Validates the read set (Figure 2 / Figure 6). Returns whether the
    /// mark counter was dirty (always `false` for the pure-software STM),
    /// or an abort if a version changed.
    pub(crate) fn validate(&mut self) -> TxResult<bool> {
        self.reads_since_validation = 0;
        if self.hastm() {
            let counter = self.cpu.read_mark_counter();
            self.cpu.exec(1); // branch on counter
            if counter == 0 {
                // No marked line was snooped or evicted: every record this
                // transaction marked still holds the version it held when
                // marked, so validation is free (Figure 6).
                self.stats.validations_skipped += 1;
                return Ok(false);
            }
            if self.mode == Mode::Aggressive {
                // No read log to fall back on (§6): spurious or real, the
                // transaction must abort and re-execute cautiously.
                return Err(Abort::MarkCounterDirty);
            }
            self.software_validate()?;
            return Ok(true);
        }
        self.software_validate()?;
        Ok(false)
    }

    /// Full software read-set walk (Figure 2).
    fn software_validate(&mut self) -> TxResult<()> {
        // Seeded opacity bug for `hastm-check`'s zombie scenarios: the
        // slow path "revalidates" by not walking the read set at all, so
        // doomed transactions commit on stale reads. Both periodic and
        // commit-time validation route through here, for the base STM and
        // for HASTM's cautious fallback alike — the oracle and the
        // explorer must each flag the resulting lost updates.
        if cfg!(feature = "seeded-bug") {
            return Ok(());
        }
        self.stats.validations_full += 1;
        for i in 0..self.read_set.len() {
            let entry = self.read_set[i];
            let cur = RecValue(self.cpu.load_u64(entry.rec));
            self.cpu.exec(2); // compare + branch
            if cur == entry.version {
                continue;
            }
            // The record may legitimately differ because *we* own it now:
            // it must then have been acquired at exactly the version we
            // logged when reading.
            if cur.is_owned() && cur.owner() == self.desc {
                if let Some(&wi) = self.owned.get(&entry.rec) {
                    if self.write_set[wi].prev == entry.version {
                        continue;
                    }
                }
            }
            return Err(Abort::Conflict);
        }
        Ok(())
    }

    /// Validates if the periodic-validation budget is exhausted. Called
    /// after read barriers; bounds the work a doomed transaction can do.
    pub(crate) fn maybe_validate(&mut self) -> TxResult<()> {
        self.reads_since_validation += 1;
        if self.reads_since_validation >= self.runtime.config().validation_period {
            self.timed(Category::Validate, |t| t.validate())?;
        }
        Ok(())
    }

    /// Forces a validation now. Public so long traversals can bound zombie
    /// execution explicitly (e.g. every N hops of a pointer chase).
    ///
    /// # Errors
    ///
    /// Returns the abort cause if the read set is no longer consistent.
    pub fn validate_now(&mut self) -> TxResult<()> {
        if self.is_snapshot() {
            // Snapshot reads are consistent by construction; there is no
            // read set to validate and nothing that could abort.
            return Ok(());
        }
        self.timed(Category::Validate, |t| t.validate())?;
        Ok(())
    }

    /// Attempts to commit the in-flight transaction.
    pub(crate) fn commit(&mut self) -> TxResult<()> {
        debug_assert!(self.active);
        if self.serial {
            self.commit_serial();
            return Ok(());
        }
        if self.is_snapshot() {
            return Ok(self.commit_snapshot());
        }
        let dirty = self.timed(Category::Validate, |t| t.validate())?;
        self.oracle_on_commit();
        self.publish_versions();
        self.timed(Category::Commit, |t| {
            // Release every owned record with an incremented version so
            // concurrent readers detect the update (strict 2PL release).
            for i in 0..t.write_set.len() {
                let w = t.write_set[i];
                t.cpu.store_u64(w.rec, w.prev.bump().0);
                t.cpu.exec(1);
            }
        });
        self.stats.commits += 1;
        self.cpu.trace(hastm_sim::TraceEvent::TxnCommit);
        match self.mode {
            Mode::Aggressive => self.stats.aggressive_commits += 1,
            Mode::Cautious => self.stats.cautious_commits += 1,
        }
        if self.hastm() {
            self.controller.on_commit(dirty);
        }
        self.phase_commit_hook(dirty);
        self.active = false;
        Ok(())
    }

    /// Commit-time serializability-oracle bookkeeping: evidence, journal
    /// append, and the deferred obligation. A no-op when the oracle is
    /// off.
    fn oracle_on_commit(&mut self) {
        if self.oracle.enabled() {
            // Evidence is collected BEFORE the locks drop: the undo
            // pre-images and final values are exact only while no other
            // transaction can touch the written addresses, and the journal
            // append must precede the release so per-address journal order
            // is commit order. (Host-side peeks of lock-protected
            // addresses; no simulated cost — the oracle is a verification
            // aid, not part of the measured system.)
            let (evidence, obligation) = {
                let cpu = &mut *self.cpu;
                let writes = Oracle::journal_writes(&self.undo_log, |addr| cpu.peek_u64(addr));
                let (evidence, obligation) =
                    self.oracle
                        .commit_evidence(&self.undo_log, cpu.id(), cpu.now());
                let log = self.runtime.oracle_log();
                log.record_commit(obligation.epoch, obligation.t_end, &writes);
                log.record_obligation(obligation.clone());
                (evidence, obligation)
            };
            self.stats.oracle_commits_checked += 1;
            self.stats.oracle_reads_checked += evidence.reads_checked;
            self.stats.oracle_violations += evidence.violations.len() as u64;
            if let Some(v) = evidence.violations.first() {
                if self.oracle.mode() == OracleMode::Panic {
                    panic!(
                        "oracle: unserializable commit: {v} (mode {:?});\n read of an address this transaction wrote, checked against the oldest undo pre-image\n deferred reads: {}\n writes: {:?}\n counter={}",
                        self.mode,
                        obligation.reads.len(),
                        self.write_set,
                        self.cpu.read_mark_counter(),
                    );
                }
            }
        }
    }

    /// Publishes this commit's final values into the version rings
    /// ([`crate::Versioning::Multi`] only; a no-op otherwise).
    fn publish_versions(&mut self) {
        if let Some(store) = self.runtime.version_store() {
            // Publish this commit's final values into the version rings
            // *before* releasing the records: stamp issue + publication is
            // one atomic host-side step, and until the release no other
            // writer can re-acquire these addresses, so per-address stamp
            // order is commit order. Empty write sets publish nothing and
            // issue no stamp.
            let cpu = &mut *self.cpu;
            let journal = Oracle::journal_writes(&self.undo_log, |addr| cpu.peek_u64(addr));
            if !journal.is_empty() {
                let writes: Vec<(u64, u64)> =
                    journal.iter().map(|&(a, _, new)| (a.0, new)).collect();
                // Stamp issue + publication runs inside a gated op so its
                // order against concurrent snapshot-stamp captures and ring
                // probes is fixed by the deterministic admission schedule,
                // not by the store's own lock.
                let stamp = cpu.exec_sync(1, || store.commit_publish(&writes));
                self.stats.versions_published += writes.len() as u64;
                if self.oracle.enabled() {
                    self.runtime
                        .oracle_log()
                        .record_versioned_commit(stamp, &journal);
                }
            }
        }
    }

    /// Commits an irrevocable serial-phase transaction. The token holder
    /// is provably alone (every optimistic transaction drained before it
    /// started and none can re-enter while the published phase stays
    /// [`Phase::Serial`]), so there is nothing to validate and no records
    /// to release — writes went to memory directly, with undo entries
    /// kept only for user-initiated aborts. Version publication still
    /// runs so MVCC snapshot readers that begin after the serial phase
    /// see correctly stamped history.
    fn commit_serial(&mut self) {
        debug_assert!(self.serial);
        debug_assert!(
            self.write_set.is_empty(),
            "serial path acquired a record"
        );
        self.oracle_on_commit();
        self.publish_versions();
        self.timed(Category::Commit, |t| t.cpu.exec(1));
        self.stats.commits += 1;
        self.stats.serial_commits += 1;
        self.cpu.trace(hastm_sim::TraceEvent::TxnCommit);
        match self.mode {
            Mode::Aggressive => self.stats.aggressive_commits += 1,
            Mode::Cautious => self.stats.cautious_commits += 1,
        }
        if self.hastm() {
            self.controller.on_commit(false);
        }
        self.phase_commit_hook(false);
        self.active = false;
    }

    /// Phase bookkeeping at commit: per-phase counters, optimistic exit
    /// (or token release on the serial path), and the heuristic event
    /// that may publish a transition. A no-op outside
    /// [`ModePolicy::Phased`].
    fn phase_commit_hook(&mut self, dirty: bool) {
        let Some(p) = self.phase.take() else {
            return;
        };
        self.stats.phase_commits[p.idx()] += 1;
        let rt = self.runtime;
        let Some(ps) = rt.phase_state() else {
            return;
        };
        let transitioned = if self.serial {
            let id = self.desc.0 | 1;
            self.serial = false;
            self.cpu.exec_sync(1, || {
                // Event first, release second: a successor acquiring the
                // token must observe the (possibly promoted) phase this
                // commit published.
                let tr = ps.on_event(PhaseEvent::SerialCommit);
                ps.release_token(id);
                tr
            })
        } else {
            let ev = if dirty {
                PhaseEvent::DirtyCommit
            } else {
                PhaseEvent::CleanCommit
            };
            self.cpu.exec_sync(1, || {
                ps.exit_optimistic();
                ps.on_event(ev)
            })
        };
        if transitioned.is_some() {
            self.stats.phase_transitions += 1;
        }
    }

    /// Phase bookkeeping at abort: per-phase per-cause counters,
    /// optimistic exit (or token release), and — for interference-caused
    /// aborts — the heuristic event. User-initiated aborts (retry,
    /// explicit) are not interference and feed no event.
    fn phase_abort_hook(&mut self, cause: Abort, class: Option<AbortClass>) {
        let Some(p) = self.phase.take() else {
            return;
        };
        match class {
            Some(AbortClass::Conflict) => self.stats.phase_aborts_conflict[p.idx()] += 1,
            Some(AbortClass::Capacity) => self.stats.phase_aborts_capacity[p.idx()] += 1,
            None => {}
        }
        let rt = self.runtime;
        let Some(ps) = rt.phase_state() else {
            return;
        };
        if self.serial {
            debug_assert!(
                matches!(cause, Abort::Retry | Abort::Explicit),
                "serial transactions cannot conflict-abort (got {cause:?})"
            );
            let id = self.desc.0 | 1;
            self.serial = false;
            self.cpu.exec_sync(1, || ps.release_token(id));
            return;
        }
        let ev = match class {
            Some(AbortClass::Conflict) => Some(PhaseEvent::ConflictAbort),
            Some(AbortClass::Capacity) => Some(PhaseEvent::CapacityAbort),
            None => None,
        };
        let transitioned = self.cpu.exec_sync(1, || {
            ps.exit_optimistic();
            ev.and_then(|e| ps.on_event(e))
        });
        if transitioned.is_some() {
            self.stats.phase_transitions += 1;
        }
    }

    /// Classifies a dirty-mark-counter abort by which loss class grew
    /// more during the attempt. Ties (including zero/zero, e.g. a counter
    /// bump from a whole-filter reset) default to capacity — the paper's
    /// conservative reading: indistinguishable losses are treated as the
    /// kind no backoff policy could fix.
    fn classify_mark_dirty(&mut self) -> AbortClass {
        let (cap, conf) = self.cpu.marked_loss_by_cause();
        let (cap0, conf0) = self.loss_base;
        if conf.saturating_sub(conf0) > cap.saturating_sub(cap0) {
            AbortClass::Conflict
        } else {
            AbortClass::Capacity
        }
    }

    /// Commits a snapshot read-only transaction: no validation, no locks
    /// to release, nothing that can fail. The reads were consistent by
    /// construction (every one resolved against the closed snapshot at
    /// `ro_start`), so the only work is the oracle obligation and
    /// deregistration.
    fn commit_snapshot(&mut self) {
        debug_assert!(self.is_snapshot());
        debug_assert!(
            self.write_set.is_empty() && self.undo_log.is_empty(),
            "snapshot transaction acquired records"
        );
        if self.oracle.enabled() {
            let reads = self.oracle.ro_reads();
            self.stats.oracle_commits_checked += 1;
            self.stats.oracle_reads_checked += reads.len() as u64;
            self.runtime.oracle_log().record_ro_obligation(RoObligation {
                core: self.cpu.id(),
                epoch: self.cpu.run_epoch(),
                start: self.ro_start,
                reads,
            });
        }
        self.cpu.exec(1); // commit is a single deregistering store
        self.ro_deregister();
        self.stats.commits += 1;
        self.stats.ro_commits += 1;
        self.cpu.trace(hastm_sim::TraceEvent::TxnCommit);
        match self.mode {
            Mode::Aggressive => self.stats.aggressive_commits += 1,
            Mode::Cautious => self.stats.cautious_commits += 1,
        }
        self.phase_commit_hook(false);
        self.active = false;
    }

    /// Aborts the in-flight transaction: rolls back the undo log (eager
    /// version management) and releases owned records.
    pub(crate) fn abort(&mut self, cause: Abort) {
        debug_assert!(self.active);
        if self.is_snapshot() {
            // Only user-initiated aborts can reach here: the snapshot path
            // has no validation and acquires no records, so `Conflict` and
            // `MarkCounterDirty` are structurally impossible.
            debug_assert!(
                matches!(cause, Abort::Retry | Abort::Explicit),
                "snapshot read-only transaction aborted with {cause:?}"
            );
            self.stats.ro_aborts += 1;
            self.ro_deregister();
        }
        // Roll back newest-first so overlapping writes restore correctly.
        for i in (0..self.undo_log.len()).rev() {
            let u = self.undo_log[i];
            self.cpu.store_u64(u.addr, u.old);
            self.cpu.exec(1);
        }
        for i in 0..self.write_set.len() {
            let w = self.write_set[i];
            self.cpu.store_u64(w.rec, w.prev.bump().0);
            self.cpu.exec(1);
        }
        self.stats.record_abort(cause);
        self.cpu.trace(hastm_sim::TraceEvent::TxnAbort {
            cause: match cause {
                Abort::Conflict => "conflict",
                Abort::MarkCounterDirty => "mark-dirty",
                Abort::Retry => "retry",
                Abort::Explicit => "explicit",
            },
        });
        // Thread the abort's cause class (conflict vs capacity) to the
        // controller and the phase heuristics: a record conflict is a
        // conflict by construction; a dirty mark counter is classified by
        // which loss counter grew during the attempt.
        let class = match cause {
            Abort::Conflict => Some(AbortClass::Conflict),
            Abort::MarkCounterDirty => Some(self.classify_mark_dirty()),
            Abort::Retry | Abort::Explicit => None,
        };
        if self.hastm() {
            // Discard all marks: released records must not satisfy a later
            // transaction's fast path as if they were logged or owned
            // (essential when inter-atomic mark reuse is enabled).
            self.cpu.reset_mark_all();
            if let Some(class) = class {
                self.controller.on_abort(class);
            }
        }
        self.phase_abort_hook(cause, class);
        self.active = false;
    }

    // ------------------------------------------------------------------
    // Nested-transaction support (partial rollback)
    // ------------------------------------------------------------------

    /// Takes a savepoint over the three logs.
    pub(crate) fn savepoint(&self) -> Savepoint {
        Savepoint {
            reads: self.read_set.len(),
            writes: self.write_set.len(),
            undos: self.undo_log.len(),
            shadow_reads: self.oracle.mark(),
        }
    }

    /// Partially rolls back to `sp`: restores data written since the
    /// savepoint and releases records acquired since it, leaving the
    /// enclosing transaction's state intact.
    ///
    /// Two HASTM-specific obligations keep partial rollback sound with
    /// respect to the mark-bit filter (whose fast path trusts "marked ⇒
    /// covered by this transaction's validation"):
    ///
    /// * the read set is **not** truncated — records read (and marked)
    ///   inside the aborted scope stay logged, keeping dirty-counter
    ///   commits covered for any later fast-path read of them; and
    /// * every *released* record is appended to the read set at its
    ///   release version. A record that was only *written* in the aborted
    ///   scope stays marked but would otherwise have no entry at all: a
    ///   later fast-path read of it, followed by a remote update and a
    ///   dirty-counter commit, would slip through software validation —
    ///   an unserializable commit (caught by the [`crate::Oracle`]).
    ///
    /// Clean-counter commits need neither: intact marks guarantee no
    /// remote writes touched anything this transaction read.
    pub(crate) fn rollback_to(&mut self, sp: Savepoint) {
        for i in (sp.undos..self.undo_log.len()).rev() {
            let u = self.undo_log[i];
            self.cpu.store_u64(u.addr, u.old);
            self.cpu.exec(1);
        }
        self.undo_log.truncate(sp.undos);
        let hastm = self.hastm();
        let filter_writes = hastm && self.runtime.config().filter_writes;
        let heap = self.runtime.heap().clone();
        for i in sp.writes..self.write_set.len() {
            let w = self.write_set[i];
            let released = w.prev.bump();
            self.cpu.store_u64(w.rec, released.0);
            self.cpu.exec(1);
            self.owned.remove(&w.rec);
            if filter_writes {
                // Released => no longer owned: the write filter must not
                // fast-path this record any more.
                self.cpu
                    .load_reset_mark_u64_f(hastm_sim::FilterId::WRITE, w.rec);
            }
            if hastm {
                // Keep the (still marked) record validated: log the
                // release version as a read.
                self.read_set.push(ReadEntry {
                    rec: w.rec,
                    version: released,
                });
                self.rd_region
                    .append(self.cpu, &heap, &[w.rec.0, released.0]);
            }
        }
        self.write_set.truncate(sp.writes);
        if self.runtime.config().filter_writes {
            // Drop dedup entries for undo records that no longer exist.
            self.undo_logged.retain(|_, &mut idx| idx < sp.undos);
        }
        self.oracle.rollback_to(sp.shadow_reads, &self.undo_log);
        self.check_ownership("rollback_to");
    }

    /// Validates only the enclosing transaction's portion of the read set
    /// (entries below `sp`); used to decide whether a nested conflict can
    /// be retried locally or must abort the parent.
    pub(crate) fn parent_portion_valid(&mut self, sp: Savepoint) -> bool {
        for i in 0..sp.reads {
            let entry = self.read_set[i];
            let cur = RecValue(self.cpu.load_u64(entry.rec));
            self.cpu.exec(2);
            if cur == entry.version {
                continue;
            }
            if cur.is_owned() && cur.owner() == self.desc {
                if let Some(&wi) = self.owned.get(&entry.rec) {
                    if self.write_set[wi].prev == entry.version {
                        continue;
                    }
                }
            }
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates a fresh transactional object with `data_words` words of
    /// payload (minimum object size 16 bytes) and initializes its header
    /// record to the shared state at version 1.
    pub fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        let (obj, header) = self.runtime.alloc_obj_shell(self.cpu, data_words);
        self.cpu.store_u64(obj.header(), header);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Granularity;
    use hastm_sim::{Machine, MachineConfig};

    fn setup(config: StmConfig) -> (Machine, StmRuntime) {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        (m, rt)
    }

    #[test]
    fn begin_commit_empty() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.begin(0);
            assert!(tx.is_active());
            tx.commit().expect("empty commit");
            assert!(!tx.is_active());
            assert_eq!(tx.stats().commits, 1);
        });
    }

    #[test]
    fn abort_rolls_back_undo_in_reverse() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let heap = rt.heap().clone();
        let target = heap.alloc(8);
        m.run_one(|cpu| {
            cpu.store_u64(target, 1);
            let mut tx = TxThread::new(&rt, cpu);
            tx.begin(0);
            // Two overlapping undo entries for the same word.
            tx.undo_log.push(UndoEntry {
                addr: target,
                old: 1,
                meta: 0,
            });
            tx.cpu.store_u64(target, 2);
            tx.undo_log.push(UndoEntry {
                addr: target,
                old: 2,
                meta: 0,
            });
            tx.cpu.store_u64(target, 3);
            tx.abort(Abort::Conflict);
            assert_eq!(tx.cpu.load_u64(target), 1, "reverse-order rollback");
            assert_eq!(tx.stats().aborts_conflict, 1);
        });
    }

    #[test]
    fn hastm_empty_txn_skips_validation() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.begin(0);
            tx.commit().unwrap();
            assert_eq!(tx.stats().validations_skipped, 1);
            assert_eq!(tx.stats().validations_full, 0);
        });
    }

    #[test]
    fn alloc_obj_initializes_header() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::Object));
        let hdr = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(2);
            o.header()
        });
        assert_eq!(m.peek_u64(hdr.0), RecValue::INITIAL.0);
    }

    #[test]
    fn savepoint_rollback_restores_partial_state() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let heap = rt.heap().clone();
        let a = heap.alloc(8);
        let b = heap.alloc(8);
        m.run_one(|cpu| {
            cpu.store_u64(a, 10);
            cpu.store_u64(b, 20);
            let mut tx = TxThread::new(&rt, cpu);
            tx.begin(0);
            tx.undo_log.push(UndoEntry {
                addr: a,
                old: 10,
                meta: 0,
            });
            tx.cpu.store_u64(a, 11);
            let sp = tx.savepoint();
            tx.undo_log.push(UndoEntry {
                addr: b,
                old: 20,
                meta: 0,
            });
            tx.cpu.store_u64(b, 21);
            tx.rollback_to(sp);
            assert_eq!(tx.cpu.load_u64(a), 11, "pre-savepoint write survives");
            assert_eq!(tx.cpu.load_u64(b), 20, "post-savepoint write undone");
            assert_eq!(tx.undo_log.len(), 1);
            tx.abort(Abort::Explicit);
            assert_eq!(tx.cpu.load_u64(a), 10, "full abort undoes the rest");
        });
    }
}
