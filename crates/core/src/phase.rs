//! The PhTM-style global phase machine behind [`crate::ModePolicy::Phased`].
//!
//! Unlike the per-thread [`crate::ModeController`], the phase machine is
//! *scheme-wide*: one [`SharedModeState`] per runtime publishes the
//! current execution phase to every thread through a single CAS-published
//! word. The phase lattice mirrors the hybrid-TM fallback chain:
//!
//! ```text
//!   Hw  ⇄  Aggressive  ⇄  Cautious  ⇄  Serial
//! ```
//!
//! * **Hw** — the HTM-analog fast path: attempts run aggressive (no read
//!   logging) with a per-phase retry budget before an attempt falls back
//!   to a cautious re-execution.
//! * **Aggressive** — first attempts aggressive, re-executions cautious
//!   (the paper's §6 policy).
//! * **Cautious** — every attempt cautious (§5 barriers, full read log).
//! * **Serial** — irrevocable execution under a global token: exactly one
//!   transaction runs at a time, with no validation and no aborts.
//!
//! Transitions move **one level at a time** (no skip-level jumps), are
//! driven by capacity-abort persistence (consecutive interference events
//! demote; consecutive clean commits promote), and respect a hysteresis
//! window (a minimum number of events between transitions) so a single
//! noisy burst cannot ping-pong the whole scheme.
//!
//! ## The packed phase word
//!
//! All entry/exit coordination lives in one `AtomicU64`:
//!
//! ```text
//!   [ epoch : bits 19.. ][ active : bits 3..19 ][ phase : bits 0..3 ]
//! ```
//!
//! `phase` is the published [`Phase`], `active` counts in-flight
//! *optimistic* (non-serial) transactions, and `epoch` increments on
//! every phase publication so any CAS racing a transition observes a
//! changed word. A beginning transaction reads the word and, unless the
//! phase is [`Phase::Serial`], CASes `active + 1` in; a serial entrant
//! instead acquires the global token and waits for `active` to drain to
//! zero, after which it is provably alone.
//!
//! ## Determinism under the simulator gate
//!
//! The phase word is side-band host state — it is not simulated memory,
//! so the admission gate cannot order accesses to it by itself. Every
//! sim-side read/CAS of the word therefore runs inside
//! `Cpu::exec_sync` (canonical admission), which makes each access
//! atomic with one gated instruction and totally ordered by the
//! deterministic admission schedule: the same seed yields the same
//! transition history across gate modes and host sweep widths. The
//! native backend uses the same `SeqCst` atomics directly.
//!
//! ## The `phase-seeded-bug` mutation
//!
//! With the `phase-seeded-bug` cargo feature, [`refresh_view`] keeps the
//! *stale* phase bits after a failed entry CAS: the retry then writes the
//! old phase back, silently dropping a concurrent phase publication — a
//! thread can keep running aggressive inside the `Serial` phase while the
//! token holder believes it is alone. `hastm-check`'s differential suite
//! must catch the resulting lost updates (`tests/phase_mutation.rs`).

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;

use crate::config::Mode;

/// `false` only under the `phase-seeded-bug` mutation: a failed entry CAS
/// re-reads the whole word (including a phase publication that raced in).
const PHASE_RECHECK: bool = cfg!(not(feature = "phase-seeded-bug"));

/// Bit layout of the packed phase word.
const PHASE_MASK: u64 = 0b111;
const ACTIVE_SHIFT: u64 = 3;
const ACTIVE_MASK: u64 = 0xFFFF << ACTIVE_SHIFT;
/// One in-flight optimistic transaction, in packed-word units.
pub const ACTIVE_ONE: u64 = 1 << ACTIVE_SHIFT;
const EPOCH_SHIFT: u64 = 19;

/// One level of the global phase lattice (ordered fastest to safest).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// HTM-analog fast path: aggressive attempts with a retry budget.
    Hw = 0,
    /// HASTM-aggressive: first attempt aggressive, retries cautious.
    Aggressive = 1,
    /// HASTM-cautious: every attempt cautious.
    Cautious = 2,
    /// Irrevocable serial execution under the global token.
    Serial = 3,
}

impl Phase {
    /// All phases, lattice order.
    pub const ALL: [Phase; 4] = [
        Phase::Hw,
        Phase::Aggressive,
        Phase::Cautious,
        Phase::Serial,
    ];

    /// Stable index (for per-phase counter arrays).
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Short label for tables and metrics.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Hw => "hw",
            Phase::Aggressive => "aggr",
            Phase::Cautious => "caut",
            Phase::Serial => "serial",
        }
    }

    /// Decodes the phase bits of a packed word.
    pub fn decode(word: u64) -> Phase {
        match word & PHASE_MASK {
            0 => Phase::Hw,
            1 => Phase::Aggressive,
            2 => Phase::Cautious,
            _ => Phase::Serial,
        }
    }

    /// One level down the lattice (toward `Serial`); saturates.
    pub fn demote(self) -> Phase {
        match self {
            Phase::Hw => Phase::Aggressive,
            Phase::Aggressive => Phase::Cautious,
            Phase::Cautious | Phase::Serial => Phase::Serial,
        }
    }

    /// One level up the lattice (toward `Hw`); saturates.
    pub fn promote(self) -> Phase {
        match self {
            Phase::Serial => Phase::Cautious,
            Phase::Cautious => Phase::Aggressive,
            Phase::Aggressive | Phase::Hw => Phase::Hw,
        }
    }

    /// The per-attempt [`Mode`] this phase prescribes. `Serial` has no
    /// barrier mode (the serial path bypasses barriers); it maps to
    /// cautious for descriptor-publication purposes.
    pub fn mode_for(self, attempt: u32, hw_retry_budget: u32) -> Mode {
        match self {
            Phase::Hw => {
                if attempt < hw_retry_budget.max(1) {
                    Mode::Aggressive
                } else {
                    Mode::Cautious
                }
            }
            Phase::Aggressive => {
                if attempt == 0 {
                    Mode::Aggressive
                } else {
                    Mode::Cautious
                }
            }
            Phase::Cautious | Phase::Serial => Mode::Cautious,
        }
    }
}

/// Tuning of [`crate::ModePolicy::Phased`]. All plain integers so the
/// policy stays `Copy`/`Eq` and shares cleanly with the native backend.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhasedParams {
    /// Consecutive interference events (capacity-classified aborts,
    /// conflict aborts, or dirty commits) before demoting one level.
    pub demote_after: u32,
    /// Consecutive clean commits before promoting one level.
    pub promote_after: u32,
    /// Minimum events between transitions (the hysteresis window): after
    /// any transition, at least this many commit/abort events must be
    /// observed before the next transition can publish.
    pub hysteresis: u32,
    /// Aggressive attempts the `Hw` phase grants before an attempt falls
    /// back to a cautious re-execution (clamped to ≥ 1).
    pub hw_retry_budget: u32,
}

impl Default for PhasedParams {
    fn default() -> Self {
        PhasedParams {
            demote_after: 4,
            promote_after: 8,
            hysteresis: 16,
            hw_retry_budget: 2,
        }
    }
}

/// A commit/abort outcome fed to the phase heuristics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PhaseEvent {
    /// An optimistic commit whose mark counter stayed clean.
    CleanCommit,
    /// An optimistic commit that needed a software validation.
    DirtyCommit,
    /// An abort classified as capacity pressure (evictions,
    /// back-invalidations — the "spurious" HTM analog).
    CapacityAbort,
    /// An abort classified as a true data conflict.
    ConflictAbort,
    /// A committed serial (irrevocable) transaction.
    SerialCommit,
}

impl PhaseEvent {
    fn is_bad(self) -> bool {
        matches!(
            self,
            PhaseEvent::DirtyCommit | PhaseEvent::CapacityAbort | PhaseEvent::ConflictAbort
        )
    }
}

/// Heuristic state behind the transitions, serialized by a host mutex.
/// On the simulator backend the mutex is uncontended by construction
/// (every `on_event` runs inside one gated op); on the native backend it
/// is a real, short critical section.
#[derive(Debug, Default)]
struct Heur {
    streak_bad: u32,
    streak_good: u32,
    since_transition: u32,
}

/// The scheme-wide shared phase state (the `SharedModeState` seam): one
/// per [`crate::StmRuntime`] (and one per native runtime), created only
/// under [`crate::ModePolicy::Phased`].
#[derive(Debug)]
pub struct SharedModeState {
    params: PhasedParams,
    /// The packed phase word (see module docs for the layout).
    word: AtomicU64,
    /// Serial-execution token: 0 when free, else the holder's nonzero id.
    serial_token: AtomicU64,
    heur: Mutex<Heur>,
}

impl SharedModeState {
    /// Fresh state in [`Phase::Hw`] with zero active transactions.
    pub fn new(params: PhasedParams) -> Self {
        SharedModeState {
            params,
            word: AtomicU64::new(Phase::Hw as u64),
            serial_token: AtomicU64::new(0),
            heur: Mutex::new(Heur::default()),
        }
    }

    /// The configured tuning.
    pub fn params(&self) -> PhasedParams {
        self.params
    }

    /// The raw packed word (one load — callers on the simulator backend
    /// wrap this in a gated op).
    pub fn word(&self) -> u64 {
        self.word.load(SeqCst)
    }

    /// The published phase.
    pub fn phase(&self) -> Phase {
        Phase::decode(self.word())
    }

    /// In-flight optimistic transactions encoded in `word`.
    pub fn active_count(word: u64) -> u64 {
        (word & ACTIVE_MASK) >> ACTIVE_SHIFT
    }

    /// Publication epoch encoded in `word`.
    pub fn epoch(word: u64) -> u64 {
        word >> EPOCH_SHIFT
    }

    /// One optimistic-entry CAS: tries to move the word from `expected`
    /// to "`seen`'s phase, `expected`'s epoch, active + 1". In the
    /// correct protocol `seen == expected` and this is a plain counted
    /// entry; under the seeded mutation `seen` may carry stale phase bits
    /// (see [`refresh_view`]) and a success then *overwrites* a phase
    /// publication that raced in — the planted lost-transition bug.
    ///
    /// # Errors
    ///
    /// Returns the freshly observed word when the CAS loses.
    pub fn cas_enter(&self, expected: u64, seen: u64) -> Result<Phase, u64> {
        let target = ((expected & !PHASE_MASK) | (seen & PHASE_MASK)) + ACTIVE_ONE;
        match self.word.compare_exchange(expected, target, SeqCst, SeqCst) {
            Ok(_) => Ok(Phase::decode(seen)),
            Err(cur) => Err(cur),
        }
    }

    /// Retires one optimistic transaction (commit or abort).
    pub fn exit_optimistic(&self) {
        let prev = self.word.fetch_sub(ACTIVE_ONE, SeqCst);
        debug_assert!(
            Self::active_count(prev) > 0,
            "optimistic exit without a matching entry"
        );
    }

    /// Tries to take the serial token for holder `id` (nonzero).
    pub fn try_acquire_token(&self, id: u64) -> bool {
        debug_assert_ne!(id, 0, "token holder id must be nonzero");
        self.serial_token
            .compare_exchange(0, id, SeqCst, SeqCst)
            .is_ok()
    }

    /// Releases the serial token held by `id`.
    pub fn release_token(&self, id: u64) {
        let prev = self.serial_token.swap(0, SeqCst);
        debug_assert_eq!(prev, id, "token released by a non-holder");
    }

    /// Current token holder id (0 when free). Diagnostics and tests.
    pub fn token_holder(&self) -> u64 {
        self.serial_token.load(SeqCst)
    }

    /// Publishes `to` as the new phase (epoch + 1, active count
    /// preserved). Returns `false` if the phase already equals `to`.
    fn publish_phase(&self, to: Phase) -> bool {
        loop {
            let w = self.word.load(SeqCst);
            if Phase::decode(w) == to {
                return false;
            }
            let epoch = Self::epoch(w) + 1;
            let new = (epoch << EPOCH_SHIFT) | (w & ACTIVE_MASK) | to as u64;
            if self.word.compare_exchange(w, new, SeqCst, SeqCst).is_ok() {
                return true;
            }
        }
    }

    /// Feeds one transaction outcome to the transition heuristics,
    /// possibly publishing a phase change. Returns the `(from, to)` pair
    /// when a transition was performed by this call.
    ///
    /// Rules (checked against the reference model by
    /// `tests/phase_props.rs`):
    ///
    /// * streaks: a bad event (dirty commit, capacity or conflict abort)
    ///   extends `streak_bad` and zeroes `streak_good`; clean and serial
    ///   commits do the reverse;
    /// * hysteresis: no transition until `hysteresis` events have been
    ///   observed since the last one;
    /// * demotion: `streak_bad >= demote_after` moves one level down;
    /// * promotion: `streak_good >= promote_after` moves one level up —
    ///   but out of [`Phase::Serial`] only *serial* commits count, so a
    ///   straggling optimistic commit cannot reopen the phase while the
    ///   token holder believes it is alone.
    pub fn on_event(&self, ev: PhaseEvent) -> Option<(Phase, Phase)> {
        let mut h = self.heur.lock().unwrap();
        h.since_transition = h.since_transition.saturating_add(1);
        if ev.is_bad() {
            h.streak_bad = h.streak_bad.saturating_add(1);
            h.streak_good = 0;
        } else {
            h.streak_good = h.streak_good.saturating_add(1);
            h.streak_bad = 0;
        }
        if h.since_transition < self.params.hysteresis {
            return None;
        }
        let cur = self.phase();
        let next = if cur == Phase::Serial {
            // Only the token holder's own commits can reopen the scheme.
            (ev == PhaseEvent::SerialCommit && h.streak_good >= self.params.promote_after)
                .then(|| cur.promote())
        } else if h.streak_bad >= self.params.demote_after {
            Some(cur.demote())
        } else if h.streak_good >= self.params.promote_after && cur != Phase::Hw {
            Some(cur.promote())
        } else {
            None
        };
        let next = next.filter(|&n| n != cur)?;
        if !self.publish_phase(next) {
            return None;
        }
        h.since_transition = 0;
        h.streak_bad = 0;
        h.streak_good = 0;
        Some((cur, next))
    }
}

/// The view of the phase word an entry loop should retry against after a
/// failed CAS. Correct behavior: adopt the freshly observed `cur`
/// wholesale (any concurrent phase publication is re-examined). Under the
/// `phase-seeded-bug` mutation the stale phase bits of `seen` survive the
/// refresh — the retry then drops a concurrent publication on the floor.
#[inline]
pub fn refresh_view(seen: u64, cur: u64) -> u64 {
    if PHASE_RECHECK {
        cur
    } else {
        (cur & !PHASE_MASK) | (seen & PHASE_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(demote: u32, promote: u32, hyst: u32) -> PhasedParams {
        PhasedParams {
            demote_after: demote,
            promote_after: promote,
            hysteresis: hyst,
            hw_retry_budget: 2,
        }
    }

    #[test]
    fn word_encoding_round_trips() {
        for p in Phase::ALL {
            assert_eq!(Phase::decode(p as u64), p);
            assert_eq!(Phase::ALL[p.idx()], p);
        }
        let s = SharedModeState::new(PhasedParams::default());
        assert_eq!(s.phase(), Phase::Hw);
        assert_eq!(SharedModeState::active_count(s.word()), 0);
        assert_eq!(SharedModeState::epoch(s.word()), 0);
    }

    #[test]
    fn lattice_moves_one_level_and_saturates() {
        assert_eq!(Phase::Hw.demote(), Phase::Aggressive);
        assert_eq!(Phase::Aggressive.demote(), Phase::Cautious);
        assert_eq!(Phase::Cautious.demote(), Phase::Serial);
        assert_eq!(Phase::Serial.demote(), Phase::Serial);
        assert_eq!(Phase::Serial.promote(), Phase::Cautious);
        assert_eq!(Phase::Hw.promote(), Phase::Hw);
    }

    #[test]
    fn mode_mapping_honors_the_hw_retry_budget() {
        assert_eq!(Phase::Hw.mode_for(0, 2), Mode::Aggressive);
        assert_eq!(Phase::Hw.mode_for(1, 2), Mode::Aggressive);
        assert_eq!(Phase::Hw.mode_for(2, 2), Mode::Cautious);
        assert_eq!(Phase::Hw.mode_for(0, 0), Mode::Aggressive, "budget clamps to 1");
        assert_eq!(Phase::Hw.mode_for(1, 0), Mode::Cautious);
        assert_eq!(Phase::Aggressive.mode_for(0, 2), Mode::Aggressive);
        assert_eq!(Phase::Aggressive.mode_for(1, 2), Mode::Cautious);
        assert_eq!(Phase::Cautious.mode_for(0, 2), Mode::Cautious);
        assert_eq!(Phase::Serial.mode_for(0, 2), Mode::Cautious);
    }

    #[test]
    fn optimistic_entry_counts_and_drains() {
        let s = SharedModeState::new(PhasedParams::default());
        let w = s.word();
        assert_eq!(s.cas_enter(w, w), Ok(Phase::Hw));
        let w = s.word();
        assert_eq!(SharedModeState::active_count(w), 1);
        assert_eq!(s.cas_enter(w, w), Ok(Phase::Hw));
        assert_eq!(SharedModeState::active_count(s.word()), 2);
        s.exit_optimistic();
        s.exit_optimistic();
        assert_eq!(SharedModeState::active_count(s.word()), 0);
    }

    #[test]
    fn stale_entry_cas_loses_and_refresh_reexamines_the_phase() {
        let s = SharedModeState::new(PhasedParams::default());
        let stale = s.word();
        assert!(s.publish_phase(Phase::Serial), "publication moves the word");
        let err = s.cas_enter(stale, stale).unwrap_err();
        assert_eq!(Phase::decode(err), Phase::Serial);
        // The correct refresh adopts the published phase.
        #[cfg(not(feature = "phase-seeded-bug"))]
        assert_eq!(Phase::decode(refresh_view(stale, err)), Phase::Serial);
    }

    #[test]
    fn serial_token_is_exclusive() {
        let s = SharedModeState::new(PhasedParams::default());
        assert!(s.try_acquire_token(7));
        assert!(!s.try_acquire_token(9), "held token rejects a second holder");
        assert_eq!(s.token_holder(), 7);
        s.release_token(7);
        assert!(s.try_acquire_token(9));
        s.release_token(9);
    }

    #[test]
    fn bad_streak_demotes_one_level_after_hysteresis() {
        let s = SharedModeState::new(params(3, 8, 5));
        // Four bad events: streak reaches demote_after but hysteresis (5)
        // is not yet satisfied.
        for _ in 0..4 {
            assert_eq!(s.on_event(PhaseEvent::CapacityAbort), None);
        }
        assert_eq!(
            s.on_event(PhaseEvent::CapacityAbort),
            Some((Phase::Hw, Phase::Aggressive)),
            "fifth event satisfies hysteresis with the streak intact"
        );
        assert_eq!(s.phase(), Phase::Aggressive);
        // The transition reset the streaks; the next demotion needs a
        // fresh hysteresis window.
        for _ in 0..4 {
            assert_eq!(s.on_event(PhaseEvent::ConflictAbort), None);
        }
        assert_eq!(
            s.on_event(PhaseEvent::ConflictAbort),
            Some((Phase::Aggressive, Phase::Cautious))
        );
    }

    #[test]
    fn clean_streak_recovers_all_the_way_to_hw() {
        let s = SharedModeState::new(params(2, 3, 3));
        // Drive down to Serial.
        while s.phase() != Phase::Serial {
            s.on_event(PhaseEvent::ConflictAbort);
        }
        // Optimistic stragglers cannot reopen a serial phase.
        for _ in 0..20 {
            assert_eq!(s.on_event(PhaseEvent::CleanCommit), None);
        }
        assert_eq!(s.phase(), Phase::Serial);
        // Serial commits promote, one level per hysteresis window.
        while s.phase() != Phase::Hw {
            let before = s.phase();
            let mut moved = false;
            for _ in 0..8 {
                if let Some((from, to)) = s.on_event(PhaseEvent::SerialCommit) {
                    assert_eq!(from, before);
                    assert_eq!(to, before.promote(), "single-level move");
                    moved = true;
                    break;
                }
            }
            assert!(moved, "quiescence must eventually promote out of {before:?}");
        }
    }

    #[test]
    fn publication_preserves_the_active_count() {
        let s = SharedModeState::new(PhasedParams::default());
        let w = s.word();
        s.cas_enter(w, w).unwrap();
        assert!(s.publish_phase(Phase::Aggressive));
        let w = s.word();
        assert_eq!(SharedModeState::active_count(w), 1);
        assert_eq!(SharedModeState::epoch(w), 1);
        assert_eq!(Phase::decode(w), Phase::Aggressive);
    }
}
