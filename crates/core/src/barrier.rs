//! Read and write barriers: the paper's inlined code sequences, charged
//! instruction-by-instruction against the simulator.
//!
//! | sequence | paper | fast path | slow path |
//! |---|---|---|---|
//! | STM read barrier (object) | Fig. 4 | 12 instructions | contention/overflow |
//! | HASTM cautious read (object) | Fig. 5 | **2** instructions | ~14 |
//! | HASTM cautious read (cache line) | Fig. 7 | **2** instructions (includes the data load) | ~16 |
//! | HASTM aggressive read (object) | Fig. 8 | 2 | 7 |
//! | HASTM aggressive read (cache line) | Fig. 9 | 2 | ~9 |
//! | STM/HASTM write barrier | Fig. 3 | CAS + logging | contention |
//!
//! The aggressive-mode sequences are the cautious ones plus a mode test
//! that skips read-set logging; the cache-line sequences fold the data load
//! into the barrier (`loadtestmark_granularity64` both loads the datum and
//! tests its line's marks).

use hastm_sim::Addr;

use crate::config::{Abort, BarrierKind, ContentionPolicy, Granularity, Mode, TxResult};
use crate::log::{ReadEntry, UndoEntry, WriteEntry};
use crate::record::RecValue;
use crate::runtime::ObjRef;
use crate::stats::Category;
use crate::txn::TxThread;

/// Descriptor offset of the mode word (must match `txn.rs`).
const DESC_MODE: u64 = 32;

impl TxThread<'_, '_> {
    // ------------------------------------------------------------------
    // Contention management
    // ------------------------------------------------------------------

    /// The paper's `handleContention`: waits (policy-dependent) for an
    /// owned record to return to the shared state and yields its version,
    /// or aborts the transaction.
    pub(crate) fn handle_contention(&mut self, rec: Addr) -> TxResult<RecValue> {
        self.stats.contention_encounters += 1;
        let policy = self.runtime.config().contention;
        let max_probes = match policy {
            ContentionPolicy::Suicide => 0,
            ContentionPolicy::Backoff { max_probes } => max_probes,
        };
        let t0 = self.cpu.now();
        let mut result = Err(Abort::Conflict);
        for probe in 0..max_probes {
            // Exponential backoff with jitter before re-probing.
            let base = 16u64 << probe.min(8);
            let jitter = self.next_rand() % base.max(1);
            self.cpu.tick(base + jitter);
            let v = RecValue(self.cpu.load_u64(rec));
            self.cpu.exec(2);
            if v.is_version() {
                result = Ok(v);
                break;
            }
        }
        let dt = self.cpu.now() - t0;
        self.attribute(Category::Contention, dt);
        result
    }

    // ------------------------------------------------------------------
    // Read barriers
    // ------------------------------------------------------------------

    /// Base STM read barrier on a transaction record (Figure 4). The datum
    /// itself is loaded separately by the caller.
    pub(crate) fn stm_read_barrier(&mut self, rec: Addr) -> TxResult<()> {
        let v = RecValue(self.cpu.load_u64(rec)); // mov eax,[rec]
        self.cpu.exec(2); // cmp txndesc + jeq
        if v.is_owned() && v.owner() == self.desc {
            return Ok(()); // exclusive; nothing to log
        }
        self.cpu.tick(2); // test versionmask + jz
        let v = if v.is_version() {
            v
        } else {
            self.handle_contention(rec)?
        };
        self.log_read(rec, v);
        self.stats.read_slow_path += 1;
        Ok(())
    }

    /// HASTM read barrier on a transaction record, object granularity
    /// (Figure 5 cautious / Figure 8 aggressive).
    pub(crate) fn hastm_read_barrier_obj(&mut self, rec: Addr) -> TxResult<()> {
        let no_reuse = self.runtime.config().no_reuse;
        if !no_reuse {
            let (_, marked) = self.cpu.load_test_mark_u64(rec); // loadtestmark
            self.cpu.exec(1); // jnae done
            self.cpu.mark_branch_penalty();
            if marked {
                // 2-instruction fast path: this transaction already marked
                // (and therefore logged or owns) the record, and the line
                // was never invalidated since.
                self.stats.read_fast_path += 1;
                return Ok(());
            }
        }
        let v = RecValue(self.cpu.load_set_mark_u64(rec)); // loadsetmark
        self.cpu.exec(2); // test versionmask + jz
        let v = if v.is_version() {
            v
        } else if v.owner() == self.desc {
            self.cpu.exec(1); // contentionOrRecursion: recursion case
            self.stats.read_slow_path += 1;
            return Ok(());
        } else {
            match self.handle_contention(rec) {
                Ok(v) => v,
                Err(cause) => {
                    // The loadsetmark above already marked the record, but
                    // nothing was logged: clear the mark, or a partial
                    // rollback followed by a retry would trust the filter
                    // fast path on a record this transaction never
                    // validated ("marked => logged or owned" would break).
                    self.cpu.load_reset_mark_u64(rec);
                    return Err(cause);
                }
            }
        };
        self.stats.read_slow_path += 1;
        // Aggressive mode skips read-set logging (Figure 8): the marked
        // line plus the mark counter *are* the read set.
        self.cpu.load_u64(self.desc.offset(DESC_MODE)); // test [txndesc+mode]
        self.cpu.exec(1); // jnz done
        if self.mode == Mode::Aggressive {
            self.stats.reads_unlogged += 1;
            return Ok(());
        }
        self.log_read(rec, v);
        Ok(())
    }

    /// HASTM combined read barrier + data load, cache-line granularity
    /// (Figure 7 cautious / Figure 9 aggressive). Returns the loaded word.
    pub(crate) fn hastm_read_cacheline(&mut self, addr: Addr) -> TxResult<u64> {
        let no_reuse = self.runtime.config().no_reuse;
        if !no_reuse {
            let (data, marked) = self.cpu.load_test_mark_line(addr); // loadtestmark_g64
            self.cpu.exec(1); // jnae complete
            self.cpu.mark_branch_penalty();
            if marked {
                // 2 instructions total, and the load itself already
                // happened: barrier cost fully eliminated.
                self.stats.read_fast_path += 1;
                return Ok(data);
            }
        }
        self.cpu.exec(3); // mov/and/add: hash address into record table
        let rec = self.runtime.rec_table().record_for(addr);
        // Both modes mark the record line (Figure 9 shows it for
        // aggressive; cautious needs it for the clean-counter commit to be
        // sound). The version check below and the marked data load at the
        // end are two instructions apart: a writer that acquires `rec` in
        // that window and stores in place would hand us its dirty datum
        // while our logged version stays valid-looking — if it then rolls
        // back, no version comparison can ever tell. Marking `rec` closes
        // the window: that acquire invalidates our marked record line,
        // dirties the counter, and commit falls into the software walk,
        // which sees the record owned (or re-released at a bumped version)
        // and aborts us.
        let v = RecValue(self.cpu.load_set_mark_line(rec));
        self.cpu.tick(2); // test versionmask + jz
        let v = if v.is_version() {
            v
        } else if v.owner() == self.desc {
            // Recursion: we own the line; just load the datum.
            self.cpu.exec(1);
            self.stats.read_slow_path += 1;
            return Ok(self.cpu.load_u64(addr));
        } else {
            self.handle_contention(rec)?
        };
        self.stats.read_slow_path += 1;
        self.cpu.load_u64(self.desc.offset(DESC_MODE)); // mode test
        self.cpu.exec(1);
        if self.mode != Mode::Aggressive {
            self.log_read(rec, v);
        } else {
            self.stats.reads_unlogged += 1;
        }
        // loadsetmark_granularity64 eax,[addr]: load the datum and mark its
        // line so subsequent reads of the line take the fast path.
        let data = self.cpu.load_set_mark_line(addr);
        Ok(data)
    }

    /// Appends to the read set: host entry plus the simulated log traffic.
    fn log_read(&mut self, rec: Addr, version: RecValue) {
        self.read_set.push(ReadEntry { rec, version });
        let heap = self.runtime.heap().clone();
        self.rd_region.append(self.cpu, &heap, &[rec.0, version.0]);
    }

    // ------------------------------------------------------------------
    // Write barrier
    // ------------------------------------------------------------------

    /// Write barrier on a transaction record (Figure 3): acquires exclusive
    /// ownership via CAS and logs the previous version. Under HASTM the
    /// record is additionally marked so subsequent read barriers take the
    /// fast path (§5). With [`crate::StmConfig::filter_writes`], a second
    /// mark filter turns repeat acquisitions into a 2-instruction fast path
    /// (the §5 "filter STM write barrier" extension).
    pub(crate) fn write_barrier(&mut self, rec: Addr) -> TxResult<()> {
        if self.runtime.config().filter_writes && self.hastm() {
            let (_, marked) = self
                .cpu
                .load_test_mark_u64_f(hastm_sim::FilterId::WRITE, rec);
            self.cpu.exec(1); // branch
            self.cpu.mark_branch_penalty();
            if marked {
                // Write-filter invariant: marked in the WRITE filter =>
                // this transaction already owns the record.
                self.stats.write_fast_path += 1;
                return Ok(());
            }
        }
        let v = RecValue(self.cpu.load_u64(rec));
        self.cpu.exec(2); // cmp txndesc + jeq
        if v.is_owned() && v.owner() == self.desc {
            return Ok(());
        }
        self.cpu.tick(2); // test versionmask + jz
        let mut v = if v.is_version() {
            v
        } else {
            self.handle_contention(rec)?
        };
        loop {
            let old = self.cpu.cas_u64(rec, v.0, self.desc.0);
            self.cpu.exec(1);
            if old == v.0 {
                break;
            }
            let cur = RecValue(old);
            v = if cur.is_version() {
                cur
            } else {
                self.handle_contention(rec)?
            };
        }
        if self.runtime.config().barrier == BarrierKind::Hastm {
            // Mark the now-owned record: reads-after-write filter out.
            self.cpu.load_set_mark_u64(rec);
            self.cpu.exec(1);
            if self.runtime.config().filter_writes {
                // And mark it in the write filter: writes-after-write too.
                self.cpu
                    .load_set_mark_u64_f(hastm_sim::FilterId::WRITE, rec);
            }
        }
        self.owned.insert(rec, self.write_set.len());
        self.write_set.push(WriteEntry { rec, prev: v });
        let heap = self.runtime.heap().clone();
        self.wr_region.append(self.cpu, &heap, &[rec.0, v.0]);
        self.check_ownership("write_barrier");
        Ok(())
    }

    /// Undo-logs the current value of `addr` (with GC metadata) before an
    /// in-place update.
    pub(crate) fn log_undo(&mut self, addr: Addr, meta: u64) {
        let old = self.cpu.load_u64(addr);
        self.undo_log.push(UndoEntry { addr, old, meta });
        let heap = self.runtime.heap().clone();
        self.undo_region
            .append(self.cpu, &heap, &[addr.0, old, meta]);
    }

    // ------------------------------------------------------------------
    // Public data access
    // ------------------------------------------------------------------

    /// The record guarding `addr` for an object rooted at `obj`.
    fn record_of(&self, obj: ObjRef, addr: Addr) -> Addr {
        match self.runtime.config().granularity {
            Granularity::Object => obj.header(),
            Granularity::CacheLine => self.runtime.rec_table().record_for(addr),
        }
    }

    /// Transactionally reads data word `index` of `obj`.
    ///
    /// # Errors
    ///
    /// Propagates the abort cause on conflict (the enclosing
    /// [`TxThread::atomic`] loop rolls back and retries).
    ///
    /// # Panics
    ///
    /// Panics (debug) if no transaction is active.
    pub fn read_word(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        debug_assert!(self.is_active(), "read outside a transaction");
        if self.serial {
            return Ok(self.serial_read(obj.word(index)));
        }
        if self.is_snapshot() {
            return self.snapshot_read_word(obj, index);
        }
        let addr = obj.word(index);

        self.attribute(Category::TlsAccess, 1);
        self.cpu.exec(1); // gettxndesc (TLS access)
        let cfg = (
            self.runtime.config().barrier,
            self.runtime.config().granularity,
        );
        let value = match cfg {
            (BarrierKind::Hastm, Granularity::CacheLine) => {
                let v = self.timed(Category::ReadBarrier, |t| t.hastm_read_cacheline(addr))?;
                self.maybe_validate()?;
                v
            }
            (BarrierKind::Hastm, Granularity::Object) => {
                self.timed(Category::ReadBarrier, |t| {
                    t.hastm_read_barrier_obj(obj.header())
                })?;
                self.maybe_validate()?;
                self.cpu.load_u64(addr)
            }
            (BarrierKind::Stm, g) => {
                let rec = match g {
                    Granularity::Object => obj.header(),
                    Granularity::CacheLine => {
                        self.cpu.exec(3); // hash sequence
                        self.runtime.rec_table().record_for(addr)
                    }
                };
                self.timed(Category::ReadBarrier, |t| t.stm_read_barrier(rec))?;
                self.maybe_validate()?;
                self.cpu.load_u64(addr)
            }
        };
        self.oracle.note_read(addr, value);
        Ok(value)
    }

    /// Wait-free snapshot read for a declared read-only transaction under
    /// [`crate::Versioning::Multi`]: no record access, no read logging, no
    /// validation. The value is the newest committed version with stamp ≤
    /// the transaction's start stamp, straight from the word's version
    /// ring — or memory itself for words with no ring: a ring is seeded
    /// with the committed pre-image *before* any eager in-place store, so
    /// a ring miss implies the word was never transactionally stored to
    /// and memory still holds its only committed value.
    fn snapshot_read_word(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        let addr = obj.word(index);
        self.attribute(Category::TlsAccess, 1);
        self.cpu.exec(1); // gettxndesc
        let store = self
            .runtime
            .version_store()
            .expect("snapshot read without a version store");
        let start = self.ro_start;
        let value = self.timed(Category::ReadBarrier, |t| {
            let mem = t.cpu.load_u64(addr); // the data load (ring-miss value)
            // Ring probe (hash, bound check, select), gated so its order
            // against concurrent stamp publications is the deterministic
            // admission order rather than a host-lock race.
            t.cpu
                .exec_sync(3, || store.snapshot_read(addr.0, start))
                .unwrap_or(mem)
        });
        self.stats.snapshot_reads += 1;
        self.oracle.note_read(addr, value);
        Ok(value)
    }

    /// Irrevocable serial-phase read: the token holder is alone, so the
    /// plain load *is* the committed value — no record access, no read
    /// logging, no validation (the barrier collapses to the bare load).
    fn serial_read(&mut self, addr: Addr) -> u64 {
        let value = self.timed(Category::ReadBarrier, |t| t.cpu.load_u64(addr));
        self.stats.reads_unlogged += 1;
        self.oracle.note_read(addr, value);
        value
    }

    /// Irrevocable serial-phase write: direct store with an undo entry
    /// (user-initiated aborts must still roll back), no record
    /// acquisition and no version bump — by exclusivity no optimistic
    /// reader can be validating against this word concurrently.
    fn serial_write(&mut self, addr: Addr, value: u64, meta: u64) {
        self.timed(Category::WriteBarrier, |t| t.log_undo(addr, meta));
        if let Some(store) = self.runtime.version_store() {
            // Keep snapshot history exact across the serial phase: seed
            // the pre-image so the commit-time publication stamps this
            // word's final value (see `commit_serial`).
            store.seed(addr.0, self.cpu.peek_u64(addr));
        }
        self.oracle.note_write(addr);
        self.cpu.store_u64(addr, value);
    }

    /// Transactionally writes data word `index` of `obj` (eager, in-place,
    /// undo-logged).
    ///
    /// # Errors
    ///
    /// Propagates the abort cause on conflict.
    pub fn write_word(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        self.write_word_meta(obj, index, value, 0)
    }

    /// [`TxThread::write_word`] with an explicit GC-metadata tag for the
    /// undo entry (e.g. "this slot holds a reference").
    pub fn write_word_meta(
        &mut self,
        obj: ObjRef,
        index: u32,
        value: u64,
        meta: u64,
    ) -> TxResult<()> {
        debug_assert!(self.is_active(), "write outside a transaction");
        assert!(
            !self.is_snapshot(),
            "transactional write inside a read-only (snapshot) transaction"
        );
        if self.serial {
            self.serial_write(obj.word(index), value, meta);
            return Ok(());
        }
        let addr = obj.word(index);
        self.attribute(Category::TlsAccess, 1);
        self.cpu.exec(1); // gettxndesc
        if self.runtime.config().granularity == Granularity::CacheLine {
            self.cpu.exec(3); // hash sequence
        }
        let rec = self.record_of(obj, addr);
        let filter_writes = self.runtime.config().filter_writes && self.hastm();
        self.timed(Category::WriteBarrier, |t| {
            t.write_barrier(rec)?;
            if filter_writes {
                // Undo-log elision (§5 extension): a word already undo-
                // logged within the innermost nesting scope needs no second
                // entry — rollback restores the oldest value anyway.
                t.cpu.exec(1); // filter probe
                let scope_base = t.savepoints.last().map_or(0, |sp| sp.undos);
                if t.undo_logged.get(&addr).is_some_and(|&i| i >= scope_base) {
                    t.stats.undo_elided += 1;
                    return Ok(());
                }
                t.undo_logged.insert(addr, t.undo_log.len());
            }
            t.log_undo(addr, meta);
            Ok(())
        })?;
        if let Some(store) = self.runtime.version_store() {
            // Seed the ring with the committed pre-image before the eager
            // in-place store: from here until commit (publication) or
            // rollback, memory holds a dirty value, and concurrent
            // snapshot readers must resolve this word from its ring. The
            // record is owned (2PL), so memory still holds a committed
            // value unless this transaction already dirtied it — in which
            // case the ring exists (the first write seeded it) and the
            // seed is a no-op. Host-side bookkeeping, no simulated cost.
            store.seed(addr.0, self.cpu.peek_u64(addr));
        }
        self.oracle.note_write(addr);
        self.cpu.store_u64(addr, value);
        Ok(())
    }

    /// Transactionally reads a raw word (cache-line granularity only; used
    /// by the synthetic kernels that model unmanaged C/C++ critical
    /// sections).
    ///
    /// # Errors
    ///
    /// Propagates the abort cause on conflict.
    ///
    /// # Panics
    ///
    /// Panics under [`Granularity::Object`], which requires object roots.
    pub fn read_raw(&mut self, addr: Addr) -> TxResult<u64> {
        assert_eq!(
            self.runtime.config().granularity,
            Granularity::CacheLine,
            "read_raw requires cache-line granularity"
        );
        self.read_word(ObjRef(Addr(addr.0 - 8)), 0)
    }

    /// Transactionally writes a raw word (cache-line granularity only).
    ///
    /// # Errors
    ///
    /// Propagates the abort cause on conflict.
    ///
    /// # Panics
    ///
    /// Panics under [`Granularity::Object`].
    pub fn write_raw(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        assert_eq!(
            self.runtime.config().granularity,
            Granularity::CacheLine,
            "write_raw requires cache-line granularity"
        );
        self.write_word(ObjRef(Addr(addr.0 - 8)), 0, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use crate::runtime::StmRuntime;
    use hastm_sim::{Machine, MachineConfig};

    fn setup(config: StmConfig) -> (Machine, StmRuntime) {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        (m, rt)
    }

    #[test]
    fn stm_read_logs_version() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.stm_read_barrier(o.header()).unwrap();
            assert_eq!(tx.read_set.len(), 1);
            assert_eq!(tx.read_set[0].version, RecValue::INITIAL);
            // Duplicate reads log duplicates (Figure 4 has no dedup).
            tx.stm_read_barrier(o.header()).unwrap();
            assert_eq!(tx.read_set.len(), 2);
            tx.commit().unwrap();
        });
    }

    #[test]
    fn hastm_obj_second_read_takes_fast_path() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            assert_eq!(tx.stats().read_slow_path, 1);
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            assert_eq!(tx.stats().read_fast_path, 1);
            // Only one read-set entry: the fast path skips logging.
            assert_eq!(tx.read_set.len(), 1);
            tx.commit().unwrap();
        });
    }

    #[test]
    fn hastm_fast_path_is_cheaper() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            let t0 = tx.cpu.now();
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            let slow = tx.cpu.now() - t0;
            let t1 = tx.cpu.now();
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            let fast = tx.cpu.now() - t1;
            assert!(
                fast * 3 <= slow,
                "fast path ({fast}) should be far cheaper than slow ({slow})"
            );
            tx.commit().unwrap();
        });
    }

    #[test]
    fn aggressive_mode_elides_read_logging() {
        let (mut m, rt) = setup(StmConfig::hastm(
            Granularity::Object,
            crate::config::ModePolicy::NaiveAggressive,
        ));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            assert_eq!(tx.mode(), Mode::Aggressive);
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            assert_eq!(tx.read_set.len(), 0, "no read log in aggressive mode");
            assert_eq!(tx.stats().reads_unlogged, 1);
            tx.commit().expect("clean counter commits");
            assert_eq!(tx.stats().aggressive_commits, 1);
        });
    }

    #[test]
    fn no_reuse_disables_fast_path_only() {
        let mut cfg = StmConfig::hastm_cautious(Granularity::Object);
        cfg.no_reuse = true;
        let (mut m, rt) = setup(cfg);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            tx.hastm_read_barrier_obj(o.header()).unwrap();
            assert_eq!(tx.stats().read_fast_path, 0);
            assert_eq!(tx.stats().read_slow_path, 2);
            // Validation elimination still works.
            tx.commit().unwrap();
            assert_eq!(tx.stats().validations_skipped, 1);
        });
    }

    #[test]
    fn write_barrier_acquires_and_releases() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::Object));
        let header = m
            .run_one(|cpu| {
                let mut tx = TxThread::new(&rt, cpu);
                let o = tx.alloc_obj(1);
                tx.begin(0);
                tx.write_barrier(o.header()).unwrap();
                assert_eq!(
                    RecValue(tx.cpu.load_u64(o.header())).owner(),
                    tx.desc,
                    "record owned during transaction"
                );
                // Idempotent re-acquisition.
                tx.write_barrier(o.header()).unwrap();
                assert_eq!(tx.write_set.len(), 1);
                tx.commit().unwrap();
                o.header()
            })
            .0;
        // Released with a bumped version: v1 -> v2 (raw 1 -> 3).
        assert_eq!(m.peek_u64(header), 3);
    }

    #[test]
    fn read_write_words_roundtrip_all_configs() {
        for cfg in [
            StmConfig::stm(Granularity::Object),
            StmConfig::stm(Granularity::CacheLine),
            StmConfig::hastm_cautious(Granularity::Object),
            StmConfig::hastm_cautious(Granularity::CacheLine),
            StmConfig::hastm(
                Granularity::Object,
                crate::config::ModePolicy::NaiveAggressive,
            ),
            StmConfig::hastm(
                Granularity::CacheLine,
                crate::config::ModePolicy::NaiveAggressive,
            ),
        ] {
            let label = format!("{cfg:?}");
            let (mut m, rt) = setup(cfg);
            let (v, _) = m.run_one(|cpu| {
                let mut tx = TxThread::new(&rt, cpu);
                let o = tx.alloc_obj(2);
                tx.begin(0);
                tx.write_word(o, 0, 123).unwrap();
                tx.write_word(o, 1, 456).unwrap();
                let a = tx.read_word(o, 0).unwrap();
                let b = tx.read_word(o, 1).unwrap();
                tx.commit().unwrap();
                a + b
            });
            assert_eq!(v, 579, "config {label}");
        }
    }

    #[test]
    fn cacheline_fast_path_covers_neighboring_words() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            // An object whose two words share one cache line.
            let o = tx.alloc_obj(2);
            assert_eq!(o.word(0).line(), o.word(1).line());
            tx.begin(0);
            tx.read_word(o, 0).unwrap();
            let slow = tx.stats().read_slow_path;
            tx.read_word(o, 1).unwrap();
            assert_eq!(tx.stats().read_slow_path, slow, "same line filters");
            assert_eq!(tx.stats().read_fast_path, 1);
            tx.commit().unwrap();
        });
    }

    #[test]
    fn undo_log_restores_on_abort() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.write_word(o, 0, 7).unwrap();
            tx.commit().unwrap();
            tx.begin(0);
            tx.write_word(o, 0, 9).unwrap();
            tx.abort(Abort::Explicit);
            tx.begin(0);
            let v = tx.read_word(o, 0).unwrap();
            tx.commit().unwrap();
            assert_eq!(v, 7, "aborted write rolled back");
        });
    }

    #[test]
    fn raw_access_requires_cacheline() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::CacheLine));
        let heap = rt.heap().clone();
        let cell = heap.alloc(16); // 16-aligned; +8 is the "raw" word
        let raw = cell.offset(8);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.begin(0);
            tx.write_raw(raw, 55).unwrap();
            let v = tx.read_raw(raw).unwrap();
            tx.commit().unwrap();
            assert_eq!(v, 55);
        });
    }
}
