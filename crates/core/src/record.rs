//! Transaction records (§4).
//!
//! A transaction record is one pointer-sized word associated with each
//! datum. It is either **shared** — holding an odd version number, allowing
//! any number of readers — or **exclusive** — holding the word-aligned
//! address of the owning transaction's descriptor (even, so the low bit
//! distinguishes the two states).
//!
//! The datum→record mapping is flexible:
//!
//! * **object granularity** (managed environments): the record is the
//!   object's header word;
//! * **cache-line granularity** (unmanaged environments): the datum's
//!   address hashes into a global table of 4096 records spaced one cache
//!   line apart, reproducing the paper's
//!   `and rec, 0x3ffc0; add rec, TxRecTableBase` sequence.

use hastm_sim::{Addr, SimHeap};

/// Mask extracting bits 6–17 of an address: the paper's record-table hash.
pub const REC_HASH_MASK: u64 = 0x3ffc0;
/// Number of records in the cache-line-granularity table.
pub const REC_TABLE_ENTRIES: u64 = (REC_HASH_MASK >> 6) + 1; // 4096
/// Size in bytes of the record table (records are 64-byte aligned to
/// prevent ping-ponging).
pub const REC_TABLE_BYTES: u64 = REC_TABLE_ENTRIES * 64;

/// The contents of a transaction record.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RecValue(pub u64);

impl RecValue {
    /// The initial version number of a fresh record.
    pub const INITIAL: RecValue = RecValue(1);

    /// Whether this value is a version number (shared state).
    #[inline]
    pub fn is_version(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this value is an owner pointer (exclusive state).
    #[inline]
    pub fn is_owned(self) -> bool {
        !self.is_version()
    }

    /// Interprets the value as the owner's descriptor address.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the record is in the shared state.
    #[inline]
    pub fn owner(self) -> Addr {
        debug_assert!(self.is_owned(), "record is shared");
        Addr(self.0)
    }

    /// A record value owning the datum on behalf of descriptor `desc`.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is not word-aligned (its low bit must be clear).
    #[inline]
    pub fn owned_by(desc: Addr) -> RecValue {
        assert!(desc.0 & 1 == 0 && !desc.is_null(), "bad descriptor address");
        RecValue(desc.0)
    }

    /// The next version after this one (still odd). Used when a committing
    /// or aborting owner releases the record.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the value is not a version.
    #[inline]
    pub fn bump(self) -> RecValue {
        debug_assert!(self.is_version());
        RecValue(self.0.wrapping_add(2) | 1)
    }
}

impl std::fmt::Display for RecValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_version() {
            write!(f, "v{}", self.0 >> 1)
        } else {
            write!(f, "owned by {:#x}", self.0)
        }
    }
}

/// The global cache-line-granularity record table.
#[derive(Copy, Clone, Debug)]
pub struct RecordTable {
    base: Addr,
}

impl RecordTable {
    /// Allocates the table from the simulated heap. The caller must
    /// initialize it with [`RecordTable::initial_values`] (typically via
    /// [`hastm_sim::Machine::poke_u64`] before the first run).
    pub fn alloc(heap: &SimHeap) -> Self {
        // 64-byte alignment so the extracted hash bits double as the offset,
        // exactly as in the paper's three-instruction sequence. The table
        // base must additionally be 256 KiB aligned so that
        // `base + (addr & REC_HASH_MASK)` never carries into unrelated bits.
        let base = heap.alloc_aligned(REC_TABLE_BYTES, REC_TABLE_BYTES.next_power_of_two());
        RecordTable { base }
    }

    /// The table's base address (the paper's `TxRecTableBase`).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The record covering `addr`: `TxRecTableBase + (addr & 0x3ffc0)`.
    #[inline]
    pub fn record_for(&self, addr: Addr) -> Addr {
        Addr(self.base.0 + (addr.0 & REC_HASH_MASK))
    }

    /// `(address, value)` pairs initializing every record to version 1.
    pub fn initial_values(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        (0..REC_TABLE_ENTRIES).map(move |i| (Addr(self.base.0 + i * 64), RecValue::INITIAL.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_encoding() {
        let v = RecValue::INITIAL;
        assert!(v.is_version());
        assert!(!v.is_owned());
        assert_eq!(v.bump().0, 3);
        assert!(v.bump().is_version());
    }

    #[test]
    fn owner_encoding() {
        let desc = Addr(0x4000_0040);
        let r = RecValue::owned_by(desc);
        assert!(r.is_owned());
        assert_eq!(r.owner(), desc);
    }

    #[test]
    #[should_panic(expected = "bad descriptor")]
    fn odd_descriptor_rejected() {
        let _ = RecValue::owned_by(Addr(0x41));
    }

    #[test]
    #[should_panic(expected = "bad descriptor")]
    fn null_descriptor_rejected() {
        let _ = RecValue::owned_by(Addr::NULL);
    }

    #[test]
    fn version_wraps_stay_odd() {
        let near_max = RecValue(u64::MAX); // odd
        assert!(near_max.is_version());
        assert!(near_max.bump().is_version());
    }

    #[test]
    fn table_hash_matches_paper() {
        let heap = {
            let m = hastm_sim::Machine::new(hastm_sim::MachineConfig::default());
            m.heap()
        };
        let t = RecordTable::alloc(&heap);
        // Same line -> same record.
        assert_eq!(t.record_for(Addr(0x12340)), t.record_for(Addr(0x12347)));
        // Bits 6..17 index; bit 18 aliases back onto the same entry.
        assert_eq!(t.record_for(Addr(0x0)), t.record_for(Addr(0x40000)));
        // Adjacent lines -> adjacent (64-byte spaced) records.
        let r0 = t.record_for(Addr(0x0));
        let r1 = t.record_for(Addr(0x40));
        assert_eq!(r1.0 - r0.0, 64);
        // Records are line-aligned (no ping-ponging).
        assert!(r0.is_aligned(64));
    }

    #[test]
    fn table_init_covers_all_entries() {
        let heap = {
            let m = hastm_sim::Machine::new(hastm_sim::MachineConfig::default());
            m.heap()
        };
        let t = RecordTable::alloc(&heap);
        let vals: Vec<_> = t.initial_values().collect();
        assert_eq!(vals.len(), REC_TABLE_ENTRIES as usize);
        assert!(vals.iter().all(|&(_, v)| RecValue(v).is_version()));
        assert_eq!(vals[0].0, t.base());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", RecValue(3)), "v1");
        let owned = RecValue::owned_by(Addr(0x80));
        assert_eq!(format!("{owned}"), "owned by 0x80");
    }
}
