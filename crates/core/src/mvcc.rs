//! Multi-version concurrency: the committed-version store backing
//! [`crate::config::Versioning::Multi`].
//!
//! Each transactionally written word gets a bounded ring of committed
//! `(stamp, value)` pairs, ordered by commit stamp. Commit stamps are
//! issued by a global counter *inside* the store lock, atomically with
//! publication, so a reader that captures `current_stamp()` as its start
//! stamp is guaranteed that every commit with stamp ≤ start is fully
//! published — the snapshot at `start` is closed.
//!
//! A ring is seeded with the pre-transactional image `(0, old)` the first
//! time its word is write-barriered (the STM is eager, so the pre-image is
//! exactly the undo-log `old` value — a committed value regardless of
//! whether the seeding writer later commits or aborts). Stamp 0 is older
//! than every possible start stamp, so *any address that ever had a ring
//! can serve any read-only transaction*: that, plus the reclamation
//! invariant below, is the structural "zero read-only aborts" guarantee.
//!
//! Reclamation (`prune`, called after each publication and from the GC
//! safepoint) drops `ring[0]` only while the ring is over its depth bound
//! *and* `ring[1].stamp ≤ floor`, where `floor` is the oldest live
//! read-only start stamp (`u64::MAX` when none are live). If
//! `ring[1].stamp ≤ floor`, every live and future reader resolves to index
//! ≥ 1, so `ring[0]` is unreachable. Rings may temporarily exceed their
//! depth while an old reader pins history; the newest entry is never
//! dropped.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Counters describing version traffic, drained into
/// [`crate::TxnStats`]-level reporting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionStoreStats {
    /// Versions published by committing writers (seeds excluded).
    pub published: u64,
    /// Versions reclaimed by pruning.
    pub reclaimed: u64,
    /// High-water mark of any single ring's length.
    pub max_ring_len: u64,
}

#[derive(Default)]
struct VersionStoreInner {
    /// `addr ->` ascending `(stamp, value)` ring.
    rings: HashMap<u64, Vec<(u64, u64)>>,
    /// Last issued commit stamp (0 = "before all transactions").
    stamp: u64,
    /// Live read-only start stamps (multiset: `stamp -> count`).
    live: BTreeMap<u64, usize>,
    stats: VersionStoreStats,
}

impl VersionStoreInner {
    fn floor(&self) -> u64 {
        self.live.keys().next().copied().unwrap_or(u64::MAX)
    }

    fn prune_ring(depth: usize, floor: u64, ring: &mut Vec<(u64, u64)>, stats: &mut VersionStoreStats) {
        while ring.len() > depth && ring[1].0 <= floor {
            ring.remove(0);
            stats.reclaimed += 1;
        }
        stats.max_ring_len = stats.max_ring_len.max(ring.len() as u64);
    }
}

/// Host-side committed-version store shared by every [`crate::TxThread`]
/// of one [`crate::StmRuntime`].
///
/// All operations are pure host bookkeeping (no simulated memory traffic):
/// under the cooperative simulator each call is atomic with respect to
/// every other simulated thread, which is exactly the atomicity the
/// protocol needs between stamp issue and publication.
pub struct VersionStore {
    depth: usize,
    inner: Mutex<VersionStoreInner>,
}

impl std::fmt::Debug for VersionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("VersionStore")
            .field("depth", &self.depth)
            .field("rings", &inner.rings.len())
            .field("stamp", &inner.stamp)
            .field("live_ro", &inner.live.len())
            .finish()
    }
}

impl VersionStore {
    /// A store retaining `depth` (≥ 1) versions per ring.
    pub fn new(depth: usize) -> Self {
        VersionStore {
            depth: depth.max(1),
            inner: Mutex::new(VersionStoreInner::default()),
        }
    }

    /// Configured ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The last issued commit stamp — the start stamp for a read-only
    /// transaction beginning now.
    pub fn current_stamp(&self) -> u64 {
        self.inner.lock().unwrap().stamp
    }

    /// Registers a live read-only transaction starting at `start`,
    /// pinning versions with stamp ≤ `start` against reclamation.
    pub fn register_ro(&self, start: u64) {
        *self.inner.lock().unwrap().live.entry(start).or_insert(0) += 1;
    }

    /// Deregisters a read-only transaction; its pinned history becomes
    /// reclaimable (lazily, at the next prune).
    pub fn deregister_ro(&self, start: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.live.get_mut(&start) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                inner.live.remove(&start);
            }
            None => debug_assert!(false, "deregistering an unregistered RO start {start}"),
        }
    }

    /// Seeds `addr`'s ring with the committed pre-image `(0, old)` if the
    /// ring does not exist yet. Called from the write barrier *before* the
    /// eager in-place store, where `old` is the undo-log value.
    pub fn seed(&self, addr: u64, old: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.rings.entry(addr).or_insert_with(|| vec![(0, old)]);
    }

    /// Issues the next commit stamp and publishes `writes` under it, in
    /// one atomic step. Later duplicates in `writes` win (program order of
    /// an eager writer). Returns the issued stamp.
    pub fn commit_publish(&self, writes: &[(u64, u64)]) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let floor = inner.floor();
        let VersionStoreInner { rings, stats, .. } = &mut *inner;
        for &(addr, value) in writes {
            let ring = rings.entry(addr).or_default();
            match ring.last_mut() {
                Some(last) if last.0 == stamp => last.1 = value,
                _ => {
                    ring.push((stamp, value));
                    stats.published += 1;
                }
            }
            VersionStoreInner::prune_ring(self.depth, floor, ring, stats);
        }
        stamp
    }

    /// Snapshot read: the value of the newest version of `addr` with
    /// stamp ≤ `start`, or `None` if `addr` has no ring (never
    /// transactionally written — memory itself is the committed value).
    pub fn snapshot_read(&self, addr: u64, start: u64) -> Option<u64> {
        // The planted `mvcc-seeded-bug` mutation admits one-too-new a
        // version: newest stamp ≤ start+1 instead of ≤ start. A read-only
        // scan racing a writer can then observe a torn (half-new)
        // snapshot, which the oracle's stamp journal and the differential
        // suites must catch.
        let start = if cfg!(feature = "mvcc-seeded-bug") {
            start.saturating_add(1)
        } else {
            start
        };
        let inner = self.inner.lock().unwrap();
        let ring = inner.rings.get(&addr)?;
        debug_assert!(!ring.is_empty());
        let idx = ring.partition_point(|&(stamp, _)| stamp <= start);
        // idx ≥ 1 always: under the reclamation invariant every retained
        // prefix is servable (ring[0].stamp ≤ any live start), and rings
        // are seeded at stamp 0.
        idx.checked_sub(1).map(|i| ring[i].1)
    }

    /// Prunes every ring against the current oldest live read-only start.
    /// Invoked from the GC safepoint so history pinned by a completed
    /// reader does not linger until the next commit touches its ring.
    pub fn prune_all(&self) {
        let mut inner = self.inner.lock().unwrap();
        let floor = inner.floor();
        let depth = self.depth;
        let VersionStoreInner { rings, stats, .. } = &mut *inner;
        for ring in rings.values_mut() {
            VersionStoreInner::prune_ring(depth, floor, ring, stats);
        }
    }

    /// Version-traffic counters.
    pub fn stats(&self) -> VersionStoreStats {
        self.inner.lock().unwrap().stats
    }

    /// Test/diagnostic view of one ring (stamps only).
    pub fn ring_stamps(&self, addr: u64) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap()
            .rings
            .get(&addr)
            .map(|r| r.iter().map(|&(s, _)| s).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_and_publication_is_atomic_with_issue() {
        let s = VersionStore::new(2);
        assert_eq!(s.current_stamp(), 0);
        let t1 = s.commit_publish(&[(8, 10)]);
        let t2 = s.commit_publish(&[(8, 20), (16, 5)]);
        assert_eq!((t1, t2), (1, 2));
        assert_eq!(s.snapshot_read(8, 1), Some(10));
        assert_eq!(s.snapshot_read(8, 2), Some(20));
        assert_eq!(s.snapshot_read(16, 1), None, "no ring before its seed");
        assert_eq!(s.snapshot_read(16, 2), Some(5));
    }

    #[test]
    fn seed_serves_reads_older_than_the_first_commit() {
        let s = VersionStore::new(3);
        s.seed(8, 111);
        let t = s.commit_publish(&[(8, 222)]);
        assert_eq!(s.snapshot_read(8, t - 1), Some(111));
        assert_eq!(s.snapshot_read(8, t), Some(222));
        // Re-seeding is a no-op once the ring exists.
        s.seed(8, 999);
        assert_eq!(s.snapshot_read(8, 0), Some(111));
    }

    #[test]
    fn duplicate_writes_in_one_commit_keep_the_last() {
        let s = VersionStore::new(4);
        let t = s.commit_publish(&[(8, 1), (8, 2), (8, 3)]);
        assert_eq!(s.snapshot_read(8, t), Some(3));
        assert_eq!(s.ring_stamps(8), vec![t]);
        assert_eq!(s.stats().published, 1);
    }

    #[test]
    fn pruning_respects_depth_and_live_readers() {
        let s = VersionStore::new(2);
        s.seed(8, 0);
        let t1 = s.commit_publish(&[(8, 1)]);
        s.register_ro(0); // pins the stamp-0 seed
        let _t2 = s.commit_publish(&[(8, 2)]);
        let t3 = s.commit_publish(&[(8, 3)]);
        // Ring over depth (4 > 2) but fully pinned by the start-0 reader:
        // dropping ring[0] would need ring[1].stamp (=t1) ≤ 0.
        assert_eq!(s.ring_stamps(8).len(), 4, "pinned history is retained");
        assert_eq!(s.snapshot_read(8, 0), Some(0));
        s.deregister_ro(0);
        s.prune_all();
        let stamps = s.ring_stamps(8);
        assert_eq!(stamps.len(), 2, "unpinned ring prunes to depth");
        assert_eq!(*stamps.last().unwrap(), t3, "newest survives");
        assert!(stamps[0] > t1 || stamps[0] == t1, "oldest entries dropped first");
        assert_eq!(s.stats().reclaimed, 2);
    }

    #[test]
    fn depth_one_keeps_only_the_newest_when_unpinned() {
        let s = VersionStore::new(1);
        s.seed(8, 7);
        let t1 = s.commit_publish(&[(8, 1)]);
        assert_eq!(s.ring_stamps(8), vec![t1], "seed reclaimed at depth 1");
        assert_eq!(s.snapshot_read(8, t1), Some(1));
    }

    #[cfg(not(feature = "mvcc-seeded-bug"))]
    #[test]
    fn snapshot_read_never_returns_a_too_new_version() {
        let s = VersionStore::new(8);
        s.register_ro(0);
        for i in 1..=6u64 {
            s.commit_publish(&[(8, i * 10)]);
        }
        for start in 1..=6u64 {
            assert_eq!(s.snapshot_read(8, start), Some(start * 10));
        }
        s.deregister_ro(0);
    }
}
