//! Serializability oracle: shadow read logging, a committed-write
//! journal, and the commit checks.
//!
//! The oracle shadows every transactional read at *data* granularity —
//! independent of the record table, the mark bits, and the barrier fast
//! paths — and verifies that each committed transaction was serializable.
//! The check has two parts with different soundness mechanics:
//!
//! * **Written addresses (inline, exact).** A read of an address the
//!   transaction later wrote must have seen the oldest undo entry's old
//!   value. Strict 2PL makes this race-free: from first write to release
//!   nobody else can touch the address, and a mismatch means memory
//!   changed between our read and our first write — a committed or dirty
//!   remote write our validation failed to catch. Checked in
//!   [`Oracle::commit_evidence`] at commit, before the locks drop.
//!
//! * **Read-only addresses (deferred, journal-based).** Comparing a
//!   read-only address against *current* memory at commit is unsound: a
//!   concurrent transaction may legally commit to it between our
//!   validation and any later inspection (in host time the two race; in
//!   simulated time the gate admits cores whose clocks lie inside our
//!   validation's cycle window). The seed's `HASTM_PARANOIA` checker had
//!   exactly this bug and fired on legal histories. Instead, every commit
//!   appends its write set's `(old, new)` transitions to a shared
//!   journal, stamped with the simulated clock *while the 2PL locks are
//!   still held*, and every commit's remaining reads become an
//!   [`Obligation`]. After the run quiesces, [`OracleLog::verify`] checks
//!   each obligation for a **serialization point**: some instant `t`
//!   inside the transaction's lifetime at which every non-own-write read
//!   matches the committed value of its address. Dirty reads (values no
//!   commit ever produced) and non-repeatable reads (two reads of one
//!   address that no single instant satisfies) have no such `t` and are
//!   flagged; legal concurrent updates do and are not.
//!
//! Because logical clocks reset at each [`hastm_sim::Machine::run`], all
//! journal entries and obligations carry the machine's run epoch; entries
//! from different runs never mix, and a first write in a *later* epoch
//! still supplies (via its `old` value) the committed value an earlier
//! epoch's read should have seen.
//!
//! The oracle used to hang off the `HASTM_PARANOIA` environment variable;
//! it is now a first-class, always-compiled component selected by
//! [`crate::StmConfig::oracle`], with per-commit evidence recorded in
//! [`crate::TxnStats`] and violations surfaced by
//! [`crate::StmRuntime::verify_serializability`].

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use hastm_sim::Addr;

use crate::log::UndoEntry;

/// Whether and how the serializability oracle runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum OracleMode {
    /// Oracle off: no shadow bookkeeping, no journaling, no checking. The
    /// measured configuration — the oracle is a verification aid, not part
    /// of the reproduced system.
    #[default]
    Off,
    /// Check and panic with full diagnostics on the first unserializable
    /// commit (inline violations panic at the commit; deferred ones panic
    /// inside [`crate::StmRuntime::verify_serializability`]). What the
    /// integration tests use: a violation is a bug in the STM/HASTM
    /// implementation, never a legal outcome.
    Panic,
    /// Check and record violations without panicking: inline ones in
    /// [`crate::TxnStats::oracle_violations`], deferred ones in the return
    /// value of [`crate::StmRuntime::verify_serializability`]. What the
    /// `hastm-check` differential runner uses, so a violation can be
    /// shrunk and replayed instead of tearing the harness down.
    Record,
}

/// One unserializable read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleViolation {
    /// Data address of the offending read.
    pub addr: Addr,
    /// Value the transaction observed.
    pub seen: u64,
    /// Committed value the read should have observed.
    pub expected: u64,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read {} saw {:#x}, committed value {:#x}",
            self.addr, self.seen, self.expected
        )
    }
}

/// Evidence produced by the inline (written-address) part of one commit's
/// check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitEvidence {
    /// Reads the oracle cross-checked for this commit (inline + deferred).
    pub reads_checked: u64,
    /// Inline violations: reads of addresses this transaction wrote that
    /// did not see the pre-transaction value (exact; empty for a
    /// serializable commit).
    pub violations: Vec<OracleViolation>,
}

/// One committed transaction's deferred proof obligation: its reads of
/// addresses it did not write, to be checked against the committed-write
/// journal after the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obligation {
    /// Run epoch the transaction executed in.
    pub epoch: u64,
    /// Core that committed it.
    pub core: usize,
    /// Clock at transaction begin (serialization points at or after this).
    pub t_begin: u64,
    /// Clock at commit, locks still held (serialization points up to this).
    pub t_end: u64,
    /// `(address, value seen)` for every non-own-write read of an address
    /// the transaction did not write.
    pub reads: Vec<(Addr, u64)>,
}

/// One obligation for which no serialization point exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerializationViolation {
    /// The failed obligation's core.
    pub core: usize,
    /// The failed obligation's run epoch.
    pub epoch: u64,
    /// The transaction's `[begin, commit]` clock window.
    pub window: (u64, u64),
    /// The failing read at the best candidate point (the one satisfying
    /// the most reads).
    pub read: OracleViolation,
    /// Candidate serialization points examined.
    pub candidates: usize,
}

impl std::fmt::Display for SerializationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "core {} (run {}, window [{}, {}]): no serialization point among {} candidates; at the best point, {}",
            self.core, self.epoch, self.window.0, self.window.1, self.candidates, self.read
        )
    }
}

/// A read-only transaction's deferred snapshot obligation (multi-version
/// runtimes only): every read must equal the committed value at the
/// transaction's start stamp.
///
/// Unlike [`Obligation`], there is no window of candidate serialization
/// points — the snapshot protocol fixes the serialization point to the
/// start stamp, so the check is exact. Clock-based windows would be
/// unsound here: a writer can take stamp `s+1` at the same simulated
/// clock at which the reader captured start stamp `s`, so clock overlap
/// says nothing about stamp order. The stamp-keyed journal does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoObligation {
    /// Core that ran the read-only transaction.
    pub core: usize,
    /// Run epoch (diagnostic only; stamps are runtime-global).
    pub epoch: u64,
    /// The transaction's start stamp: its entire snapshot.
    pub start: u64,
    /// `(address, value seen)` for every snapshot read.
    pub reads: Vec<(Addr, u64)>,
}

/// One committed multi-version write transition, keyed by commit stamp.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct StampedWrite {
    /// Commit stamp issued by the version store.
    stamp: u64,
    /// Committed value before this write.
    old: u64,
    /// Committed value from this stamp on.
    new: u64,
}

/// One committed write transition (the address is the journal key).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct JournalWrite {
    /// Clock at which the commit published (stamped before lock release).
    clock: u64,
    /// Committed value before this write.
    old: u64,
    /// Committed value from this write on.
    new: u64,
}

#[derive(Debug, Default)]
struct OracleLogInner {
    /// Committed write transitions per (run epoch, address), append order
    /// (per-address 2PL serializes committers, so appends are clock-sorted
    /// per key).
    journal: HashMap<(u64, Addr), Vec<JournalWrite>>,
    /// Deferred per-commit proof obligations, commit order per core.
    obligations: Vec<Obligation>,
    /// Stamp-keyed committed transitions per address (multi-version
    /// runtimes). Stamps are issued inside the version-store lock, so
    /// per-address appends arrive stamp-sorted; stamps never reset, so no
    /// epoch key is needed.
    versioned: HashMap<Addr, Vec<StampedWrite>>,
    /// Read-only snapshot obligations, commit order per core.
    ro_obligations: Vec<RoObligation>,
}

/// The shared, runtime-wide oracle state: the committed-write journal and
/// the deferred obligations. One per [`crate::StmRuntime`]; all methods
/// are thread-safe (workers append concurrently during a run).
#[derive(Debug, Default)]
pub struct OracleLog {
    inner: Mutex<OracleLogInner>,
}

impl OracleLog {
    /// Appends one commit's write transitions, stamped `clock` within
    /// `epoch`. Must be called while the committing transaction still
    /// holds its write locks (so per-address append order is the commit
    /// order).
    pub fn record_commit(&self, epoch: u64, clock: u64, writes: &[(Addr, u64, u64)]) {
        if writes.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for &(addr, old, new) in writes {
            inner
                .journal
                .entry((epoch, addr))
                .or_default()
                .push(JournalWrite { clock, old, new });
        }
    }

    /// Queues a committed transaction's deferred read obligations.
    pub fn record_obligation(&self, obligation: Obligation) {
        if obligation.reads.is_empty() {
            return;
        }
        self.inner.lock().unwrap().obligations.push(obligation);
    }

    /// Appends one commit's write transitions to the stamp-keyed journal
    /// (multi-version runtimes). `stamp` is the commit stamp the version
    /// store issued for this commit; call while the write locks are still
    /// held, with the same first-write-order `(addr, old, new)` triples as
    /// [`OracleLog::record_commit`].
    pub fn record_versioned_commit(&self, stamp: u64, writes: &[(Addr, u64, u64)]) {
        if writes.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for &(addr, old, new) in writes {
            inner
                .versioned
                .entry(addr)
                .or_default()
                .push(StampedWrite { stamp, old, new });
        }
    }

    /// Queues a committed read-only transaction's snapshot obligation.
    pub fn record_ro_obligation(&self, obligation: RoObligation) {
        if obligation.reads.is_empty() {
            return;
        }
        self.inner.lock().unwrap().ro_obligations.push(obligation);
    }

    /// Whether any obligations (read-write or read-only) are queued (test
    /// aid).
    pub fn has_obligations(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        !inner.obligations.is_empty() || !inner.ro_obligations.is_empty()
    }

    /// Checks every queued obligation against the journal and drains both.
    ///
    /// `peek` must read current memory (used for addresses no commit ever
    /// wrote — their committed value never changed, so the post-run
    /// contents are the value every read should have seen). Call only
    /// after the machine has quiesced ([`hastm_sim::Machine::run`]
    /// returned): obligations can reference journal entries that lagging
    /// cores append late in host time.
    pub fn verify(&self, mut peek: impl FnMut(Addr) -> u64) -> Vec<SerializationViolation> {
        let mut inner = self.inner.lock().unwrap();
        let inner = std::mem::take(&mut *inner);
        let journal = inner.journal;
        // Defensive: per-address entries should already be clock-sorted
        // (2PL), but the check below requires it, so don't assume.
        let mut sorted: HashMap<(u64, Addr), Vec<JournalWrite>> = journal;
        for entries in sorted.values_mut() {
            entries.sort_by_key(|w| w.clock);
        }
        // For an address with no entries in an obligation's epoch, its
        // first write in the *next* epoch that has one still records (as
        // `old`) the committed value throughout the earlier epoch.
        let mut epochs_of: HashMap<Addr, Vec<u64>> = HashMap::new();
        for &(epoch, addr) in sorted.keys() {
            epochs_of.entry(addr).or_default().push(epoch);
        }
        for epochs in epochs_of.values_mut() {
            epochs.sort_unstable();
        }
        let committed_value_at =
            |addr: Addr, epoch: u64, t: u64, peek: &mut dyn FnMut(Addr) -> u64| -> u64 {
                if let Some(entries) = sorted.get(&(epoch, addr)) {
                    match entries.iter().rev().find(|w| w.clock <= t) {
                        Some(w) => w.new,
                        None => entries[0].old,
                    }
                } else if let Some(&later) = epochs_of
                    .get(&addr)
                    .and_then(|es| es.iter().find(|&&e| e > epoch))
                {
                    sorted[&(later, addr)][0].old
                } else {
                    peek(addr)
                }
            };
        let mut violations = Vec::new();
        for ob in &inner.obligations {
            // Candidate serialization points: transaction begin, plus
            // every instant the committed value of a read address changed
            // inside the transaction's window.
            let mut candidates = vec![ob.t_begin];
            for &(addr, _) in &ob.reads {
                if let Some(entries) = sorted.get(&(ob.epoch, addr)) {
                    candidates.extend(
                        entries
                            .iter()
                            .map(|w| w.clock)
                            .filter(|&c| c > ob.t_begin && c <= ob.t_end),
                    );
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            let mut best: Option<(usize, OracleViolation)> = None;
            let mut satisfied = false;
            for &t in &candidates {
                let mut ok = 0;
                let mut first_bad = None;
                for &(addr, seen) in &ob.reads {
                    let expected = committed_value_at(addr, ob.epoch, t, &mut peek);
                    if expected == seen {
                        ok += 1;
                    } else if first_bad.is_none() {
                        first_bad = Some(OracleViolation {
                            addr,
                            seen,
                            expected,
                        });
                    }
                }
                match first_bad {
                    None => {
                        satisfied = true;
                        break;
                    }
                    Some(v) => {
                        if best.as_ref().is_none_or(|(bk, _)| ok > *bk) {
                            best = Some((ok, v));
                        }
                    }
                }
            }
            if !satisfied {
                let (_, read) = best.expect("candidates is never empty");
                violations.push(SerializationViolation {
                    core: ob.core,
                    epoch: ob.epoch,
                    window: (ob.t_begin, ob.t_end),
                    read,
                    candidates: candidates.len(),
                });
            }
        }
        // Read-only snapshot obligations: exact, stamp-keyed. The expected
        // value of `addr` at start stamp `s` is the newest stamped write
        // with stamp ≤ s; before the first stamped write it is that
        // write's `old` (the pre-image); with no stamped writes at all the
        // address never transactionally changed, so current memory is the
        // committed value (as above).
        let mut stamped = inner.versioned;
        for entries in stamped.values_mut() {
            entries.sort_by_key(|w| w.stamp);
        }
        for ob in &inner.ro_obligations {
            for &(addr, seen) in &ob.reads {
                let expected = match stamped.get(&addr) {
                    Some(entries) => match entries.iter().rev().find(|w| w.stamp <= ob.start) {
                        Some(w) => w.new,
                        None => entries[0].old,
                    },
                    None => peek(addr),
                };
                if expected != seen {
                    violations.push(SerializationViolation {
                        core: ob.core,
                        epoch: ob.epoch,
                        window: (ob.start, ob.start),
                        read: OracleViolation {
                            addr,
                            seen,
                            expected,
                        },
                        candidates: 1,
                    });
                    break; // one violation per obligation is plenty
                }
            }
        }
        violations
    }
}

/// The per-thread oracle: shadow read/write logs plus the inline commit
/// check.
///
/// All methods are cheap no-ops when constructed with
/// [`OracleMode::Off`].
#[derive(Debug, Default)]
pub struct Oracle {
    mode: OracleMode,
    /// Every transactional read: (data address, value seen,
    /// had-this-transaction-already-written-it). Includes fast-path and
    /// aggressive-mode unlogged reads — that is the point.
    shadow_reads: Vec<(Addr, u64, bool)>,
    /// Data addresses written so far in the current transaction.
    shadow_writes: HashSet<Addr>,
    /// Run epoch captured at transaction begin.
    epoch: u64,
    /// Clock at transaction begin.
    t_begin: u64,
}

impl Oracle {
    /// An oracle in the given mode.
    pub fn new(mode: OracleMode) -> Self {
        Oracle {
            mode,
            ..Oracle::default()
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> OracleMode {
        self.mode
    }

    /// Whether the oracle is doing any work.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode != OracleMode::Off
    }

    /// Clears shadow state at transaction begin and captures the begin
    /// instant (`epoch`, `now`).
    pub(crate) fn begin(&mut self, epoch: u64, now: u64) {
        if !self.enabled() {
            return;
        }
        self.shadow_reads.clear();
        self.shadow_writes.clear();
        self.epoch = epoch;
        self.t_begin = now;
    }

    /// Records a transactional read of `addr` observing `value`.
    #[inline]
    pub(crate) fn note_read(&mut self, addr: Addr, value: u64) {
        if !self.enabled() {
            return;
        }
        let own = self.shadow_writes.contains(&addr);
        self.shadow_reads.push((addr, value, own));
    }

    /// Records a transactional write of `addr`.
    #[inline]
    pub(crate) fn note_write(&mut self, addr: Addr) {
        if !self.enabled() {
            return;
        }
        self.shadow_writes.insert(addr);
    }

    /// Savepoint over the shadow read log (for nested partial rollback).
    pub(crate) fn mark(&self) -> usize {
        self.shadow_reads.len()
    }

    /// Partially rolls back to `mark`: truncates shadow reads and rebuilds
    /// the shadow write set from the surviving undo log (writes undone by
    /// the rollback are no longer "own writes").
    pub(crate) fn rollback_to(&mut self, mark: usize, surviving_undo: &[UndoEntry]) {
        if !self.enabled() {
            return;
        }
        self.shadow_reads.truncate(mark);
        self.shadow_writes = surviving_undo.iter().map(|u| u.addr).collect();
    }

    /// Splits the committing transaction's reads into the exact inline
    /// check and the deferred obligation.
    ///
    /// Reads of addresses in `undo_log` (addresses this transaction wrote)
    /// are checked against the *oldest* undo entry's old value — the
    /// pre-transaction committed value, exact under strict 2PL. All other
    /// non-own-write reads go into the returned [`Obligation`] (empty
    /// `reads` if there are none), checked post-run against the journal.
    /// `core` and `t_end` stamp the obligation; call before releasing
    /// write locks.
    pub(crate) fn commit_evidence(
        &self,
        undo_log: &[UndoEntry],
        core: usize,
        t_end: u64,
    ) -> (CommitEvidence, Obligation) {
        debug_assert!(self.enabled(), "commit_evidence on a disabled oracle");
        let mut pre_txn: HashMap<Addr, u64> = HashMap::new();
        for u in undo_log {
            pre_txn.entry(u.addr).or_insert(u.old);
        }
        let mut evidence = CommitEvidence::default();
        let mut obligation = Obligation {
            epoch: self.epoch,
            core,
            t_begin: self.t_begin,
            t_end,
            reads: Vec::new(),
        };
        for &(addr, seen, after_own_write) in &self.shadow_reads {
            if after_own_write {
                continue;
            }
            evidence.reads_checked += 1;
            match pre_txn.get(&addr) {
                Some(&expected) => {
                    if seen != expected {
                        evidence.violations.push(OracleViolation {
                            addr,
                            seen,
                            expected,
                        });
                    }
                }
                None => obligation.reads.push((addr, seen)),
            }
        }
        (evidence, obligation)
    }

    /// The shadow reads of a committing read-only transaction, for its
    /// [`RoObligation`] (read-only transactions have no own writes to
    /// exempt).
    pub(crate) fn ro_reads(&self) -> Vec<(Addr, u64)> {
        self.shadow_reads.iter().map(|&(a, v, _)| (a, v)).collect()
    }

    /// The journal entries for this commit: per written address (in first-
    /// write order), its pre-transaction value from the oldest undo entry
    /// and its final value via `peek` (exact: the locks are still held).
    pub(crate) fn journal_writes(
        undo_log: &[UndoEntry],
        mut peek: impl FnMut(Addr) -> u64,
    ) -> Vec<(Addr, u64, u64)> {
        let mut seen = HashSet::new();
        let mut writes = Vec::new();
        for u in undo_log {
            if seen.insert(u.addr) {
                writes.push((u.addr, u.old, peek(u.addr)));
            }
        }
        writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undo(addr: u64, old: u64) -> UndoEntry {
        UndoEntry {
            addr: Addr(addr),
            old,
            meta: 0,
        }
    }

    #[test]
    fn off_mode_does_no_bookkeeping() {
        let mut o = Oracle::new(OracleMode::Off);
        assert!(!o.enabled());
        o.note_read(Addr(0x10), 1);
        o.note_write(Addr(0x10));
        assert_eq!(o.mark(), 0, "disabled oracle records nothing");
    }

    #[test]
    fn written_addresses_check_inline_and_read_only_defer() {
        let mut o = Oracle::new(OracleMode::Record);
        o.begin(1, 100);
        o.note_read(Addr(0x10), 7); // read-only: deferred
        o.note_read(Addr(0x20), 5); // read-then-write: inline
        o.note_write(Addr(0x20));
        o.note_read(Addr(0x20), 99); // own write: exempt
        let (ev, ob) = o.commit_evidence(&[undo(0x20, 5)], 2, 250);
        assert_eq!(ev.reads_checked, 2);
        assert!(ev.violations.is_empty());
        assert_eq!(ob.reads, vec![(Addr(0x10), 7)]);
        assert_eq!((ob.epoch, ob.core, ob.t_begin, ob.t_end), (1, 2, 100, 250));
    }

    #[test]
    fn stale_read_of_written_address_is_an_inline_violation() {
        let mut o = Oracle::new(OracleMode::Record);
        o.begin(1, 0);
        o.note_read(Addr(0x10), 7);
        o.note_write(Addr(0x10));
        let (ev, _) = o.commit_evidence(&[undo(0x10, 8)], 0, 10);
        assert_eq!(
            ev.violations,
            vec![OracleViolation {
                addr: Addr(0x10),
                seen: 7,
                expected: 8,
            }]
        );
        assert!(ev.violations[0].to_string().contains("0x10"));
    }

    #[test]
    fn oldest_undo_entry_wins() {
        let mut o = Oracle::new(OracleMode::Record);
        o.begin(1, 0);
        o.note_read(Addr(0x30), 1);
        o.note_write(Addr(0x30));
        // Two undo entries for the same address: the first (oldest) holds
        // the pre-transaction value.
        let (ev, _) = o.commit_evidence(&[undo(0x30, 1), undo(0x30, 2)], 0, 10);
        assert!(ev.violations.is_empty());
    }

    #[test]
    fn rollback_truncates_reads_and_rebuilds_writes() {
        let mut o = Oracle::new(OracleMode::Panic);
        o.begin(3, 0);
        o.note_write(Addr(0x40));
        o.note_read(Addr(0x50), 3);
        let mark = o.mark();
        o.note_write(Addr(0x60));
        o.note_read(Addr(0x70), 4);
        // Nested scope aborts: only 0x40's undo entry survives.
        o.rollback_to(mark, &[undo(0x40, 0)]);
        assert_eq!(o.mark(), 1, "post-savepoint reads dropped");
        // 0x60 is no longer an own write: a read of it is checked again.
        o.note_read(Addr(0x60), 9);
        let (ev, ob) = o.commit_evidence(&[undo(0x40, 0)], 0, 10);
        assert_eq!(ev.reads_checked, 2);
        assert!(ev.violations.is_empty());
        assert_eq!(ob.reads, vec![(Addr(0x50), 3), (Addr(0x60), 9)]);
    }

    #[test]
    fn journal_writes_dedup_to_first_entry() {
        let writes =
            Oracle::journal_writes(&[undo(0x10, 1), undo(0x20, 7), undo(0x10, 2)], |a| a.0);
        assert_eq!(writes, vec![(Addr(0x10), 1, 0x10), (Addr(0x20), 7, 0x20)]);
    }

    // ------------------------------------------------------------------
    // OracleLog::verify
    // ------------------------------------------------------------------

    fn ob(epoch: u64, window: (u64, u64), reads: &[(u64, u64)]) -> Obligation {
        Obligation {
            epoch,
            core: 0,
            t_begin: window.0,
            t_end: window.1,
            reads: reads.iter().map(|&(a, v)| (Addr(a), v)).collect(),
        }
    }

    #[test]
    fn read_consistent_at_begin_passes() {
        let log = OracleLog::default();
        // X committed 1 -> 2 at clock 50; our transaction [0, 100] read 1.
        log.record_commit(1, 50, &[(Addr(0x10), 1, 2)]);
        log.record_obligation(ob(1, (0, 100), &[(0x10, 1)]));
        assert!(log.verify(|_| unreachable!()).is_empty());
    }

    #[test]
    fn read_of_legally_updated_value_passes() {
        let log = OracleLog::default();
        // X: 1 -> 2 at clock 50, 2 -> 3 at clock 80. A transaction with
        // window [10, 60] that read 2 serializes at t in [50, 60].
        log.record_commit(1, 50, &[(Addr(0x10), 1, 2)]);
        log.record_commit(1, 80, &[(Addr(0x10), 2, 3)]);
        log.record_obligation(ob(1, (10, 60), &[(0x10, 2)]));
        assert!(log.verify(|_| unreachable!()).is_empty());
    }

    #[test]
    fn dirty_read_has_no_serialization_point() {
        let log = OracleLog::default();
        // X only ever committed 1 -> 2; a read of 99 (a speculative value
        // some aborted transaction wrote in place) matches no committed
        // state.
        log.record_commit(1, 50, &[(Addr(0x10), 1, 2)]);
        log.record_obligation(ob(1, (0, 100), &[(0x10, 99)]));
        let v = log.verify(|_| unreachable!());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].read.seen, 99);
        assert!(v[0].to_string().contains("no serialization point"));
    }

    #[test]
    fn inconsistent_snapshot_is_flagged() {
        let log = OracleLog::default();
        // X and Y both flip 0 -> 1 atomically-ish at distinct commits;
        // reading X's new value but Y's old value from *after* X's commit
        // is unserializable if Y committed before X.
        log.record_commit(1, 30, &[(Addr(0x20), 0, 1)]); // Y: 0 -> 1
        log.record_commit(1, 50, &[(Addr(0x10), 0, 1)]); // X: 0 -> 1
                                                         // Read X == 1 (so t >= 50) and Y == 0 (so t < 30): impossible.
        log.record_obligation(ob(1, (0, 100), &[(0x10, 1), (0x20, 0)]));
        let v = log.verify(|_| unreachable!());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn non_repeatable_read_is_flagged() {
        let log = OracleLog::default();
        log.record_commit(1, 50, &[(Addr(0x10), 1, 2)]);
        // One transaction read both 1 and 2 from X: no single instant.
        log.record_obligation(ob(1, (0, 100), &[(0x10, 1), (0x10, 2)]));
        assert_eq!(log.verify(|_| unreachable!()).len(), 1);
    }

    #[test]
    fn never_written_addresses_fall_back_to_memory() {
        let log = OracleLog::default();
        log.record_obligation(ob(1, (0, 100), &[(0x10, 42)]));
        assert!(log
            .verify(|a| if a == Addr(0x10) { 42 } else { 0 })
            .is_empty());
        log.record_obligation(ob(1, (0, 100), &[(0x10, 42)]));
        assert_eq!(log.verify(|_| 7).len(), 1, "memory disagrees");
    }

    #[test]
    fn later_epoch_first_write_supplies_earlier_epochs_value() {
        let log = OracleLog::default();
        // Epoch 2 committed X: 5 -> 9. An epoch-1 read of X must have seen
        // 5 (the value throughout epoch 1), even though current memory
        // says 9.
        log.record_commit(2, 10, &[(Addr(0x10), 5, 9)]);
        log.record_obligation(ob(1, (0, 100), &[(0x10, 5)]));
        assert!(log.verify(|_| unreachable!()).is_empty());
        log.record_commit(2, 10, &[(Addr(0x10), 5, 9)]);
        log.record_obligation(ob(1, (0, 100), &[(0x10, 9)]));
        assert_eq!(
            log.verify(|_| unreachable!()).len(),
            1,
            "epoch-1 reads cannot see epoch-2 values"
        );
    }

    fn ro_ob(start: u64, reads: &[(u64, u64)]) -> RoObligation {
        RoObligation {
            core: 0,
            epoch: 1,
            start,
            reads: reads.iter().map(|&(a, v)| (Addr(a), v)).collect(),
        }
    }

    #[test]
    fn ro_snapshot_at_start_stamp_passes() {
        let log = OracleLog::default();
        log.record_versioned_commit(1, &[(Addr(0x10), 0, 10)]);
        log.record_versioned_commit(2, &[(Addr(0x10), 10, 20)]);
        // Start stamp 1: must see 10, regardless of the later commit.
        log.record_ro_obligation(ro_ob(1, &[(0x10, 10)]));
        assert!(log.verify(|_| unreachable!()).is_empty());
    }

    #[test]
    fn ro_read_of_a_too_new_version_is_flagged() {
        let log = OracleLog::default();
        log.record_versioned_commit(1, &[(Addr(0x10), 0, 10)]);
        log.record_versioned_commit(2, &[(Addr(0x10), 10, 20)]);
        // Start stamp 1 but saw stamp-2's value: exactly the off-by-one
        // the seeded snapshot mutation introduces.
        log.record_ro_obligation(ro_ob(1, &[(0x10, 20)]));
        let v = log.verify(|_| unreachable!());
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].read.seen, v[0].read.expected), (20, 10));
        assert_eq!(v[0].window, (1, 1), "RO serialization point is the start stamp");
    }

    #[test]
    fn ro_read_before_first_stamped_write_expects_the_pre_image() {
        let log = OracleLog::default();
        log.record_versioned_commit(5, &[(Addr(0x10), 7, 8)]);
        log.record_ro_obligation(ro_ob(4, &[(0x10, 7)]));
        assert!(log.verify(|_| unreachable!()).is_empty());
        log.record_versioned_commit(5, &[(Addr(0x10), 7, 8)]);
        log.record_ro_obligation(ro_ob(4, &[(0x10, 8)]));
        assert_eq!(log.verify(|_| unreachable!()).len(), 1);
    }

    #[test]
    fn ro_read_of_an_untouched_address_checks_memory() {
        let log = OracleLog::default();
        log.record_ro_obligation(ro_ob(3, &[(0x40, 42)]));
        assert!(log.verify(|_| 42).is_empty());
        log.record_ro_obligation(ro_ob(3, &[(0x40, 42)]));
        assert_eq!(log.verify(|_| 7).len(), 1);
    }

    #[test]
    fn verify_drains() {
        let log = OracleLog::default();
        log.record_obligation(ob(1, (0, 10), &[(0x10, 1)]));
        assert!(log.has_obligations());
        assert_eq!(log.verify(|_| 0).len(), 1);
        assert!(!log.has_obligations());
        assert!(log.verify(|_| 0).is_empty(), "second verify sees nothing");
    }
}
