//! Language-environment integration: suspending a transaction so a garbage
//! collector, debugger, or profiler can inspect and mutate its speculative
//! state **without aborting it** (§2, §5).
//!
//! The paper's requirement: "a TM system must allow inspection,
//! modification, and reflection of its speculative state by a thread not
//! running in the same transaction context", and specifically a GC must be
//! able to move objects referenced by log entries and update references,
//! after which the transaction "will resume without aborting, but may lose
//! some of its mark bits and perform a full software validation".
//!
//! In this reproduction the inspector runs on the same simulated core (the
//! collector has stopped the world); what matters — and what the tests
//! check — is that the transaction's logs can be rewritten and objects
//! relocated mid-flight, and that the transaction then commits with plain
//! software validation instead of aborting.

use hastm_sim::{Addr, Cpu};

use crate::config::Granularity;
use crate::log::{ReadEntry, UndoEntry, WriteEntry};
use crate::runtime::ObjRef;
use crate::txn::TxThread;

/// A view over a suspended transaction's speculative state.
///
/// Created by [`TxThread::suspend`]. Dropping the inspector resumes the
/// transaction: under HASTM all mark bits are discarded (`resetmarkall`),
/// so the resumed transaction falls back to full software validation at
/// commit — it is *not* aborted.
pub struct Inspector<'t, 'c, 'm> {
    tx: &'t mut TxThread<'c, 'm>,
}

impl std::fmt::Debug for Inspector<'_, '_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inspector")
            .field("undo_entries", &self.tx.undo_log.len())
            .field("read_entries", &self.tx.read_set.len())
            .field("write_entries", &self.tx.write_set.len())
            .finish()
    }
}

impl<'t, 'c, 'm> Inspector<'t, 'c, 'm> {
    /// The transaction's undo log (old values + GC metadata).
    pub fn undo_entries(&self) -> &[UndoEntry] {
        &self.tx.undo_log
    }

    /// The transaction's read set.
    pub fn read_entries(&self) -> &[ReadEntry] {
        &self.tx.read_set
    }

    /// The transaction's write set.
    pub fn write_entries(&self) -> &[WriteEntry] {
        &self.tx.write_set
    }

    /// Reads a word of (possibly speculative) memory directly, as a
    /// collector scanning the heap would.
    pub fn peek(&mut self, addr: Addr) -> u64 {
        self.tx.cpu.load_u64(addr)
    }

    /// Writes a word of memory directly — e.g. updating a reference to a
    /// moved object inside another object or inside the transaction's own
    /// speculative data.
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.tx.cpu.store_u64(addr, value);
    }

    /// Rewrites one undo entry (e.g. after moving the object it points
    /// into).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn patch_undo_entry(&mut self, index: usize, addr: Addr, old: u64) {
        let e = &mut self.tx.undo_log[index];
        e.addr = addr;
        e.old = old;
    }

    /// Moves object `obj` (header + `data_words` payload) to a fresh
    /// location, copying its contents — including speculative updates —
    /// and retargeting every log entry that points into it. Returns the
    /// new location. The caller (the collector) is responsible for
    /// updating other references via [`Inspector::poke`].
    ///
    /// Crucially, the transaction record *value* is copied verbatim: a
    /// record owned by the suspended transaction stays owned, and logged
    /// versions stay valid, so the transaction commits normally afterwards.
    ///
    /// # Panics
    ///
    /// Panics under [`Granularity::CacheLine`], where records are keyed by
    /// address and relocation is only sound with additional stop-the-world
    /// coordination that is out of scope here. Panics likewise under
    /// [`crate::Versioning::Multi`]: version rings are address-keyed, and
    /// relocation would copy (possibly uncommitted, eagerly stored) words
    /// to a ring-less address — breaking the snapshot path's "no ring ⇒
    /// memory is the committed value" invariant. Remapping or reseeding
    /// rings atomically with the move is out of scope here.
    pub fn relocate_object(&mut self, obj: ObjRef, data_words: u32) -> ObjRef {
        assert_eq!(
            self.tx.runtime.config().granularity,
            Granularity::Object,
            "relocation requires object-granularity conflict detection"
        );
        assert!(
            self.tx.runtime.version_store().is_none(),
            "relocation is not supported under multi-versioning (version rings are address-keyed)"
        );
        let (new_obj, _) = {
            let runtime = self.tx.runtime;
            runtime.alloc_obj_shell(self.tx.cpu, data_words)
        };
        // Copy header (the record itself) and payload.
        let words = 1 + data_words as u64;
        for w in 0..words {
            let v = self.tx.cpu.load_u64(obj.0.offset(8 * w));
            self.tx.cpu.store_u64(new_obj.0.offset(8 * w), v);
        }
        let old_lo = obj.0 .0;
        let old_hi = old_lo + 8 * words;
        let delta = new_obj.0 .0.wrapping_sub(old_lo);
        let move_addr = |a: Addr| {
            if a.0 >= old_lo && a.0 < old_hi {
                Addr(a.0.wrapping_add(delta))
            } else {
                a
            }
        };
        for e in &mut self.tx.undo_log {
            e.addr = move_addr(e.addr);
        }
        for e in &mut self.tx.read_set {
            e.rec = move_addr(e.rec);
        }
        let mut new_owned = std::collections::HashMap::new();
        for (i, e) in self.tx.write_set.iter_mut().enumerate() {
            e.rec = move_addr(e.rec);
            new_owned.insert(e.rec, i);
        }
        self.tx.owned = new_owned;
        new_obj
    }
}

impl Drop for Inspector<'_, '_, '_> {
    fn drop(&mut self) {
        if self.tx.hastm() {
            // Resumption discards marks: the transaction keeps running but
            // its next validation is a software walk (§5).
            self.tx.cpu.reset_mark_all();
        }
    }
}

impl<'c, 'm> TxThread<'c, 'm> {
    /// Suspends the in-flight transaction for external inspection (GC,
    /// debugger, profiler). See [`Inspector`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn suspend(&mut self) -> Inspector<'_, 'c, 'm> {
        assert!(self.is_active(), "suspend requires an active transaction");
        Inspector { tx: self }
    }

    /// Models the transaction's thread being context-switched out and back
    /// (OS quantum expiry, page fault): a ring transition discards all
    /// mark bits, so the resumed transaction re-marks lazily and validates
    /// in software — but, unlike an HTM transaction, it is not aborted.
    pub fn context_switch(&mut self, kernel_cycles: u64) {
        self.cpu.os_transition(kernel_cycles);
    }

    /// GC-driven version reclamation ([`crate::Versioning::Multi`] only;
    /// a no-op otherwise): prunes every version ring down to its depth
    /// bound, subject to the reclamation invariant — an entry is dropped
    /// only if a newer entry in the same ring has a stamp ≤ the oldest
    /// live read-only start, so no live (or future) snapshot reader can
    /// lose a version it could still resolve to.
    ///
    /// Rings are also pruned incrementally at each publishing commit;
    /// this entry point is for the collector's safepoint, so history
    /// pinned by a since-finished reader does not linger on cold rings
    /// until the next commit happens to touch them.
    pub fn collect_versions(&mut self) {
        if let Some(store) = self.runtime.version_store() {
            store.prune_all();
        }
    }
}

/// Raw access for collectors that also need to touch non-transactional
/// memory during a pause (free function so it is usable without a
/// transaction).
pub fn heap_word(cpu: &mut Cpu<'_>, addr: Addr) -> u64 {
    cpu.load_u64(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Granularity, StmConfig};
    use crate::runtime::StmRuntime;
    use hastm_sim::{Machine, MachineConfig};

    fn setup(config: StmConfig) -> (Machine, StmRuntime) {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        (m, rt)
    }

    #[test]
    fn suspend_inspect_resume_commit() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.write_word(o, 0, 5).unwrap();
            {
                let insp = tx.suspend();
                assert_eq!(insp.undo_entries().len(), 1);
                assert_eq!(insp.write_entries().len(), 1);
            }
            // Resumed without aborting; commits with software validation
            // because resetmarkall dirtied the counter.
            tx.commit().expect("resume without abort");
            assert_eq!(tx.stats().validations_full, 1);
            assert_eq!(tx.stats().validations_skipped, 0);
        });
    }

    #[test]
    fn relocation_preserves_speculative_state() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(2);
            tx.atomic(|tx| tx.write_word(o, 1, 70)); // committed state
            tx.begin(0);
            let read_back = tx.read_word(o, 1).unwrap();
            assert_eq!(read_back, 70);
            tx.write_word(o, 0, 41).unwrap(); // speculative state
            let new_o = {
                let mut insp = tx.suspend();
                insp.relocate_object(o, 2)
            };
            assert_ne!(new_o, o);
            // Transaction continues against the moved object.
            let v = tx.read_word(new_o, 0).unwrap();
            assert_eq!(v, 41, "speculative value moved with the object");
            tx.write_word(new_o, 0, v + 1).unwrap();
            tx.commit().expect("commit after relocation");
            tx.begin(0);
            assert_eq!(tx.read_word(new_o, 0).unwrap(), 42);
            assert_eq!(tx.read_word(new_o, 1).unwrap(), 70);
            tx.commit().unwrap();
        });
    }

    #[test]
    fn relocation_then_abort_rolls_back_at_new_location() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| tx.write_word(o, 0, 10));
            tx.begin(0);
            tx.write_word(o, 0, 99).unwrap();
            let new_o = {
                let mut insp = tx.suspend();
                insp.relocate_object(o, 1)
            };
            tx.abort(crate::Abort::Explicit);
            // The undo entry was retargeted: the *new* copy is rolled back.
            tx.begin(0);
            assert_eq!(tx.read_word(new_o, 0).unwrap(), 10);
            tx.commit().unwrap();
        });
    }

    #[test]
    fn context_switch_mid_transaction_survives() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| tx.write_word(o, 0, 1));
            tx.begin(0);
            let v = tx.read_word(o, 0).unwrap();
            tx.context_switch(10_000);
            tx.write_word(o, 0, v + 1).unwrap();
            tx.commit().expect("transaction spans the context switch");
            assert_eq!(tx.stats().validations_full, 1, "software validation");
            tx.begin(0);
            assert_eq!(tx.read_word(o, 0).unwrap(), 2);
            tx.commit().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "object-granularity")]
    fn relocation_rejected_at_cacheline_granularity() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.write_word(o, 0, 1).unwrap();
            let mut insp = tx.suspend();
            let _ = insp.relocate_object(o, 1);
        });
    }

    #[test]
    #[should_panic(expected = "multi-versioning")]
    fn relocation_rejected_under_multi_versioning() {
        use crate::config::Versioning;
        let cfg = StmConfig::stm(Granularity::Object).with_versioning(Versioning::Multi { k: 2 });
        let (mut m, rt) = setup(cfg);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.begin(0);
            tx.write_word(o, 0, 1).unwrap();
            let mut insp = tx.suspend();
            let _ = insp.relocate_object(o, 1);
        });
    }

    #[test]
    fn collect_versions_prunes_unpinned_history() {
        use crate::config::Versioning;
        let cfg = StmConfig::stm(Granularity::Object).with_versioning(Versioning::Multi { k: 2 });
        let (mut m, rt) = setup(cfg);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            for i in 0..5 {
                tx.atomic(|tx| tx.write_word(o, 0, i));
            }
            let store = rt.version_store().unwrap();
            let addr = o.word(0).0;
            assert!(store.ring_stamps(addr).len() <= 2, "commit-path pruning");
            // Pin history, over-fill the ring, then collect.
            store.register_ro(0);
            for i in 5..9 {
                tx.atomic(|tx| tx.write_word(o, 0, i));
            }
            assert!(store.ring_stamps(addr).len() > 2, "pinned history grows");
            store.deregister_ro(0);
            tx.collect_versions();
            assert_eq!(store.ring_stamps(addr).len(), 2, "safepoint reclaims");
        });
    }

    #[test]
    fn poke_updates_reference_during_pause() {
        let (mut m, rt) = setup(StmConfig::hastm_cautious(Granularity::Object));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let holder = tx.alloc_obj(1);
            let target = tx.alloc_obj(1);
            tx.atomic(|tx| tx.write_word_meta(holder, 0, target.0 .0, 1));
            tx.begin(0);
            let t = ObjRef(Addr(tx.read_word(holder, 0).unwrap()));
            assert_eq!(t, target);
            let moved = {
                let mut insp = tx.suspend();
                let moved = insp.relocate_object(target, 1);
                // Collector fixes the reference in holder.
                insp.poke(holder.word(0), moved.0 .0);
                moved
            };
            let t2 = ObjRef(Addr(tx.read_word(holder, 0).unwrap()));
            assert_eq!(t2, moved);
            tx.commit().expect("reference fix-up did not abort us");
        });
    }
}
