//! Transaction logs: read set, write set, and undo log (§4).
//!
//! Log *contents* are kept host-side (they are private to the owning
//! thread), but every append also performs the same simulated-memory
//! traffic the paper's inlined sequences perform — load the log pointer
//! from the descriptor, bump and store it back, then store the entry words
//! — so logging has faithful cache and timing behavior. Undo entries carry
//! a metadata word because, in a managed environment, "the undo log entries
//! need additional metadata to enable garbage collection during a
//! transaction" (§4); this is also why the paper argues log structure must
//! stay in software rather than being architected into hardware.

use hastm_sim::{Addr, Cpu, SimHeap};

use crate::record::RecValue;

/// One read-set entry: a record and the version observed when logged.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReadEntry {
    /// The transaction record's address.
    pub rec: Addr,
    /// The version it held when read.
    pub version: RecValue,
}

/// One write-set entry: an owned record and the version to restore/bump on
/// release.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WriteEntry {
    /// The transaction record's address.
    pub rec: Addr,
    /// The version the record held before this transaction acquired it.
    pub prev: RecValue,
}

/// One undo-log entry: the old value of a written word plus GC metadata.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UndoEntry {
    /// Address of the overwritten word.
    pub addr: Addr,
    /// The word's value before the write.
    pub old: u64,
    /// Opaque metadata for precise GC (e.g. "this word is a reference").
    pub meta: u64,
}

/// A simulated-memory region backing one log, with overflow chunks.
#[derive(Debug)]
pub struct LogRegion {
    /// Descriptor slot holding the (simulated) current log pointer.
    ptr_slot: Addr,
    /// Current chunk base.
    chunk: Addr,
    /// Entries used in the current chunk.
    used: u32,
    /// Entries per chunk.
    capacity: u32,
    /// Entry size in 8-byte words.
    entry_words: u32,
    /// Chunks allocated so far (for stats/tests).
    chunks: u32,
}

impl LogRegion {
    /// Allocates a region whose log pointer lives at `ptr_slot` in the
    /// transaction descriptor. Allocation is gated on `cpu` so concurrent
    /// thread startup hands out run-to-run identical log addresses.
    pub fn new(
        cpu: &mut Cpu<'_>,
        heap: &SimHeap,
        ptr_slot: Addr,
        capacity: u32,
        entry_words: u32,
    ) -> Self {
        let chunk = cpu.alloc_aligned(heap, capacity as u64 * entry_words as u64 * 8, 64);
        LogRegion {
            ptr_slot,
            chunk,
            used: 0,
            capacity,
            entry_words,
            chunks: 1,
        }
    }

    /// Performs the simulated traffic of one append: the paper's
    /// `mov ecx,[txndesc+log]; test; add; mov [txndesc+log],ecx` prologue
    /// plus one store per entry word. On overflow, takes the slow path:
    /// allocates a fresh chunk from `heap` and charges `overflow_cycles`.
    pub fn append(&mut self, cpu: &mut Cpu<'_>, heap: &SimHeap, words: &[u64]) {
        debug_assert_eq!(words.len() as u32, self.entry_words);
        cpu.load_u64(self.ptr_slot); // get log ptr
        cpu.exec(2); // overflow test + add
        if self.used == self.capacity {
            // Overflow slow path ("jz overflow" in the inlined sequences).
            self.chunk =
                cpu.alloc_aligned(heap, self.capacity as u64 * self.entry_words as u64 * 8, 64);
            self.used = 0;
            self.chunks += 1;
            cpu.tick(50); // allocator call
        }
        let base = Addr(self.chunk.0 + self.used as u64 * self.entry_words as u64 * 8);
        cpu.store_u64(self.ptr_slot, base.0 + self.entry_words as u64 * 8);
        for (i, w) in words.iter().enumerate() {
            cpu.store_u64(base.offset(i as u64 * 8), *w);
        }
        self.used += 1;
    }

    /// Resets the region to its first chunk (transaction end).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Chunks allocated over the region's lifetime.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }
}

/// A savepoint into the three logs, taken at nested-transaction begin.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Savepoint {
    /// Read-set length at the savepoint.
    pub reads: usize,
    /// Write-set length at the savepoint.
    pub writes: usize,
    /// Undo-log length at the savepoint.
    pub undos: usize,
    /// Debug-only: shadow-read count at the savepoint (reads of a rolled-
    /// back scope semantically never happened and are excluded from the
    /// serializability oracle).
    pub shadow_reads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm_sim::{Machine, MachineConfig};

    #[test]
    fn append_traffic_and_overflow() {
        let mut m = Machine::new(MachineConfig::default());
        let heap = m.heap();
        let ptr_slot = heap.alloc(8);
        let (region, report) = m.run_one(|cpu| {
            let mut region = LogRegion::new(cpu, &heap, ptr_slot, 2, 2);
            region.append(cpu, &heap, &[1, 2]);
            region.append(cpu, &heap, &[3, 4]);
            // Third append overflows into a new chunk.
            region.append(cpu, &heap, &[5, 6]);
            region
        });
        assert_eq!(region.chunks(), 2);
        // 3 appends x (1 load + 3 stores).
        assert_eq!(report.cores[0].loads, 3);
        assert_eq!(report.cores[0].stores, 9);
    }

    #[test]
    fn reset_reuses_chunk() {
        let mut m = Machine::new(MachineConfig::default());
        let heap = m.heap();
        let ptr_slot = heap.alloc(8);
        m.run_one(|cpu| {
            let mut region = LogRegion::new(cpu, &heap, ptr_slot, 4, 3);
            region.used = 4;
            region.reset();
            assert_eq!(region.used, 0);
            assert_eq!(region.chunks(), 1);
        });
    }

    #[test]
    fn entries_are_plain_data() {
        let e = ReadEntry {
            rec: Addr(0x40),
            version: RecValue::INITIAL,
        };
        assert_eq!(e, e);
        let u = UndoEntry {
            addr: Addr(0x80),
            old: 7,
            meta: 0,
        };
        assert!(!format!("{u:?}").is_empty());
    }
}
