//! The aggressive/cautious mode controller (§6, §7.4).

use crate::config::{Mode, ModePolicy};

/// EWMA weight for the dirty-commit ratio.
const EWMA: f64 = 0.125;

/// Why a transaction aborted, as far as the mode heuristics care: was the
/// mark-counter loss (or record conflict) caused by a *remote writer* —
/// a true data conflict — or by *capacity pressure* (evictions and
/// back-invalidations, the HTM "spurious abort" analog)? The distinction
/// matters because capacity aborts persist under any optimistic policy
/// and argue for falling back further, while conflict aborts may resolve
/// with simple backoff.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AbortClass {
    /// A true data conflict (remote writer invalidated a read).
    Conflict,
    /// Capacity pressure: marked lines lost to evictions or
    /// back-invalidations, indistinguishable from conflicts to the
    /// aggressive fast path but not caused by contention.
    Capacity,
}

/// Tracks per-thread transaction history and decides the mode of each
/// attempt.
///
/// The controller's key signal is the *dirty ratio*: the exponentially
/// weighted fraction of recent transactions whose commit-time mark counter
/// was nonzero. In cautious mode this is observable without any abort (the
/// commit simply performed a software validation), so the controller can
/// tell — cheaply and continuously — whether aggressive mode would be
/// safe. This is what lets HASTM "remain in cautious mode ... till the
/// number of evictions/invalidations is below a threshold" instead of
/// discovering interference through aborted work, which is exactly the
/// failure mode of the naïve always-aggressive policy in Figures 21–22.
#[derive(Clone, Debug)]
pub struct ModeController {
    policy: ModePolicy,
    commits: u64,
    dirty_ratio: f64,
    aborts_conflict: u64,
    aborts_capacity: u64,
}

impl ModeController {
    /// A controller starting pessimistic (ratio 1.0 ⇒ cautious first).
    pub fn new(policy: ModePolicy) -> Self {
        ModeController {
            policy,
            commits: 0,
            dirty_ratio: 1.0,
            aborts_conflict: 0,
            aborts_capacity: 0,
        }
    }

    /// The mode for attempt number `attempt` (0 = first execution) of the
    /// next transaction.
    pub fn mode_for(&self, attempt: u32) -> Mode {
        match self.policy {
            ModePolicy::AlwaysCautious => Mode::Cautious,
            // Under the phased policy the per-attempt mode comes from the
            // scheme-wide phase indicator (`SharedModeState`), not this
            // per-thread controller; the controller's answer is only used
            // as a safe default before the phase has been read.
            ModePolicy::Phased(_) => Mode::Cautious,
            // Re-executions always run cautiously: an aggressive abort
            // cannot distinguish spurious from real conflicts, so the paper
            // "aborts, flips into cautious mode, and re-executes".
            _ if attempt > 0 => Mode::Cautious,
            ModePolicy::NaiveAggressive => Mode::Aggressive,
            ModePolicy::SingleThreadAggressive => {
                if self.commits >= 1 {
                    Mode::Aggressive
                } else {
                    Mode::Cautious
                }
            }
            ModePolicy::AbortRatioWatermark { watermark } => {
                if self.dirty_ratio < watermark {
                    Mode::Aggressive
                } else {
                    Mode::Cautious
                }
            }
        }
    }

    /// Records a commit. `counter_dirty` is whether the commit-time mark
    /// counter was nonzero (i.e. aggressive mode would have aborted).
    pub fn on_commit(&mut self, counter_dirty: bool) {
        self.commits += 1;
        self.update_ratio(counter_dirty);
    }

    /// Records an abort of the given class. All aborts count as "dirty"
    /// history for the EWMA (they indicate the optimistic path is not
    /// paying off), but the per-cause tallies let phased heuristics and
    /// diagnostics distinguish capacity persistence from contention.
    pub fn on_abort(&mut self, class: AbortClass) {
        match class {
            AbortClass::Conflict => self.aborts_conflict += 1,
            AbortClass::Capacity => self.aborts_capacity += 1,
        }
        self.update_ratio(true);
    }

    fn update_ratio(&mut self, dirty: bool) {
        let x = if dirty { 1.0 } else { 0.0 };
        self.dirty_ratio = (1.0 - EWMA) * self.dirty_ratio + EWMA * x;
    }

    /// The current dirty ratio (diagnostics).
    pub fn dirty_ratio(&self) -> f64 {
        self.dirty_ratio
    }

    /// Aborts recorded as true data conflicts.
    pub fn aborts_conflict(&self) -> u64 {
        self.aborts_conflict
    }

    /// Aborts recorded as capacity pressure.
    pub fn aborts_capacity(&self) -> u64 {
        self.aborts_capacity
    }

    /// The configured policy.
    pub fn policy(&self) -> ModePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_cautious_never_aggressive() {
        let mut c = ModeController::new(ModePolicy::AlwaysCautious);
        for _ in 0..100 {
            c.on_commit(false);
        }
        assert_eq!(c.mode_for(0), Mode::Cautious);
    }

    #[test]
    fn single_thread_flips_after_first_commit() {
        let mut c = ModeController::new(ModePolicy::SingleThreadAggressive);
        assert_eq!(c.mode_for(0), Mode::Cautious, "first transaction cautious");
        c.on_commit(false);
        assert_eq!(c.mode_for(0), Mode::Aggressive);
        // Re-executions after an abort are cautious.
        assert_eq!(c.mode_for(1), Mode::Cautious);
    }

    #[test]
    fn naive_is_always_aggressive_first() {
        let c = ModeController::new(ModePolicy::NaiveAggressive);
        assert_eq!(c.mode_for(0), Mode::Aggressive, "even with no history");
        assert_eq!(c.mode_for(1), Mode::Cautious);
    }

    #[test]
    fn watermark_starts_cautious_and_converges() {
        let mut c = ModeController::new(ModePolicy::AbortRatioWatermark { watermark: 0.1 });
        assert_eq!(c.mode_for(0), Mode::Cautious, "pessimistic start");
        // A run of clean commits drives the ratio below the watermark.
        for _ in 0..40 {
            c.on_commit(false);
        }
        assert!(c.dirty_ratio() < 0.1);
        assert_eq!(c.mode_for(0), Mode::Aggressive);
    }

    #[test]
    fn watermark_backs_off_under_interference() {
        let mut c = ModeController::new(ModePolicy::AbortRatioWatermark { watermark: 0.1 });
        for _ in 0..40 {
            c.on_commit(false);
        }
        assert_eq!(c.mode_for(0), Mode::Aggressive);
        // Dirty commits / aborts push it back to cautious.
        for _ in 0..10 {
            c.on_commit(true);
        }
        assert_eq!(c.mode_for(0), Mode::Cautious);
        c.on_abort(AbortClass::Conflict);
        assert!(c.dirty_ratio() > 0.1);
    }

    #[test]
    fn per_cause_accounting_separates_conflict_from_capacity() {
        let mut c = ModeController::new(ModePolicy::default());
        c.on_abort(AbortClass::Conflict);
        c.on_abort(AbortClass::Capacity);
        c.on_abort(AbortClass::Capacity);
        assert_eq!(c.aborts_conflict(), 1);
        assert_eq!(c.aborts_capacity(), 2);
        // Commits never touch the abort tallies.
        c.on_commit(true);
        c.on_commit(false);
        assert_eq!(c.aborts_conflict(), 1);
        assert_eq!(c.aborts_capacity(), 2);
    }

    #[test]
    fn both_abort_classes_push_the_ratio_up() {
        for class in [AbortClass::Conflict, AbortClass::Capacity] {
            let mut c = ModeController::new(ModePolicy::AbortRatioWatermark { watermark: 0.1 });
            for _ in 0..40 {
                c.on_commit(false);
            }
            let before = c.dirty_ratio();
            c.on_abort(class);
            assert!(c.dirty_ratio() > before, "{class:?} must count as dirty");
        }
    }

    #[test]
    fn phased_policy_defers_to_the_global_phase() {
        use crate::phase::PhasedParams;
        let mut c = ModeController::new(ModePolicy::Phased(PhasedParams::default()));
        // No amount of per-thread history flips the controller itself:
        // the real decision is the published phase's.
        for _ in 0..100 {
            c.on_commit(false);
        }
        assert_eq!(c.mode_for(0), Mode::Cautious);
        assert_eq!(c.mode_for(3), Mode::Cautious);
    }
}
