//! Property test for [`hastm::TimeBreakdown`] accounting: every cycle a
//! thread spends inside `atomic`/`try_atomic` must land in exactly one
//! category, so the per-thread breakdown total equals the cycles elapsed
//! across its transaction calls — across random configs, schedules, core
//! counts, and conflict mixes, including aborted and re-executed attempts.

use hastm::{
    BarrierKind, Granularity, ModePolicy, ObjRef, StmConfig, StmRuntime, TimeBreakdown, TxThread,
};
use hastm_sim::{Machine, MachineConfig, PhaseSums, SchedulePolicy, TraceConfig, WorkerFn};
use proptest::prelude::*;
use std::sync::Mutex;

/// Number of shared objects; small so concurrent threads conflict often.
const CELLS: usize = 4;

#[derive(Clone, Debug)]
struct Scenario {
    granularity: Granularity,
    barrier: BarrierKind,
    policy: ModePolicy,
    schedule: SchedulePolicy,
    threads: usize,
    txns_per_thread: usize,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            prop_oneof![Just(Granularity::Object), Just(Granularity::CacheLine)],
            prop_oneof![Just(BarrierKind::Stm), Just(BarrierKind::Hastm)],
            prop_oneof![
                Just(ModePolicy::AlwaysCautious),
                Just(ModePolicy::SingleThreadAggressive),
                Just(ModePolicy::default()),
            ],
        ),
        (
            prop_oneof![
                Just(SchedulePolicy::Deterministic),
                (0..4u64).prop_map(|seed| SchedulePolicy::Fuzzed { seed }),
                (0..4u64, 2..4u32).prop_map(|(seed, depth)| SchedulePolicy::Pct { seed, depth }),
            ],
            1..=3usize,
            1..=6usize,
            any::<u64>(),
        ),
    )
        .prop_map(
            |((granularity, barrier, policy), (schedule, threads, txns_per_thread, seed))| {
                Scenario {
                    granularity,
                    barrier,
                    policy,
                    schedule,
                    threads,
                    txns_per_thread,
                    seed,
                }
            },
        )
}

/// Runs the scenario and returns, per thread, the cycles spent inside its
/// transaction calls alongside its final breakdown total.
fn run(s: &Scenario) -> Vec<(u64, u64)> {
    let mut m = Machine::new(MachineConfig {
        schedule: s.schedule,
        ..MachineConfig::with_cores(s.threads)
    });
    let config = match s.barrier {
        BarrierKind::Stm => StmConfig::stm(s.granularity),
        BarrierKind::Hastm => StmConfig::hastm(s.granularity, s.policy),
    };
    let rt = StmRuntime::new(&mut m, config);
    let (cells, _) = m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        (0..CELLS).map(|_| tx.alloc_obj(2)).collect::<Vec<ObjRef>>()
    });

    let results: Mutex<Vec<(usize, u64, u64)>> = Mutex::new(Vec::new());
    let rt_ref = &rt;
    let cells_ref = &cells;
    let results_ref = &results;
    let workers: Vec<WorkerFn<'_>> = (0..s.threads)
        .map(|tid| {
            let base = s.seed ^ ((tid as u64) << 17);
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                let mut elapsed = 0u64;
                for i in 0..s.txns_per_thread {
                    let pick = (base.wrapping_mul(i as u64 + 1)) as usize % CELLS;
                    let t0 = tx.cpu().now();
                    tx.atomic(|tx| {
                        let v = tx.read_word(cells_ref[pick], 0)?;
                        tx.write_word(cells_ref[pick], 0, v + 1)?;
                        tx.write_word(cells_ref[(pick + 1) % CELLS], 1, v)
                    });
                    elapsed += tx.cpu().now() - t0;
                }
                let total = tx.stats().breakdown.total();
                results_ref.lock().unwrap().push((tid, elapsed, total));
            }) as WorkerFn<'_>
        })
        .collect();
    m.run(workers);

    let mut per_thread = results.into_inner().unwrap();
    per_thread.sort_unstable();
    per_thread.into_iter().map(|(_, e, t)| (e, t)).collect()
}

/// Runs the scenario with event tracing armed and returns the summed
/// per-thread breakdown alongside the trace's per-phase cycle sums.
fn run_traced(s: &Scenario) -> (TimeBreakdown, PhaseSums, bool) {
    let mut m = Machine::new(MachineConfig {
        schedule: s.schedule,
        trace: Some(TraceConfig::default()),
        ..MachineConfig::with_cores(s.threads)
    });
    let config = match s.barrier {
        BarrierKind::Stm => StmConfig::stm(s.granularity),
        BarrierKind::Hastm => StmConfig::hastm(s.granularity, s.policy),
    };
    let rt = StmRuntime::new(&mut m, config);
    let (cells, _) = m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        (0..CELLS).map(|_| tx.alloc_obj(2)).collect::<Vec<ObjRef>>()
    });

    let merged: Mutex<TimeBreakdown> = Mutex::new(TimeBreakdown::default());
    let rt_ref = &rt;
    let cells_ref = &cells;
    let merged_ref = &merged;
    let workers: Vec<WorkerFn<'_>> = (0..s.threads)
        .map(|tid| {
            let base = s.seed ^ ((tid as u64) << 17);
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                for i in 0..s.txns_per_thread {
                    let pick = (base.wrapping_mul(i as u64 + 1)) as usize % CELLS;
                    tx.atomic(|tx| {
                        let v = tx.read_word(cells_ref[pick], 0)?;
                        tx.write_word(cells_ref[pick], 0, v + 1)?;
                        tx.write_word(cells_ref[(pick + 1) % CELLS], 1, v)
                    });
                }
                merged_ref.lock().unwrap().merge(&tx.stats().breakdown);
            }) as WorkerFn<'_>
        })
        .collect();
    m.run(workers);
    let log = m.take_trace().expect("tracing was armed");
    (
        merged.into_inner().unwrap(),
        log.phase_sums(),
        log.dropped_any(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn breakdown_categories_sum_to_transaction_cycles(s in scenario()) {
        for (tid, (elapsed, total)) in run(&s).into_iter().enumerate() {
            prop_assert_eq!(
                elapsed,
                total,
                "thread {} of {:?}: breakdown total {} != cycles in atomic {}",
                tid,
                &s,
                total,
                elapsed
            );
        }
    }

    /// Cross-validation against the event trace: the cycle deltas the
    /// trace's `Phase` events carry must sum, per category, to exactly the
    /// run's merged [`TimeBreakdown`] — the trace and the counters are two
    /// views of the same attribution stream, and neither may drop or
    /// double-count a cycle.
    #[test]
    fn trace_phase_sums_equal_breakdown_categories(s in scenario()) {
        let (bd, sums, dropped) = run_traced(&s);
        prop_assert!(!dropped, "scenario overflowed the trace ring: {:?}", &s);
        for (name, traced, counted) in [
            ("tls", sums.tls, bd.tls),
            ("read_barrier", sums.read_barrier, bd.read_barrier),
            ("write_barrier", sums.write_barrier, bd.write_barrier),
            ("validate", sums.validate, bd.validate),
            ("commit", sums.commit, bd.commit),
            ("contention", sums.contention, bd.contention),
            ("app", sums.app, bd.app),
        ] {
            prop_assert_eq!(
                traced, counted,
                "category {} of {:?}: trace sums {} != breakdown {}",
                name, &s, traced, counted
            );
        }
    }
}
