//! Tests for the §5 write-barrier/undo-log filtering extension (second
//! mark filter): correctness under nesting, rollback, contention, and
//! concurrency — and that it actually pays on write-heavy transactions.

use hastm::{Abort, Granularity, ModePolicy, ObjRef, OracleMode, StmConfig, StmRuntime, TxThread};
use hastm_sim::{Machine, MachineConfig, WorkerFn};

fn cfg(filter_writes: bool) -> StmConfig {
    let mut c = StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive);
    c.filter_writes = filter_writes;
    c
}

#[test]
fn repeat_writes_take_fast_path() {
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, cfg(true));
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let o = tx.alloc_obj(2);
        tx.atomic(|tx| {
            for i in 0..10 {
                tx.write_word(o, 0, i)?;
            }
            Ok(())
        });
        assert_eq!(tx.stats().write_fast_path, 9, "writes 2..10 filtered");
        assert_eq!(tx.stats().undo_elided, 9, "one undo entry suffices");
        let v = tx.atomic(|tx| tx.read_word(o, 0));
        assert_eq!(v, 9);
    });
}

#[test]
fn filtered_writes_roll_back_to_pretxn_value() {
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, cfg(true));
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let o = tx.alloc_obj(1);
        tx.atomic(|tx| tx.write_word(o, 0, 100));
        let r: Result<(), Abort> = tx.try_atomic(|tx| {
            tx.write_word(o, 0, 1)?;
            tx.write_word(o, 0, 2)?; // elided undo
            tx.write_word(o, 0, 3)?; // elided undo
            tx.abort_now()
        });
        assert!(r.is_err());
        let v = tx.atomic(|tx| tx.read_word(o, 0));
        assert_eq!(v, 100, "rollback restores the pre-transaction value");
    });
}

#[test]
fn nested_scopes_get_their_own_undo_entries() {
    // An address written before a savepoint and again inside the nested
    // scope must NOT be elided, or partial rollback would restore the
    // pre-transaction value instead of the at-savepoint value.
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, cfg(true));
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let o = tx.alloc_obj(1);
        tx.atomic(|tx| tx.write_word(o, 0, 5));
        tx.atomic(|tx| {
            tx.write_word(o, 0, 10)?; // parent writes 10
            let inner: Result<(), Abort> = tx.nested(|tx| {
                tx.write_word(o, 0, 20)?; // nested writes 20 (fresh scope)
                tx.write_word(o, 0, 21)?; // elided within the scope
                Err(Abort::Explicit)
            });
            assert!(inner.is_err());
            // Partial rollback must land on 10, not 5.
            assert_eq!(tx.read_word(o, 0)?, 10);
            Ok(())
        });
        let v = tx.atomic(|tx| tx.read_word(o, 0));
        assert_eq!(v, 10);
    });
}

#[test]
fn rollback_clears_write_filter_marks() {
    // A record acquired in a rolled-back nested scope must not satisfy the
    // write-filter fast path afterwards (it is no longer owned).
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, cfg(true));
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let o = tx.alloc_obj(1);
        tx.atomic(|tx| {
            let inner: Result<(), Abort> = tx.nested(|tx| {
                tx.write_word(o, 0, 1)?;
                Err(Abort::Explicit)
            });
            assert!(inner.is_err());
            let fast_before = tx.stats().write_fast_path;
            tx.write_word(o, 0, 2)?; // must re-acquire, not fast-path
            assert_eq!(tx.stats().write_fast_path, fast_before);
            Ok(())
        });
        let v = tx.atomic(|tx| tx.read_word(o, 0));
        assert_eq!(v, 2);
    });
}

#[test]
fn concurrent_increments_stay_atomic_with_write_filter() {
    let mut m = Machine::new(MachineConfig::with_cores(4));
    let mut c = StmConfig::hastm(
        Granularity::Object,
        ModePolicy::AbortRatioWatermark { watermark: 0.1 },
    )
    .with_oracle(OracleMode::Panic);
    c.filter_writes = true;
    let rt = StmRuntime::new(&mut m, c);
    let (o, _) = m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        tx.alloc_obj(1)
    });
    let rt_ref = &rt;
    m.run(
        (0..4)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut tx = TxThread::new(rt_ref, cpu);
                    for _ in 0..50 {
                        tx.atomic(|tx| {
                            let v = tx.read_word(o, 0)?;
                            tx.write_word(o, 0, v + 1)?;
                            tx.write_word(o, 0, v + 1)?; // repeat write
                            Ok(())
                        });
                    }
                }) as WorkerFn<'_>
            })
            .collect(),
    );
    assert_eq!(m.peek_u64(o.word(0)), 200);
    rt.verify_serializability(&m);
}

#[test]
fn write_filter_reduces_cycles_on_write_heavy_transactions() {
    fn run(filter: bool) -> u64 {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, cfg(filter));
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let objs: Vec<ObjRef> = (0..8).map(|_| tx.alloc_obj(4)).collect();
            // Warm-up.
            tx.atomic(|tx| {
                for o in &objs {
                    tx.write_word(*o, 0, 0)?;
                }
                Ok(())
            });
            let t0 = tx.cpu().now();
            for round in 0..20u64 {
                tx.atomic(|tx| {
                    for o in &objs {
                        // Accumulator pattern: the same word is rewritten
                        // repeatedly, so both the record re-acquisition and
                        // the duplicate undo entries are filterable.
                        for k in 0..8 {
                            tx.write_word(*o, 0, round * 8 + k)?;
                        }
                    }
                    Ok(())
                });
            }
            tx.cpu().now() - t0
        })
        .0
    }
    let without = run(false);
    let with = run(true);
    assert!(
        with < without,
        "write filtering must pay on write-heavy transactions: {with} vs {without}"
    );
}
