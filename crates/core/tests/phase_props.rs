//! Property tests for the PhTM-style global phase machine
//! ([`hastm::SharedModeState`]): random commit/abort/capacity-event
//! scripts driven against an independently written reference model must
//! never violate the transition invariants — one-level moves only, the
//! hysteresis window respected, the serial phase draining to exactly one
//! token holder, and recovery back to `Hw` after quiescence. A final
//! multi-core simulator smoke exercises the whole entry/drain protocol
//! end to end, serial phase included.

#![cfg(not(feature = "phase-seeded-bug"))]

use std::sync::Mutex;

use hastm::phase::{refresh_view, SharedModeState, ACTIVE_ONE};
use hastm::{
    Granularity, ModePolicy, ObjRef, Phase, PhaseEvent, PhasedParams, StmConfig, StmRuntime,
    TxThread, TxnStats,
};
use hastm_sim::{Machine, MachineConfig, WorkerFn};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference model: the transition rules, restated from scratch.
// ---------------------------------------------------------------------------

/// An independent restatement of the phase-transition rules from the
/// issue (NOT a copy of `phase.rs` internals): streak counters, a
/// hysteresis window, single-level demotion on persistent interference,
/// single-level promotion on persistent clean commits, and a serial
/// phase that only its own (serial) commits can reopen.
#[derive(Debug)]
struct RefModel {
    params: PhasedParams,
    phase: Phase,
    bad: u32,
    good: u32,
    since: u32,
}

impl RefModel {
    fn new(params: PhasedParams) -> Self {
        RefModel {
            params,
            phase: Phase::Hw,
            bad: 0,
            good: 0,
            since: 0,
        }
    }

    /// Applies one event; returns the transition it published, if any.
    fn on_event(&mut self, ev: PhaseEvent) -> Option<(Phase, Phase)> {
        self.since += 1;
        let bad = matches!(
            ev,
            PhaseEvent::DirtyCommit | PhaseEvent::CapacityAbort | PhaseEvent::ConflictAbort
        );
        if bad {
            self.bad += 1;
            self.good = 0;
        } else {
            self.good += 1;
            self.bad = 0;
        }
        if self.since < self.params.hysteresis {
            return None;
        }
        let from = self.phase;
        let to = if from == Phase::Serial {
            if ev == PhaseEvent::SerialCommit && self.good >= self.params.promote_after {
                Phase::Cautious
            } else {
                return None;
            }
        } else if self.bad >= self.params.demote_after {
            match from {
                Phase::Hw => Phase::Aggressive,
                Phase::Aggressive => Phase::Cautious,
                Phase::Cautious | Phase::Serial => Phase::Serial,
            }
        } else if self.good >= self.params.promote_after && from != Phase::Hw {
            match from {
                Phase::Hw | Phase::Aggressive => Phase::Hw,
                Phase::Cautious => Phase::Aggressive,
                Phase::Serial => Phase::Cautious,
            }
        } else {
            return None;
        };
        if to == from {
            return None;
        }
        self.phase = to;
        self.bad = 0;
        self.good = 0;
        self.since = 0;
        Some((from, to))
    }
}

fn event_strategy() -> impl Strategy<Value = PhaseEvent> {
    prop_oneof![
        4 => Just(PhaseEvent::CleanCommit),
        2 => Just(PhaseEvent::DirtyCommit),
        2 => Just(PhaseEvent::CapacityAbort),
        2 => Just(PhaseEvent::ConflictAbort),
        3 => Just(PhaseEvent::SerialCommit),
    ]
}

fn params_strategy() -> impl Strategy<Value = PhasedParams> {
    (1u32..6, 1u32..6, 1u32..10, 1u32..4).prop_map(|(d, p, h, b)| PhasedParams {
        demote_after: d,
        promote_after: p,
        hysteresis: h,
        hw_retry_budget: b,
    })
}

fn one_level_apart(from: Phase, to: Phase) -> bool {
    to != from && (to == from.demote() || to == from.promote())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Random event scripts: the real machine and the reference model
    /// publish *identical* transition sequences, every transition moves
    /// exactly one lattice level, and at least `hysteresis` events
    /// separate consecutive transitions.
    #[test]
    fn scripts_match_reference_model_and_invariants(
        params in params_strategy(),
        script in proptest::collection::vec(event_strategy(), 1..400),
    ) {
        let shared = SharedModeState::new(params);
        let mut model = RefModel::new(params);
        let mut events_since_transition = 0u32;
        for (i, &ev) in script.iter().enumerate() {
            let got = shared.on_event(ev);
            let want = model.on_event(ev);
            prop_assert_eq!(got, want, "step {}: machine and model diverged", i);
            events_since_transition += 1;
            if let Some((from, to)) = got {
                prop_assert!(
                    one_level_apart(from, to),
                    "step {}: skip-level jump {:?} -> {:?}", i, from, to
                );
                prop_assert!(
                    events_since_transition >= params.hysteresis,
                    "step {}: transition after only {} events (hysteresis {})",
                    i, events_since_transition, params.hysteresis
                );
                events_since_transition = 0;
            }
            prop_assert_eq!(shared.phase(), model.phase, "step {}: phase drifted", i);
        }
    }

    /// Out of `Serial`, only serial commits promote: any script suffix of
    /// purely *optimistic* clean commits leaves a serial phase serial.
    #[test]
    fn stragglers_cannot_reopen_the_serial_phase(
        params in params_strategy(),
        optimistic_commits in 1usize..200,
    ) {
        let shared = SharedModeState::new(params);
        // Drive straight down to Serial with bad events.
        while shared.phase() != Phase::Serial {
            shared.on_event(PhaseEvent::CapacityAbort);
        }
        for _ in 0..optimistic_commits {
            prop_assert_eq!(shared.on_event(PhaseEvent::CleanCommit), None);
            prop_assert_eq!(shared.phase(), Phase::Serial);
        }
    }

    /// Recovery after quiescence: from the state any random script leaves
    /// behind, a long enough run of clean outcomes (serial commits while
    /// serial, clean commits otherwise) always climbs back to `Hw`, one
    /// level at a time.
    #[test]
    fn quiescence_always_recovers_to_hw(
        params in params_strategy(),
        script in proptest::collection::vec(event_strategy(), 0..200),
    ) {
        let shared = SharedModeState::new(params);
        for &ev in &script {
            shared.on_event(ev);
        }
        let worst = (params.hysteresis.max(params.promote_after) as usize + 1) * 4;
        let mut climbed = Vec::new();
        for _ in 0..worst {
            let ev = if shared.phase() == Phase::Serial {
                PhaseEvent::SerialCommit
            } else {
                PhaseEvent::CleanCommit
            };
            if let Some(tr) = shared.on_event(ev) {
                climbed.push(tr);
            }
            if shared.phase() == Phase::Hw {
                break;
            }
        }
        prop_assert_eq!(shared.phase(), Phase::Hw, "no recovery after {} clean events", worst);
        for &(from, to) in &climbed {
            prop_assert_eq!(to, from.promote(), "recovery demoted: {:?} -> {:?}", from, to);
        }
    }

    /// The serial token is exclusive and the phase drains: with `n`
    /// optimistic transactions in flight and `m` serial entrants racing,
    /// exactly one entrant holds the token at a time, and it may only
    /// proceed once every optimistic entrant has exited.
    #[test]
    fn serial_drains_to_exactly_one_token_holder(
        params in params_strategy(),
        optimistic in 0usize..12,
        entrants in 1u64..8,
    ) {
        let shared = SharedModeState::new(params);
        // Optimistic transactions enter while the phase is still open.
        for _ in 0..optimistic {
            let w = shared.word();
            prop_assert!(shared.cas_enter(w, w).is_ok());
        }
        while shared.phase() != Phase::Serial {
            shared.on_event(PhaseEvent::ConflictAbort);
        }
        // New optimistic entry is refused by protocol (the entry loop
        // checks the phase first); a stale CAS from before the
        // publication must fail outright because the epoch moved.
        let stale = (optimistic as u64) * ACTIVE_ONE;
        prop_assert!(shared.cas_enter(stale, stale).is_err(), "stale entry CAS succeeded");

        // Exactly one of the racing entrants acquires the token.
        let ids: Vec<u64> = (0..entrants).map(|i| (i << 1) | 1).collect();
        let winners: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|&id| shared.try_acquire_token(id))
            .collect();
        prop_assert_eq!(winners.len(), 1, "token not exclusive: {:?}", winners);
        prop_assert_eq!(shared.token_holder(), winners[0]);
        for &id in &ids {
            if id != winners[0] {
                prop_assert!(!shared.try_acquire_token(id));
            }
        }

        // The winner must wait for the drain...
        let mut active = SharedModeState::active_count(shared.word());
        prop_assert_eq!(active, optimistic as u64);
        while active > 0 {
            shared.exit_optimistic();
            active -= 1;
        }
        prop_assert_eq!(SharedModeState::active_count(shared.word()), 0);

        // ...and once it releases, the next entrant can take over.
        shared.release_token(winners[0]);
        prop_assert_eq!(shared.token_holder(), 0);
        let next = (entrants << 1) | 1;
        prop_assert!(shared.try_acquire_token(next));
        shared.release_token(next);
    }

    /// `refresh_view` (unmutated) adopts the freshly observed word
    /// wholesale, so a retry always re-examines a raced-in publication.
    #[test]
    fn refresh_view_adopts_the_current_word(seen in any::<u64>(), cur in any::<u64>()) {
        prop_assert_eq!(refresh_view(seen, cur), cur);
        prop_assert_eq!(Phase::decode(refresh_view(seen, cur)), Phase::decode(cur));
    }
}

// ---------------------------------------------------------------------------
// End-to-end simulator smoke: the full entry/drain protocol, serial
// phase included, on a real multi-core machine.
// ---------------------------------------------------------------------------

/// Hair-trigger params: every bad event demotes, so a contended counter
/// drives the scheme all the way to `Serial`; `promote_after` is large
/// enough that the phase stays serial once reached.
fn hair_trigger() -> PhasedParams {
    PhasedParams {
        demote_after: 1,
        promote_after: 64,
        hysteresis: 1,
        hw_retry_budget: 2,
    }
}

fn run_phased_counter(cores: usize, iters: u64, params: PhasedParams) -> (u64, TxnStats) {
    let cfg = StmConfig::hastm(Granularity::CacheLine, ModePolicy::Phased(params));
    let mut m = Machine::new(MachineConfig::with_cores(cores));
    let rt = StmRuntime::new(&mut m, cfg);
    let counter: ObjRef = m.run_one(|cpu| TxThread::new(&rt, cpu).alloc_obj(1)).0;

    let rt_ref = &rt;
    let merged = Mutex::new(TxnStats::default());
    let merged_ref = &merged;
    let mut workers: Vec<WorkerFn<'_>> = Vec::new();
    for _ in 0..cores {
        workers.push(Box::new(move |cpu: &mut hastm_sim::Cpu| {
            let mut tx = TxThread::new(rt_ref, cpu);
            for _ in 0..iters {
                tx.atomic(|tx| {
                    let v = tx.read_word(counter, 0)?;
                    tx.cpu().tick(20);
                    tx.write_word(counter, 0, v + 1)
                });
            }
            merged_ref.lock().unwrap().merge(tx.stats());
        }));
    }
    m.run(workers);

    let total = m.peek_u64(counter.word(0));
    (total, merged.into_inner().unwrap())
}

/// The whole protocol under real simulated contention: the counter sum
/// is exact (serial execution is sound), the scheme demoted into the
/// serial phase and committed irrevocable transactions there, and every
/// begin is accounted to exactly one phase.
#[test]
fn phased_counter_is_exact_and_reaches_the_serial_phase() {
    let cores = 4;
    let iters = 40u64;
    let (total, st) = run_phased_counter(cores, iters, hair_trigger());
    assert_eq!(total, cores as u64 * iters, "lost updates under Phased");
    assert_eq!(st.commits, cores as u64 * iters);
    assert!(st.phase_transitions > 0, "no transitions despite hair-trigger params");
    assert!(
        st.serial_commits > 0,
        "contention never reached the serial phase: {st:?}"
    );
    assert!(st.phase_begins[Phase::Serial.idx()] >= st.serial_commits);
    let begins: u64 = st.phase_begins.iter().sum();
    assert_eq!(
        begins,
        st.commits + st.aborts(),
        "begins not partitioned by phase"
    );
}

/// Default params on the same workload: still exact, and with the full
/// hysteresis window the scheme must not ping-pong — the transition
/// count stays far below the event count.
#[test]
fn phased_counter_is_exact_under_default_params() {
    let cores = 4;
    let iters = 40u64;
    let (total, st) = run_phased_counter(cores, iters, PhasedParams::default());
    assert_eq!(total, cores as u64 * iters, "lost updates under Phased");
    let events = st.commits + st.aborts();
    assert!(
        st.phase_transitions <= events / u64::from(PhasedParams::default().hysteresis) + 1,
        "transitions {} exceed the hysteresis ceiling for {} events",
        st.phase_transitions,
        events
    );
}
