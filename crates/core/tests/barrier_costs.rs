//! Cost-shape tests: the paper's headline micro-claims about barrier
//! costs, checked in cycles on the default cost model.

use hastm::{Granularity, ModePolicy, StmConfig, StmRuntime, TxThread};
use hastm_sim::{Machine, MachineConfig};

#[test]
fn fast_path_is_much_cheaper_than_slow_path() {
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(
        &mut m,
        StmConfig::hastm(Granularity::CacheLine, ModePolicy::NaiveAggressive),
    );
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let o = tx.alloc_obj(2);
        tx.atomic(|tx| {
            tx.read_word(o, 0)?;
            Ok(())
        });
        tx.atomic(|tx| {
            assert_eq!(tx.mode(), hastm::Mode::Aggressive);
            let t0 = tx.cpu().now();
            tx.read_word(o, 0)?; // slow: marks were cleared at begin
            let slow = tx.cpu().now() - t0;
            let t1 = tx.cpu().now();
            tx.read_word(o, 1)?; // fast: same line now marked
            let fast = tx.cpu().now() - t1;
            assert!(
                fast * 2 <= slow,
                "fast path ({fast}) must be well under slow path ({slow})"
            );
            assert!(fast <= 8, "fast path is ~2 instructions, got {fast} cycles");
            Ok(())
        });
        assert_eq!(tx.stats().read_fast_path, 1);
    });
}

#[test]
fn steady_state_read_cost_tracks_reuse() {
    // With 50% same-line reuse, HASTM's average warm read must be well
    // below the base STM's (~12+ cycle) barrier.
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(
        &mut m,
        StmConfig::hastm(Granularity::CacheLine, ModePolicy::SingleThreadAggressive),
    );
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let objs: Vec<_> = (0..64).map(|_| tx.alloc_obj(7)).collect();
        // Warm pass (also flips the mode controller to aggressive).
        tx.atomic(|tx| {
            for o in &objs {
                tx.read_word(*o, 0)?;
            }
            Ok(())
        });
        let t0 = tx.cpu().now();
        tx.atomic(|tx| {
            for o in &objs {
                tx.read_word(*o, 0)?; // slow (first touch this txn)
                tx.read_word(*o, 1)?; // fast (same line)
            }
            Ok(())
        });
        let per_read = (tx.cpu().now() - t0) as f64 / 128.0;
        assert!(
            per_read < 12.0,
            "mixed warm read cost should be < 12 cycles, got {per_read:.1}"
        );
    });
}

#[test]
fn aggressive_validation_is_constant_time() {
    // Aggressive commit validation reads one counter regardless of read-set
    // size; STM commit validation walks the read set.
    fn commit_cost(cfg: StmConfig, reads: u32) -> u64 {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, cfg);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let objs: Vec<_> = (0..reads).map(|_| tx.alloc_obj(1)).collect();
            // Warm caches + mode controller.
            for _ in 0..2 {
                tx.atomic(|tx| {
                    for o in &objs {
                        tx.read_word(*o, 0)?;
                    }
                    Ok(())
                });
            }
            let before = tx.stats().breakdown.validate;
            tx.atomic(|tx| {
                for o in &objs {
                    tx.read_word(*o, 0)?;
                }
                Ok(())
            });
            tx.stats().breakdown.validate - before
        })
        .0
    }
    let stm_small = commit_cost(StmConfig::stm(Granularity::CacheLine), 16);
    let stm_big = commit_cost(StmConfig::stm(Granularity::CacheLine), 128);
    assert!(
        stm_big > stm_small * 4,
        "STM validation scales with read set: {stm_small} -> {stm_big}"
    );
    let hastm_cfg = StmConfig::hastm(Granularity::CacheLine, ModePolicy::SingleThreadAggressive);
    let hastm_small = commit_cost(hastm_cfg.clone(), 16);
    let hastm_big = commit_cost(hastm_cfg, 128);
    // 8x the reads only adds a few periodic counter checks (~1-2 cycles
    // each), never a read-set walk.
    assert!(
        hastm_big <= hastm_small + 20,
        "HASTM validation is (near) constant: {hastm_small} -> {hastm_big}"
    );
    assert!(hastm_big < stm_big / 10, "HASTM commit validation is cheap");
}
