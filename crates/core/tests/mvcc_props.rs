//! Property tests for multi-version concurrency: the committed-version
//! store must agree with an unbounded host-side history model, snapshot
//! scans must never abort or tear under random simulated interleavings,
//! and `Versioning::Multi` must be observationally equivalent to
//! `Versioning::Single` wherever the two can be compared exactly.

#![cfg(not(feature = "mvcc-seeded-bug"))]

use std::collections::HashMap;

use hastm::{Granularity, ObjRef, StmConfig, StmRuntime, TxThread, Versioning, VersionStore};
use hastm_sim::{Machine, MachineConfig, WorkerFn};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// 1. VersionStore vs an unbounded reference history.
// ---------------------------------------------------------------------------

const ADDRS: u64 = 6;

/// One step of a random version-store script.
#[derive(Clone, Debug)]
enum StoreOp {
    /// Seed `addr` with a pre-image (first seed wins, like the barrier).
    Seed { addr: u64, val: u64 },
    /// Commit-publish a write set (later duplicates win).
    Commit { writes: Vec<(u64, u64)> },
    /// Register a read-only transaction at the current stamp.
    Register,
    /// Deregister one live reader (index modulo the live count).
    Deregister { pick: usize },
    /// Compare every `(live reader, addr)` read against the model.
    ReadAll,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        2 => (0..ADDRS, any::<u64>()).prop_map(|(addr, val)| StoreOp::Seed { addr, val }),
        4 => proptest::collection::vec((0..ADDRS, any::<u64>()), 1..4)
            .prop_map(|writes| StoreOp::Commit { writes }),
        2 => Just(StoreOp::Register),
        2 => any::<usize>().prop_map(|pick| StoreOp::Deregister { pick }),
        3 => Just(StoreOp::ReadAll),
    ]
}

/// Unbounded committed history: exactly what the store would hold with
/// infinite ring depth and no reclamation.
#[derive(Default)]
struct History {
    rings: HashMap<u64, Vec<(u64, u64)>>,
    stamp: u64,
}

impl History {
    fn seed(&mut self, addr: u64, val: u64) {
        self.rings.entry(addr).or_insert_with(|| vec![(0, val)]);
    }

    fn commit(&mut self, writes: &[(u64, u64)]) {
        self.stamp += 1;
        for &(addr, val) in writes {
            let ring = self.rings.entry(addr).or_default();
            match ring.last_mut() {
                Some(last) if last.0 == self.stamp => last.1 = val,
                _ => ring.push((self.stamp, val)),
            }
        }
    }

    fn read(&self, addr: u64, start: u64) -> Option<u64> {
        let ring = self.rings.get(&addr)?;
        let idx = ring.partition_point(|&(stamp, _)| stamp <= start);
        idx.checked_sub(1).map(|i| ring[i].1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every read a registered (pinned) reader can issue returns exactly
    /// what the unbounded history says — reclamation may drop ring
    /// entries, but never one a live or fresh reader can resolve to, and
    /// a returned value is always a committed (or seeded pre-image)
    /// value, never an invented or reclaimed one.
    #[test]
    fn store_reads_match_unbounded_history(
        depth in 1usize..5,
        ops in proptest::collection::vec(store_op(), 1..40),
    ) {
        fn check_reader(
            store: &VersionStore,
            model: &History,
            start: u64,
        ) -> Result<(), TestCaseError> {
            for addr in 0..ADDRS {
                prop_assert_eq!(
                    store.snapshot_read(addr, start),
                    model.read(addr, start),
                    "addr {} at start {} diverged from the history model",
                    addr,
                    start
                );
            }
            Ok(())
        }

        let store = VersionStore::new(depth);
        let mut model = History::default();
        let mut live: Vec<u64> = Vec::new();

        for op in &ops {
            match op {
                StoreOp::Seed { addr, val } => {
                    store.seed(*addr, *val);
                    model.seed(*addr, *val);
                }
                StoreOp::Commit { writes } => {
                    let stamp = store.commit_publish(writes);
                    model.commit(writes);
                    prop_assert_eq!(stamp, model.stamp, "stamps must stay in lockstep");
                }
                StoreOp::Register => {
                    let start = store.current_stamp();
                    store.register_ro(start);
                    live.push(start);
                }
                StoreOp::Deregister { pick } => {
                    if !live.is_empty() {
                        let start = live.swap_remove(pick % live.len());
                        store.deregister_ro(start);
                    }
                }
                StoreOp::ReadAll => {
                    for &start in &live {
                        check_reader(&store, &model, start)?;
                    }
                    // A fresh reader beginning now must see the newest
                    // committed state regardless of pruning.
                    let now = store.current_stamp();
                    store.register_ro(now);
                    check_reader(&store, &model, now)?;
                    store.deregister_ro(now);
                }
            }
        }

        // With every reader gone, pruning converges each ring to its
        // depth bound while the newest committed values survive.
        for start in live.drain(..) {
            store.deregister_ro(start);
        }
        store.prune_all();
        let now = store.current_stamp();
        for addr in 0..ADDRS {
            prop_assert!(store.ring_stamps(addr).len() <= depth);
            prop_assert_eq!(store.snapshot_read(addr, now), model.read(addr, now));
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Simulated interleavings: snapshot scans never abort, never tear.
// ---------------------------------------------------------------------------

const CELLS: usize = 6;

fn cell_init(i: usize) -> u64 {
    100 * (i as u64 + 1)
}

fn ledger_total() -> u64 {
    (0..CELLS).map(cell_init).sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Two writers make random zero-sum transfers while two read-only
    /// scanners (with random think time, so their snapshots span many
    /// commits) repeatedly sum the ledger under the deterministic
    /// simulator. Under `Multi(k)` — any k, including 1 — every scan
    /// must balance and not one may conflict-abort.
    #[test]
    fn snapshot_scans_never_abort_or_tear(
        k in 1usize..4,
        transfers in proptest::collection::vec(
            (0..CELLS, 0..CELLS, 1u64..10, 0u64..30),
            4..24,
        ),
        scans in 2usize..8,
        think in 0u64..40,
    ) {
        let cfg = StmConfig::stm(Granularity::CacheLine)
            .with_versioning(Versioning::Multi { k });
        let mut m = Machine::new(MachineConfig::with_cores(4));
        let rt = StmRuntime::new(&mut m, cfg);
        let cells: Vec<ObjRef> = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let cells: Vec<ObjRef> = (0..CELLS).map(|_| tx.alloc_obj(1)).collect();
            tx.atomic(|tx| {
                for (i, c) in cells.iter().enumerate() {
                    tx.write_word(*c, 0, cell_init(i))?;
                }
                Ok(())
            });
            cells
        }).0;

        let rt_ref = &rt;
        let cells_ref = &cells[..];
        let transfers_ref = &transfers[..];
        let mut workers: Vec<WorkerFn<'_>> = Vec::new();
        for w in 0..2usize {
            workers.push(Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                for (i, &(from, to, shift, tick)) in transfers_ref.iter().enumerate() {
                    if i % 2 != w || from == to {
                        continue;
                    }
                    tx.atomic(|tx| {
                        let vf = tx.read_word(cells_ref[from], 0)?;
                        let vt = tx.read_word(cells_ref[to], 0)?;
                        tx.cpu().tick(tick);
                        tx.write_word(cells_ref[from], 0, vf.wrapping_sub(shift))?;
                        tx.write_word(cells_ref[to], 0, vt.wrapping_add(shift))
                    });
                }
            }));
        }
        for _ in 0..2usize {
            workers.push(Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                for _ in 0..scans {
                    let sum = tx.atomic_ro(|tx| {
                        let mut sum = 0u64;
                        for c in cells_ref {
                            sum = sum.wrapping_add(tx.read_word(*c, 0)?);
                            tx.cpu().tick(think);
                        }
                        Ok(sum)
                    });
                    assert_eq!(sum, ledger_total(), "torn snapshot scan");
                }
                let st = tx.stats();
                assert_eq!(st.ro_commits, scans as u64);
                assert_eq!(st.ro_aborts, 0, "read-only snapshot aborted: {st:?}");
                assert!(st.snapshot_reads >= (scans * CELLS) as u64);
            }));
        }
        m.run(workers);

        let total = cells
            .iter()
            .fold(0u64, |acc, c| acc.wrapping_add(m.peek_u64(c.word(0))));
        prop_assert_eq!(total, ledger_total(), "ledger total drifted");
    }
}

// ---------------------------------------------------------------------------
// 3. Observational equivalence: Multi vs Single where exactly comparable.
// ---------------------------------------------------------------------------

/// One step of a random single-threaded program.
#[derive(Clone, Debug)]
enum ProgOp {
    /// One read-write transaction committing this write set.
    Txn { writes: Vec<(usize, u64)> },
    /// One read-only transaction observing every cell.
    Scan,
}

fn prog_op() -> impl Strategy<Value = ProgOp> {
    prop_oneof![
        3 => proptest::collection::vec((0..CELLS, any::<u64>()), 1..4)
            .prop_map(|writes| ProgOp::Txn { writes }),
        2 => Just(ProgOp::Scan),
    ]
}

/// Runs `prog` on one simulated core and returns every value the scans
/// observed plus the final cell contents.
fn run_prog(versioning: Versioning, prog: &[ProgOp]) -> (Vec<u64>, Vec<u64>) {
    let cfg = StmConfig::stm(Granularity::CacheLine).with_versioning(versioning);
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, cfg);
    let (cells, observed) = m
        .run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let cells: Vec<ObjRef> = (0..CELLS).map(|_| tx.alloc_obj(1)).collect();
            tx.atomic(|tx| {
                for (i, c) in cells.iter().enumerate() {
                    tx.write_word(*c, 0, cell_init(i))?;
                }
                Ok(())
            });
            let mut observed = Vec::new();
            let mut scans = 0u64;
            for op in prog {
                match op {
                    ProgOp::Txn { writes } => tx.atomic(|tx| {
                        for &(cell, val) in writes {
                            tx.write_word(cells[cell], 0, val)?;
                        }
                        Ok(())
                    }),
                    ProgOp::Scan => {
                        scans += 1;
                        tx.atomic_ro(|tx| {
                            for c in &cells {
                                observed.push(tx.read_word(*c, 0)?);
                            }
                            Ok(())
                        });
                    }
                }
            }
            if versioning.is_multi() {
                assert_eq!(tx.stats().ro_commits, scans);
                assert_eq!(tx.stats().ro_aborts, 0);
            }
            (cells, observed)
        })
        .0;
    let finals = cells.iter().map(|c| m.peek_u64(c.word(0))).collect();
    (observed, finals)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// On one thread the snapshot path is fully observable: every scan
    /// must read exactly what `Single` reads (the last committed write),
    /// for every ring depth, and the final memory must be identical.
    /// This is the `Multi(1) ≡ Single` equivalence of the spec, extended
    /// to arbitrary depths where single-threaded programs can tell no
    /// difference either.
    #[test]
    fn single_thread_multi_is_observationally_single(
        prog in proptest::collection::vec(prog_op(), 1..20),
    ) {
        let baseline = run_prog(Versioning::Single, &prog);

        // Host model of last-write-wins, to anchor the baseline itself.
        let mut cells: Vec<u64> = (0..CELLS).map(cell_init).collect();
        let mut expect = Vec::new();
        for op in &prog {
            match op {
                ProgOp::Txn { writes } => {
                    for &(cell, val) in writes {
                        cells[cell] = val;
                    }
                }
                ProgOp::Scan => expect.extend(cells.iter().copied()),
            }
        }
        prop_assert_eq!(&baseline.0, &expect, "Single diverged from last-write-wins");
        prop_assert_eq!(&baseline.1, &cells, "Single final state diverged");

        for k in 1..=3usize {
            let multi = run_prog(Versioning::Multi { k }, &prog);
            prop_assert_eq!(
                &multi.0,
                &baseline.0,
                "Multi({}) scans observed different values than Single",
                k
            );
            prop_assert_eq!(
                &multi.1,
                &baseline.1,
                "Multi({}) final state diverged from Single",
                k
            );
        }
    }
}
