//! End-to-end tests for contention management policies, `orElse`
//! composition, record-table aliasing, and log-overflow behavior.

use hastm::{
    Abort, ContentionPolicy, Granularity, ModePolicy, ObjRef, StmConfig, StmRuntime, TxThread,
};
use hastm_sim::{Machine, MachineConfig, WorkerFn};

/// Both contention policies make progress under a two-core hot-spot.
#[test]
fn contention_policies_all_make_progress() {
    for policy in [
        ContentionPolicy::Suicide,
        ContentionPolicy::Backoff { max_probes: 4 },
        ContentionPolicy::Backoff { max_probes: 64 },
    ] {
        let mut cfg = StmConfig::stm(Granularity::Object);
        cfg.contention = policy;
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let rt = StmRuntime::new(&mut m, cfg);
        let (o, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.alloc_obj(1)
        });
        let rt_ref = &rt;
        m.run(
            (0..2)
                .map(|_| {
                    Box::new(move |cpu: &mut hastm_sim::Cpu| {
                        let mut tx = TxThread::new(rt_ref, cpu);
                        for _ in 0..40 {
                            tx.atomic(|tx| {
                                let v = tx.read_word(o, 0)?;
                                // Hold ownership for a while to force the
                                // other core into contention handling.
                                tx.cpu().tick(50);
                                tx.write_word(o, 0, v + 1)
                            });
                        }
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        assert_eq!(m.peek_u64(o.word(0)), 80, "policy {policy:?}");
    }
}

/// Suicide self-aborts instead of waiting; backoff waits the owner out.
#[test]
fn suicide_aborts_more_than_backoff() {
    fn aborts(policy: ContentionPolicy) -> u64 {
        let mut cfg = StmConfig::stm(Granularity::Object);
        cfg.contention = policy;
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let rt = StmRuntime::new(&mut m, cfg);
        let (o, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.alloc_obj(1)
        });
        let rt_ref = &rt;
        let total = std::sync::atomic::AtomicU64::new(0);
        let total_ref = &total;
        m.run(
            (0..2)
                .map(|_| {
                    Box::new(move |cpu: &mut hastm_sim::Cpu| {
                        let mut tx = TxThread::new(rt_ref, cpu);
                        for _ in 0..30 {
                            tx.atomic(|tx| {
                                let v = tx.read_word(o, 0)?;
                                tx.write_word(o, 0, v)?;
                                tx.cpu().tick(200); // long ownership window
                                Ok(v)
                            });
                        }
                        total_ref.fetch_add(
                            tx.stats().aborts_conflict,
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        total.into_inner()
    }
    let suicide = aborts(ContentionPolicy::Suicide);
    let patient = aborts(ContentionPolicy::Backoff { max_probes: 64 });
    assert!(
        suicide > patient,
        "suicide ({suicide}) should abort more than patient backoff ({patient})"
    );
}

/// `orElse` composes three alternatives; the first non-retrying branch
/// wins and earlier branches leave no side effects.
#[test]
fn or_else_chains_compose() {
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(
        &mut m,
        StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive),
    );
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let flags = tx.alloc_obj(3);
        let out = tx.alloc_obj(1);
        tx.atomic(|tx| tx.write_word(flags, 1, 1)); // only option B enabled
        let taken = tx.atomic(|tx| {
            tx.or_else(
                |tx| {
                    tx.write_word(out, 0, 0xA)?; // speculative side effect
                    if tx.read_word(flags, 0)? == 0 {
                        tx.retry_now()
                    } else {
                        Ok('A')
                    }
                },
                |tx| {
                    tx.or_else(
                        |tx| {
                            tx.write_word(out, 0, 0xB)?;
                            if tx.read_word(flags, 1)? == 0 {
                                tx.retry_now()
                            } else {
                                Ok('B')
                            }
                        },
                        |tx| {
                            tx.write_word(out, 0, 0xC)?;
                            Ok('C')
                        },
                    )
                },
            )
        });
        assert_eq!(taken, 'B');
        let v = tx.atomic(|tx| tx.read_word(out, 0));
        assert_eq!(v, 0xB, "branch A's side effect was rolled back");
    });
}

/// Cache-line granularity hashes distinct addresses 256 KiB apart onto the
/// same record (bits 6–17): aliased false conflicts must stay *correct*.
#[test]
fn record_table_aliasing_is_safe() {
    let mut m = Machine::new(MachineConfig::with_cores(2));
    let rt = StmRuntime::new(&mut m, StmConfig::stm(Granularity::CacheLine));
    // Two objects exactly 256 KiB apart share a transaction record.
    let heap = rt.heap().clone();
    let a_base = heap.alloc_aligned(16, 64);
    let mut b_base = heap.alloc_aligned(16, 64);
    while (b_base.0 & 0x3ffc0) != (a_base.0 & 0x3ffc0) {
        b_base = heap.alloc_aligned(16, 64);
    }
    assert_ne!(a_base, b_base);
    assert_eq!(
        rt.rec_table().record_for(a_base),
        rt.rec_table().record_for(b_base),
        "setup: the two objects must alias"
    );
    let a = ObjRef(hastm_sim::Addr(a_base.0 - 8));
    let b = ObjRef(hastm_sim::Addr(b_base.0 - 8));
    let rt_ref = &rt;
    m.run(vec![
        Box::new(move |cpu: &mut hastm_sim::Cpu| {
            let mut tx = TxThread::new(rt_ref, cpu);
            for _ in 0..50 {
                tx.atomic(|tx| {
                    let v = tx.read_word(a, 0)?;
                    tx.write_word(a, 0, v + 1)
                });
            }
        }) as WorkerFn<'_>,
        Box::new(move |cpu: &mut hastm_sim::Cpu| {
            let mut tx = TxThread::new(rt_ref, cpu);
            for _ in 0..50 {
                tx.atomic(|tx| {
                    let v = tx.read_word(b, 0)?;
                    tx.write_word(b, 0, v + 1)
                });
            }
        }) as WorkerFn<'_>,
    ]);
    assert_eq!(m.peek_u64(a.word(0)), 50);
    assert_eq!(m.peek_u64(b.word(0)), 50);
}

/// Log regions overflow into fresh chunks without corrupting transactions
/// (a transaction with far more reads than `log_capacity`).
#[test]
fn log_overflow_keeps_transactions_correct() {
    let mut cfg = StmConfig::stm(Granularity::Object);
    cfg.log_capacity = 8; // force overflow constantly
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, cfg);
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let objs: Vec<ObjRef> = (0..64).map(|_| tx.alloc_obj(1)).collect();
        tx.atomic(|tx| {
            for (i, o) in objs.iter().enumerate() {
                tx.write_word(*o, 0, i as u64)?;
            }
            Ok(())
        });
        let sum = tx.atomic(|tx| {
            let mut s = 0;
            for o in &objs {
                s += tx.read_word(*o, 0)?;
            }
            Ok(s)
        });
        assert_eq!(sum, (0..64u64).sum());
    });
}

/// A user abort inside a *nested* scope that the parent converts into a
/// fallback path (abort-as-control-flow, §2's user-initiated aborts).
#[test]
fn nested_user_abort_as_control_flow() {
    let mut m = Machine::new(MachineConfig::default());
    let rt = StmRuntime::new(&mut m, StmConfig::hastm_cautious(Granularity::Object));
    m.run_one(|cpu| {
        let mut tx = TxThread::new(&rt, cpu);
        let o = tx.alloc_obj(2);
        let outcome = tx.atomic(|tx| {
            let tried: Result<(), Abort> = tx.nested(|tx| {
                tx.write_word(o, 0, 999)?;
                tx.abort_now() // business-rule failure
            });
            if tried.is_err() {
                tx.write_word(o, 1, 1)?; // record the failure instead
            }
            Ok(tried.is_err())
        });
        assert!(outcome);
        let (a, b) = tx.atomic(|tx| Ok((tx.read_word(o, 0)?, tx.read_word(o, 1)?)));
        assert_eq!(a, 0, "nested write rolled back");
        assert_eq!(b, 1, "fallback write committed");
    });
}
