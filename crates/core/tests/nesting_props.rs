//! Property tests for closed nesting with partial rollback: random trees
//! of nested scopes, writes, and aborts must leave memory exactly as a
//! host-side model predicts.

use hastm::{Abort, Granularity, ModePolicy, ObjRef, StmConfig, StmRuntime, TxResult, TxThread};
use hastm_sim::{Machine, MachineConfig};
use proptest::prelude::*;

/// One step of a randomly generated (possibly nested) transaction body.
#[derive(Clone, Debug)]
enum Step {
    /// Write `value` to cell `cell`.
    Write { cell: u8, value: u64 },
    /// Open a nested scope with the given body; `abort` makes it end with
    /// an explicit abort (partial rollback).
    Nested { body: Vec<Step>, abort: bool },
}

fn step(depth: u32) -> impl Strategy<Value = Step> {
    let write = (0..8u8, any::<u64>()).prop_map(|(cell, value)| Step::Write { cell, value });
    if depth == 0 {
        write.boxed()
    } else {
        prop_oneof![
            3 => write,
            1 => (
                proptest::collection::vec(step(depth - 1), 1..5),
                any::<bool>()
            )
                .prop_map(|(body, abort)| Step::Nested { body, abort }),
        ]
        .boxed()
    }
}

/// Applies steps to the real TM.
fn apply(tx: &mut TxThread<'_, '_>, cells: &[ObjRef], steps: &[Step]) -> TxResult<()> {
    for s in steps {
        match s {
            Step::Write { cell, value } => {
                tx.write_word(cells[*cell as usize], 0, *value)?;
            }
            Step::Nested { body, abort } => {
                let r: TxResult<()> = tx.nested(|tx| {
                    apply(tx, cells, body)?;
                    if *abort {
                        Err(Abort::Explicit)
                    } else {
                        Ok(())
                    }
                });
                match r {
                    Ok(()) => {}
                    Err(Abort::Explicit) => {} // partial rollback, continue
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(())
}

/// Applies steps to the host model (aborted nested scopes contribute
/// nothing).
fn model(state: &mut [u64; 8], steps: &[Step]) {
    for s in steps {
        match s {
            Step::Write { cell, value } => state[*cell as usize] = *value,
            Step::Nested { body, abort } => {
                let mut scratch = *state;
                model(&mut scratch, body);
                if !abort {
                    *state = scratch;
                }
            }
        }
    }
}

fn run_one(steps: &[Step], config: StmConfig, outer_abort: bool) {
    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(&mut machine, config);
    machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let cells: Vec<ObjRef> = (0..8).map(|_| tx.alloc_obj(1)).collect();
        // Committed baseline values.
        tx.atomic(|tx| {
            for (i, c) in cells.iter().enumerate() {
                tx.write_word(*c, 0, 1000 + i as u64)?;
            }
            Ok(())
        });
        let mut expect: [u64; 8] = std::array::from_fn(|i| 1000 + i as u64);
        if outer_abort {
            let r: Result<(), Abort> = tx.try_atomic(|tx| {
                apply(tx, &cells, steps)?;
                tx.abort_now()
            });
            assert_eq!(r, Err(Abort::Explicit));
            // Everything rolls back: expect stays at the baseline.
        } else {
            tx.atomic(|tx| apply(tx, &cells, steps));
            model(&mut expect, steps);
        }
        tx.atomic(|tx| {
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(
                    tx.read_word(*c, 0)?,
                    expect[i],
                    "cell {i} diverged from the nesting model"
                );
            }
            Ok(())
        });
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn nested_rollback_matches_model_stm(
        steps in proptest::collection::vec(step(3), 1..12),
        outer_abort in any::<bool>(),
    ) {
        run_one(&steps, StmConfig::stm(Granularity::CacheLine), outer_abort);
    }

    #[test]
    fn nested_rollback_matches_model_hastm(
        steps in proptest::collection::vec(step(3), 1..12),
        outer_abort in any::<bool>(),
    ) {
        run_one(
            &steps,
            StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive),
            outer_abort,
        );
    }

    #[test]
    fn nested_rollback_matches_model_hastm_cacheline(
        steps in proptest::collection::vec(step(2), 1..10),
        outer_abort in any::<bool>(),
    ) {
        run_one(
            &steps,
            StmConfig::hastm_cautious(Granularity::CacheLine),
            outer_abort,
        );
    }
}
