//! Mutation test for the trace/stats reconciliation.
//!
//! The `seeded-trace-bug` cargo feature plants a deliberate observability
//! bug in the memory system: when an inclusive-L2 back-invalidation
//! discards a marked L1 line, the `marked_lines_lost` counter still bumps
//! but the `MarkDiscard` trace event is silently dropped. The simulation
//! itself is untouched — every run report, mark counter, and fingerprint
//! stays correct — so *only* [`hastm_sim::reconcile_mark_discards`] can
//! catch it. This proves the reconciliation has teeth: a trace that merely
//! "looks plausible" would pass; one cross-checked event-for-event against
//! the counters cannot.
//!
//! ```text
//! # Must pass (reconciliation agrees with the counters):
//! cargo test -p hastm-sim --test trace_mutation
//!
//! # Must also pass (the planted bug is caught):
//! cargo test -p hastm-sim --features seeded-trace-bug --test trace_mutation
//! ```

use hastm_sim::{
    reconcile_mark_discards, Addr, FaultEvent, FaultKind, Machine, MachineConfig, TraceConfig,
};

/// One core marks a line; a scheduled fault back-invalidates it out of the
/// inclusive L2. Returns the reconciliation verdict for the run's trace.
fn back_invalidation_reconciliation() -> Result<(), String> {
    // Op 1 = reset counter, op 2 = marking load; the fault fires once op 2
    // completes and back-invalidates the only resident L2 line — the
    // marked one (mirrors `fault_plan_evicts_and_back_invalidates`).
    let mut m = Machine::new(MachineConfig {
        trace: Some(TraceConfig::default()),
        faults: vec![FaultEvent {
            at_op: 2,
            core: 0,
            kind: FaultKind::BackInvalidate { nth: 0 },
        }],
        ..MachineConfig::default()
    });
    let (counter, report) = m.run_one(|cpu| {
        cpu.reset_mark_counter();
        cpu.load_set_mark_u64(Addr(0x700));
        cpu.read_mark_counter()
    });
    assert_eq!(
        counter, 1,
        "the back-invalidation must discard the marked line either way \
         (the planted bug drops only the trace event, never the counter)"
    );
    let lost: Vec<u64> = report.cores.iter().map(|c| c.marked_lines_lost).collect();
    assert_eq!(lost, vec![1], "exactly one marked line lost on core 0");
    let log = m.take_trace().expect("tracing was armed");
    reconcile_mark_discards(&log, &lost)
}

#[cfg(not(feature = "seeded-trace-bug"))]
mod unmutated {
    #[test]
    fn reconciliation_passes_on_the_honest_tracer() {
        super::back_invalidation_reconciliation()
            .expect("MarkDiscard events must match marked_lines_lost");
    }
}

#[cfg(feature = "seeded-trace-bug")]
mod mutated {
    #[test]
    fn reconciliation_catches_the_dropped_event() {
        let err = super::back_invalidation_reconciliation()
            .expect_err("the planted dropped-event bug must be detected");
        assert!(
            err.contains("core 0"),
            "the mismatch must name the affected core: {err}"
        );
    }
}
