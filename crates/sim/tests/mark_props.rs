//! Property tests for the mark-bit ISA semantics (§3).
//!
//! These drive [`hastm_sim::hierarchy::MemSystem`] directly — the same
//! level the unit tests use — so each property can force the exact loss
//! event it is about (remote store, capacity eviction, inclusive-L2
//! back-invalidation) without fighting the scheduler. The paper's contract
//! under test:
//!
//! * losing a marked line — however it is lost — bumps the owning core's
//!   mark counter **exactly once per filter that marked it**, and the line
//!   tests unmarked afterwards;
//! * `loadtestmark` never creates marks, and unmarked traffic never bumps
//!   the counter;
//! * `resetmarkall` clears every mark and bumps the counter once;
//! * the §3.3 default implementation ([`IsaLevel::Default`]) keeps the
//!   counter conservative: it never reports "nothing lost" after any
//!   mark-producing operation, so software always revalidates.

use hastm_sim::config::MachineConfig;
use hastm_sim::hierarchy::{AccessKind, MarkOp, MemSystem};
use hastm_sim::{Addr, CacheConfig, FilterId, IsaLevel, LINE_SIZE, SUBBLOCK_SIZE};
use proptest::prelude::*;

const F: FilterId = FilterId::READ;

/// A machine with enough cores and default caches.
fn sys(cores: usize) -> MemSystem {
    MemSystem::new(&MachineConfig::with_cores(cores))
}

/// A machine with a tiny direct-mapped L1 so organic evictions are easy to
/// provoke (4 sets x 1 way; lines 0, 4, 8, ... collide in set 0).
fn tiny_sys(cores: usize) -> MemSystem {
    MemSystem::new(&MachineConfig {
        cores,
        l1: CacheConfig::new(4, 1),
        l2: CacheConfig::new(16, 2),
        inclusive_l2: true,
        ..MachineConfig::default()
    })
}

/// Address of line `i`, word-offset `sub` sub-blocks in.
fn addr(line: u64, sub: u64) -> Addr {
    Addr(line * LINE_SIZE + sub * SUBBLOCK_SIZE)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Losing a marked line to a remote store bumps the counter exactly
    /// once, regardless of how many sub-blocks of that line were marked.
    #[test]
    fn remote_store_bumps_once_per_marked_line(
        line in 0..64u64,
        subs in proptest::collection::vec(0..4u64, 1..5),
    ) {
        let mut s = sys(2);
        s.reset_mark_counter(0, F);
        for &sub in &subs {
            s.mark_access(0, addr(line, sub), 8, MarkOp::Set, F);
        }
        s.access(1, addr(line, 0), AccessKind::Store);
        prop_assert_eq!(s.mark_counter(0, F), 1, "one line lost => one bump");
        // The mark state died with the line.
        let (_, marked) = s.mark_access(0, addr(line, subs[0]), 8, MarkOp::Test, F);
        prop_assert!(!marked, "marks do not survive invalidation");
    }

    /// Injected L1 evictions and inclusive-L2 back-invalidations are
    /// indistinguishable from organic losses: each marked line lost bumps
    /// the counter once, and unmarked lines lost bump nothing.
    #[test]
    fn injected_pressure_counts_marked_losses_exactly(
        marked_lines in proptest::collection::vec(0..16u64, 1..4),
        unmarked_lines in proptest::collection::vec(16..32u64, 1..4),
        use_back_invalidation in any::<bool>(),
    ) {
        let mut s = sys(1);
        s.reset_mark_counter(0, F);
        let mut distinct_marked = std::collections::BTreeSet::new();
        for &l in &marked_lines {
            s.mark_access(0, addr(l, 0), 8, MarkOp::Set, F);
            distinct_marked.insert(l);
        }
        for &l in &unmarked_lines {
            s.access(0, addr(l, 0), AccessKind::Load);
        }
        // Drain the whole hierarchy through the injection hooks.
        let mut guard = 0;
        loop {
            let evicted = if use_back_invalidation {
                s.inject_back_invalidation(0)
            } else {
                s.inject_l1_eviction(0, 0)
            };
            if !evicted {
                // Back-invalidation only reaches lines still in L2; finish
                // off any L1 residue directly.
                if !s.inject_l1_eviction(0, 0) {
                    break;
                }
            }
            guard += 1;
            prop_assert!(guard < 256, "injection loop did not terminate");
        }
        prop_assert_eq!(
            s.mark_counter(0, F),
            distinct_marked.len() as u64,
            "every distinct marked line bumps once; unmarked lines never do"
        );
    }

    /// Organic capacity evictions in a tiny cache bump the counter for the
    /// displaced marked line, and the re-fetched line tests unmarked.
    #[test]
    fn organic_eviction_loses_marks(way_conflicts in 1..6u64) {
        let mut s = tiny_sys(1);
        s.reset_mark_counter(0, F);
        s.mark_access(0, addr(0, 0), 8, MarkOp::Set, F);
        // Lines 4, 8, 12, ... all map to set 0 of the 4x1 L1.
        for i in 1..=way_conflicts {
            s.access(0, addr(4 * i, 0), AccessKind::Load);
        }
        prop_assert_eq!(s.mark_counter(0, F), 1, "displaced marked line");
        let (_, marked) = s.mark_access(0, addr(0, 0), 8, MarkOp::Test, F);
        prop_assert!(!marked, "refetched line comes back unmarked");
    }

    /// `loadtestmark` is read-only: arbitrary test traffic neither marks
    /// sub-blocks nor bumps the counter, and plain loads/stores on the
    /// marking core keep resident marks intact.
    #[test]
    fn tests_and_plain_traffic_do_not_perturb_marks(
        probes in proptest::collection::vec((0..8u64, 0..4u64, 0..3u8), 0..32),
    ) {
        let mut s = sys(1);
        s.reset_mark_counter(0, F);
        s.mark_access(0, addr(0, 0), 8, MarkOp::Set, F);
        for &(line, sub, kind) in &probes {
            match kind {
                0 => { s.mark_access(0, addr(line, sub), 8, MarkOp::Test, F); }
                1 => { s.access(0, addr(line, sub), AccessKind::Load); }
                _ => { s.access(0, addr(line, sub), AccessKind::Store); }
            }
        }
        // The default L1 (64 sets) holds all 8 probe lines: nothing was
        // evicted, so the original mark must still be there and the
        // counter untouched.
        prop_assert_eq!(s.mark_counter(0, F), 0);
        let (_, marked) = s.mark_access(0, addr(0, 0), 8, MarkOp::Test, F);
        prop_assert!(marked);
        // And no probe acquired a mark of its own.
        for &(line, sub, _) in &probes {
            if line == 0 && sub == 0 {
                continue;
            }
            let (_, m) = s.mark_access(0, addr(line, sub), 8, MarkOp::Test, F);
            prop_assert!(!m, "probe of line {} sub {} must stay unmarked", line, sub);
        }
    }

    /// Sub-block granularity: marking one 16-byte sub-block marks exactly
    /// that sub-block, and `loadresetmark` clears exactly it — all with no
    /// counter traffic.
    #[test]
    fn subblock_marks_are_independent(line in 0..32u64, sub in 0..4u64) {
        let mut s = sys(1);
        s.reset_mark_counter(0, F);
        s.mark_access(0, addr(line, sub), 8, MarkOp::Set, F);
        for other in 0..4u64 {
            let (_, m) = s.mark_access(0, addr(line, other), 8, MarkOp::Test, F);
            prop_assert_eq!(m, other == sub);
        }
        s.mark_access(0, addr(line, sub), 8, MarkOp::Reset, F);
        let (_, m) = s.mark_access(0, addr(line, sub), 8, MarkOp::Test, F);
        prop_assert!(!m, "loadresetmark clears the mark");
        prop_assert_eq!(s.mark_counter(0, F), 0, "explicit reset is not a loss");
    }

    /// `resetmarkall` clears every mark the core placed and bumps the
    /// counter exactly once, however many lines were marked.
    #[test]
    fn resetmarkall_clears_everything_and_bumps_once(
        lines in proptest::collection::vec(0..16u64, 1..8),
    ) {
        let mut s = sys(1);
        s.reset_mark_counter(0, F);
        for &l in &lines {
            s.mark_access(0, addr(l, 0), 8, MarkOp::Set, F);
        }
        s.reset_mark_all(0, F);
        prop_assert_eq!(s.mark_counter(0, F), 1);
        for &l in &lines {
            let (_, m) = s.mark_access(0, addr(l, 0), 8, MarkOp::Test, F);
            prop_assert!(!m);
        }
    }

    /// §3.3 default implementation: with no mark state at all, the counter
    /// must stay conservative — after N mark-producing operations it reads
    /// at least N (here: exactly N), and `loadtestmark` always reports
    /// unmarked so software never skips validation.
    #[test]
    fn default_isa_is_conservative(
        ops in proptest::collection::vec((0..8u64, 0..2u8), 1..24),
    ) {
        let mut s = MemSystem::new(&MachineConfig {
            isa: IsaLevel::Default,
            ..MachineConfig::default()
        });
        s.reset_mark_counter(0, F);
        let mut produced = 0u64;
        for &(line, kind) in &ops {
            match kind {
                0 => {
                    s.mark_access(0, addr(line, 0), 8, MarkOp::Set, F);
                    produced += 1;
                }
                _ => {
                    s.reset_mark_all(0, F);
                    produced += 1;
                }
            }
            let (_, m) = s.mark_access(0, addr(line, 0), 8, MarkOp::Test, F);
            prop_assert!(!m, "default ISA never reports a mark");
        }
        prop_assert_eq!(s.mark_counter(0, F), produced);
    }

    /// The counter is monotone under losses: replaying any prefix of a
    /// loss-generating history never yields a larger counter than the full
    /// history (saturating, never-decreasing outside explicit resets).
    #[test]
    fn counter_is_monotone_across_losses(
        history in proptest::collection::vec((0..8u64, any::<bool>()), 1..16),
    ) {
        let mut s = sys(2);
        s.reset_mark_counter(0, F);
        let mut last = 0;
        for &(line, steal) in &history {
            s.mark_access(0, addr(line, 0), 8, MarkOp::Set, F);
            if steal {
                s.access(1, addr(line, 0), AccessKind::Store);
            }
            let now = s.mark_counter(0, F);
            prop_assert!(now >= last, "counter decreased: {} -> {}", last, now);
            last = now;
        }
    }
}
