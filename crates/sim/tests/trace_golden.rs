//! Golden-trace determinism tests.
//!
//! The event trace is an *observation* of the simulation, never a
//! participant: recording charges no cycles and gates no ops. Two
//! consequences are pinned here as golden properties:
//!
//! * **replay identity** — the same configuration and seed must produce a
//!   byte-identical event stream, run after run (the property that makes
//!   a trace file a faithful artifact of a replayed repro);
//! * **gate-mode identity** — the per-op and quantum gate admission modes
//!   are schedule-identical by construction, so their traces must match
//!   event-for-event, cycle-for-cycle, not merely "logically".

use hastm_sim::{
    Addr, Cpu, GateMode, Machine, MachineConfig, SchedulePolicy, TraceConfig, TraceLog, WorkerFn,
    LINE_SIZE,
};

const CORES: usize = 3;
const ROUNDS: u64 = 12;
/// Shared footprint small enough that the cores conflict constantly.
const FOOTPRINT_LINES: u64 = 8;

fn config(gate: GateMode, schedule: SchedulePolicy) -> MachineConfig {
    let mut mc = MachineConfig::with_cores(CORES);
    mc.gate = gate;
    mc.schedule = schedule;
    mc.trace = Some(TraceConfig::default());
    mc
}

/// A contended mark-heavy workload: every event class the memory system
/// emits (cache hits/misses, mark sets, mark-counter bumps, line losses
/// from remote writes) shows up in the trace.
fn workers<'env>() -> Vec<WorkerFn<'env>> {
    (0..CORES)
        .map(|tid| {
            Box::new(move |cpu: &mut Cpu| {
                cpu.reset_mark_counter();
                for i in 0..ROUNDS {
                    let addr = Addr(((tid as u64 * 5 + i) % FOOTPRINT_LINES) * LINE_SIZE);
                    cpu.store_u64(addr, tid as u64 ^ i);
                    let _ = cpu.load_set_mark_u64(addr);
                    let _ = cpu.load_test_mark_u64(addr);
                    let _ = cpu.load_u64(Addr(((i * 3) % FOOTPRINT_LINES) * LINE_SIZE));
                }
                let _ = cpu.read_mark_counter();
            }) as WorkerFn<'env>
        })
        .collect()
}

fn traced_run(gate: GateMode, schedule: SchedulePolicy) -> TraceLog {
    let mut machine = Machine::new(config(gate, schedule));
    machine.run(workers());
    machine.take_trace().expect("tracing was armed")
}

#[test]
fn same_config_and_seed_is_byte_identical() {
    for schedule in [
        SchedulePolicy::Deterministic,
        SchedulePolicy::Fuzzed { seed: 7 },
    ] {
        let a = traced_run(GateMode::Quantum, schedule);
        let b = traced_run(GateMode::Quantum, schedule);
        assert_eq!(a, b, "replayed trace diverged under {schedule:?}");
        // Belt and braces: the rendered form (what a golden file would
        // hold) is byte-identical too.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!a.dropped_any(), "this workload must fit the ring");
        assert!(a.total_events() > 0, "the workload must emit events");
    }
}

#[test]
fn perop_and_quantum_gates_trace_identically() {
    for schedule in [
        SchedulePolicy::Deterministic,
        SchedulePolicy::Fuzzed { seed: 3 },
        SchedulePolicy::Fuzzed { seed: 1234 },
    ] {
        let perop = traced_run(GateMode::PerOp, schedule);
        let quantum = traced_run(GateMode::Quantum, schedule);
        assert_eq!(
            perop, quantum,
            "gate modes must be trace-identical under {schedule:?}"
        );
    }
}

#[test]
fn gate_admissions_partition_the_op_sequence() {
    let log = traced_run(GateMode::Quantum, SchedulePolicy::Deterministic);
    let ops = log.gate_ops();
    let expected: Vec<u64> = (0..ops.len() as u64).collect();
    assert_eq!(
        ops, expected,
        "every gated op must be admitted exactly once, with no gaps"
    );
}

#[test]
fn rerun_on_one_machine_resets_the_trace() {
    // The recorder is reset at the start of every run: harvesting after a
    // second run must yield only the second run's events, and those must
    // equal a fresh machine's.
    let mut machine = Machine::new(config(GateMode::Quantum, SchedulePolicy::Deterministic));
    machine.run(workers());
    let first = machine.take_trace().expect("tracing was armed");
    machine.run(workers());
    let second = machine.take_trace().expect("tracing stays armed");
    // Cache and mark state persist across runs (by design), so the second
    // run's hit/miss/mark events differ — but both harvests must be
    // complete, self-consistent runs rather than concatenations: a
    // concatenated log would repeat gate admissions.
    assert_eq!(first.gate_ops(), second.gate_ops());
    assert!(second.total_events() > 0);
}
