//! Zero-per-access-allocation regression test.
//!
//! The simulator's hot paths — `MemSystem::access`/`mark_access`, watch
//! registration, `flush_caches`, and `Cpu` load/store/mark stepping — must
//! not allocate once structures are warm: the watch table is a flat
//! open-addressed array cleared by generation bump, the snapshot paths
//! reuse a scratch buffer, and sparse memory pages only allocate on first
//! touch. A counting `#[global_allocator]` (armed only around the hot
//! loops) turns any regression into a test failure.
//!
//! This file is a single-test integration binary on purpose: the global
//! allocator and its armed window are process-wide state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use hastm_sim::hierarchy::MemSystem;
use hastm_sim::{
    AccessKind, Addr, FilterId, LineId, Machine, MachineConfig, MarkOp, WatchKind, LINE_SIZE,
};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn armed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (r, ALLOCS.load(Ordering::SeqCst))
}

const LINES: u64 = 24;

#[test]
fn hot_paths_do_not_allocate_once_warm() {
    // ---- MemSystem: access / mark / watch / violation ----
    let config = MachineConfig::with_cores(2);
    let mut sys = MemSystem::new(&config);
    // Warm every line the loop touches on both cores and pre-grow the
    // watch table past its initial capacity so the armed loop never
    // triggers a growth reallocation.
    for i in 0..4 * LINES {
        sys.watch(0, LineId(i), WatchKind::Read);
    }
    sys.clear_watches(0);
    for i in 0..LINES {
        sys.access(0, Addr(i * LINE_SIZE), AccessKind::Store);
        sys.access(1, Addr(i * LINE_SIZE), AccessKind::Load);
    }
    let ((), allocs) = armed(|| {
        for _ in 0..16 {
            for i in 0..LINES {
                let addr = Addr(i * LINE_SIZE);
                sys.access(0, addr, AccessKind::Load);
                sys.access(0, addr, AccessKind::Store);
                sys.access(1, addr, AccessKind::Load);
                sys.mark_access(0, addr, 8, MarkOp::Set, FilterId::READ);
                sys.mark_access(0, addr, 8, MarkOp::Test, FilterId::READ);
                sys.watch(0, LineId(i), WatchKind::Read);
            }
            let _ = sys.violation(0);
            let _ = sys.watched_lines(0);
            sys.clear_watches(0);
        }
    });
    assert_eq!(allocs, 0, "MemSystem access/mark/watch loop allocated");

    // ---- flush_caches: the snapshot scratch buffer is reused ----
    // First flush (unarmed) sizes the scratch to this resident footprint.
    sys.flush_caches();
    for i in 0..LINES {
        sys.access(0, Addr(i * LINE_SIZE), AccessKind::Store);
    }
    let ((), allocs) = armed(|| sys.flush_caches());
    assert_eq!(allocs, 0, "repeat flush_caches allocated");

    // ---- Cpu/Machine stepping: loads, stores, mark instructions ----
    let mut machine = Machine::new(MachineConfig::default());
    let ((), report) = machine.run_one(|cpu| {
        // Warm the sparse memory pages and the caches, then arm.
        for i in 0..LINES {
            cpu.store_u64(Addr(i * LINE_SIZE), i);
        }
        cpu.reset_mark_counter();
        let ((), allocs) = armed(|| {
            for _ in 0..16 {
                for i in 0..LINES {
                    let addr = Addr(i * LINE_SIZE);
                    cpu.store_u64(addr, i ^ 1);
                    let _ = cpu.load_u64(addr);
                    let _ = cpu.load_set_mark_u64(addr);
                    let _ = cpu.load_test_mark_u64(addr);
                }
                let _ = cpu.read_mark_counter();
            }
        });
        assert_eq!(allocs, 0, "Cpu stepping loop allocated");
    });
    assert!(report.makespan() > 0);
}

// ---------------------------------------------------------------------------
// Tracing must be free when off
// ---------------------------------------------------------------------------

/// A contended two-core workload used to compare traced, disabled-trace,
/// and never-traced machines. Exercises every event-emitting path (cache
/// misses, remote-write line losses, mark sets/discards, counter bumps).
fn trace_probe_workers<'env>() -> Vec<hastm_sim::WorkerFn<'env>> {
    (0..2)
        .map(|tid| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                cpu.reset_mark_counter();
                for i in 0..LINES {
                    let addr = Addr(((tid as u64 * 7 + i) % LINES) * LINE_SIZE);
                    cpu.store_u64(addr, i);
                    let _ = cpu.load_set_mark_u64(addr);
                    let _ = cpu.load_test_mark_u64(addr);
                }
                let _ = cpu.read_mark_counter();
            }) as hastm_sim::WorkerFn<'env>
        })
        .collect()
}

#[test]
fn disabled_tracing_is_allocation_free_and_bit_identical() {
    // Reference: a machine that has never heard of tracing.
    let mut never = Machine::new(MachineConfig::with_cores(2));
    let baseline = never.run(trace_probe_workers());

    // A machine that traced one run, then disarmed: its subsequent runs
    // must produce bit-identical reports (tracing is an observation, not a
    // participant) …
    let mut toggled = Machine::new(MachineConfig::with_cores(2));
    toggled.set_tracing(Some(hastm_sim::TraceConfig::default()));
    toggled.run(trace_probe_workers());
    let log = toggled.take_trace().expect("tracing was armed");
    assert!(
        log.total_events() > 0,
        "the probe workload must emit events"
    );
    toggled.set_tracing(None);
    assert!(
        toggled.take_trace().is_none(),
        "disarmed machine has no log"
    );

    // … so compare fresh machines: never-traced vs armed-then-disarmed
    // constructions, same workload.
    let mut disabled = Machine::new(MachineConfig::with_cores(2));
    disabled.set_tracing(Some(hastm_sim::TraceConfig::default()));
    disabled.set_tracing(None);
    let report = disabled.run(trace_probe_workers());
    assert_eq!(
        report, baseline,
        "disabled tracing must leave the run bit-identical"
    );

    // And the disabled-tracing hot path must not allocate: re-run the
    // MemSystem loop from the main test on a disarmed system.
    let config = MachineConfig::with_cores(2);
    let mut sys = MemSystem::new(&config);
    assert!(!sys.tracing());
    for i in 0..LINES {
        sys.access(0, Addr(i * LINE_SIZE), AccessKind::Store);
        sys.access(1, Addr(i * LINE_SIZE), AccessKind::Load);
    }
    let ((), allocs) = armed(|| {
        for _ in 0..16 {
            for i in 0..LINES {
                let addr = Addr(i * LINE_SIZE);
                sys.access(0, addr, AccessKind::Load);
                sys.access(0, addr, AccessKind::Store);
                sys.access(1, addr, AccessKind::Load);
                sys.mark_access(0, addr, 8, MarkOp::Set, FilterId::READ);
                sys.mark_access(0, addr, 8, MarkOp::Test, FilterId::READ);
            }
        }
    });
    assert_eq!(allocs, 0, "disabled-tracing MemSystem loop allocated");
}

/// First number following `"simulated_cycles_per_sec":` in BENCH.json.
fn bench_baseline_cycles_per_sec() -> Option<f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH.json");
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"simulated_cycles_per_sec\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

#[test]
fn disabled_tracing_throughput_stays_near_baseline() {
    // Perf-style guard: with tracing disabled, simulated cycles per wall
    // second must stay within (very loose) tolerance of the recorded
    // BENCH.json baseline. The factor-100 floor only catches catastrophic
    // regressions (e.g. an allocation or lock added to the per-access
    // path): this test runs in debug on arbitrary hardware, while the
    // baseline was measured in release.
    let Some(baseline) = bench_baseline_cycles_per_sec() else {
        eprintln!("BENCH.json not found or unparsable; skipping throughput guard");
        return;
    };
    let mut machine = Machine::new(MachineConfig::with_cores(2));
    machine.run(trace_probe_workers()); // warm caches and host paths
    let start = std::time::Instant::now();
    let mut cycles = 0u64;
    for _ in 0..50 {
        cycles += machine.run(trace_probe_workers()).makespan();
    }
    let rate = cycles as f64 / start.elapsed().as_secs_f64();
    assert!(
        rate > baseline / 100.0,
        "simulated {rate:.0} cycles/s, below 1% of the {baseline:.0} baseline"
    );
}
