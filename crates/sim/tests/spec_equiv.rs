//! Property tests for the optimistic speculative gate (§ scheduler).
//!
//! Random small per-core programs — mixed loads, stores, CASes, and
//! compute ticks over a pool of shared and core-private lines — are run
//! under [`GateMode::Speculative`] and [`GateMode::Quantum`] at 2 and 4
//! cores. The contract under test:
//!
//! * a **certified** speculative run is bit-identical to the quantum run
//!   *op for op*: every value every load and CAS observed, the final
//!   memory image, and the full [`RunReport`] (per-core and machine
//!   counters) all match exactly;
//! * a **fault plan** (evictions, inclusive-L2 back-invalidations)
//!   clamps speculation off entirely — the run certifies with zero
//!   speculative ops and still matches the quantum run under the same
//!   plan;
//! * a **forced mid-run rollback** (`spec_taint_at`) accounts every
//!   cycle exactly once: the tainted run still executes the whole
//!   program (its op count matches quantum's), its wasted cycles are
//!   confined to the discarded report, and the conservative quantum
//!   re-run — stats and structured trace included — is bit-identical to
//!   a quantum run that never speculated (the rollback leaves no
//!   residue and double-counts nothing).

use std::sync::Mutex;

use hastm_sim::{
    reconcile_mark_discards, Addr, Cpu, FaultEvent, FaultKind, GateMode, Machine, MachineConfig,
    RunReport, SpecOutcome, TraceConfig, TraceLog, WorkerFn, LINE_SIZE,
};
use proptest::prelude::*;

/// One program op, decoded from the proptest tuple encoding.
#[derive(Copy, Clone, Debug)]
enum Op {
    /// Load a pooled shared line (observed value recorded).
    Load(u64),
    /// Store to a pooled shared line.
    Store(u64, u64),
    /// CAS on a pooled shared line (observed value recorded).
    Cas(u64, u64),
    /// Load the core's private line (speculation's best case; observed
    /// value recorded).
    PrivateLoad,
    /// Store to the core's private line.
    PrivateStore(u64),
    /// Compute for `1 + n` cycles (clock-only; speculates freely).
    Tick(u64),
}

/// Eight shared lines, spread across L1 sets.
fn shared_addr(line: u64) -> Addr {
    Addr(0x4000 + (line % 8) * LINE_SIZE)
}

/// A private line per core, disjoint from the shared pool and each other.
fn private_addr(core: usize) -> Addr {
    Addr(0x8000 + core as u64 * LINE_SIZE)
}

fn decode(kind: u8, line: u64, val: u64) -> Op {
    match kind % 6 {
        0 => Op::Load(line),
        1 => Op::Store(line, val),
        2 => Op::Cas(line, val),
        3 => Op::PrivateLoad,
        4 => Op::PrivateStore(val),
        _ => Op::Tick(val % 32),
    }
}

/// Strategy: per-core programs of 1..40 encoded ops.
fn programs(cores: usize) -> impl Strategy<Value = Vec<Vec<(u8, u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..6u8, 0..8u64, 0..64u64), 1..40),
        cores..=cores,
    )
}

/// Everything one run exposes for bit-comparison: the observed value of
/// every load/CAS in program order per core, the final memory image of
/// every touched line, and the full run report.
#[derive(Clone, Debug, PartialEq)]
struct RunImage {
    observed: Vec<Vec<u64>>,
    memory: Vec<u64>,
    report: RunReport,
}

/// Runs `program` on a fresh machine under `gate`; `taint_at` arms the
/// forced-taint hook and `faults` installs a fault plan. Returns the
/// run's image, the speculation verdict, and the trace (when `trace`).
fn run_program(
    program: &[Vec<(u8, u64, u64)>],
    gate: GateMode,
    taint_at: Option<u64>,
    faults: Vec<FaultEvent>,
    trace: bool,
) -> (RunImage, Option<SpecOutcome>, Option<TraceLog>) {
    let cores = program.len();
    let mut m = Machine::new(MachineConfig {
        gate,
        spec_taint_at: taint_at,
        trace: trace.then(TraceConfig::default),
        ..MachineConfig::with_cores(cores)
    });
    m.set_faults(faults);
    let observed = Mutex::new(vec![Vec::new(); cores]);
    let observed_ref = &observed;
    let workers: Vec<WorkerFn<'_>> = program
        .iter()
        .enumerate()
        .map(|(id, ops)| {
            let ops = ops.clone();
            Box::new(move |cpu: &mut Cpu| {
                let mut seen = Vec::new();
                for &(kind, line, val) in &ops {
                    match decode(kind, line, val) {
                        Op::Load(l) => seen.push(cpu.load_u64(shared_addr(l))),
                        Op::Store(l, v) => cpu.store_u64(shared_addr(l), v),
                        Op::Cas(l, v) => {
                            let cur = cpu.load_u64(shared_addr(l));
                            seen.push(cpu.cas_u64(shared_addr(l), cur, v));
                        }
                        Op::PrivateLoad => seen.push(cpu.load_u64(private_addr(id))),
                        Op::PrivateStore(v) => cpu.store_u64(private_addr(id), v),
                        Op::Tick(n) => cpu.tick(1 + n),
                    }
                }
                observed_ref.lock().unwrap()[id] = seen;
            }) as WorkerFn<'_>
        })
        .collect();
    let report = m.run(workers);
    let outcome = m.spec_outcome();
    let log = m.take_trace();
    let mut memory: Vec<u64> = (0..8).map(|l| m.peek_u64(shared_addr(l))).collect();
    memory.extend((0..cores).map(|c| m.peek_u64(private_addr(c))));
    (
        RunImage {
            observed: observed.into_inner().unwrap(),
            memory,
            report,
        },
        outcome,
        log,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Certified speculative runs are bit-identical to quantum op-for-op
    /// at 2 cores; tainted runs are discarded by contract (the driver
    /// re-runs), so only certification is asserted on them.
    #[test]
    fn certified_runs_match_quantum_op_for_op_2_cores(program in programs(2)) {
        let (spec, outcome, _) =
            run_program(&program, GateMode::Speculative, None, Vec::new(), false);
        let outcome = outcome.expect("speculative gate reports a verdict");
        let (quantum, _, _) =
            run_program(&program, GateMode::Quantum, None, Vec::new(), false);
        if outcome.certified {
            prop_assert_eq!(spec, quantum, "certified run diverged from quantum");
        } else {
            // Tainted: the schedule is a valid alternative but not the
            // quantum one; the final abstract memory of these data-race-free
            // per-line programs still converges only when programs are
            // conflict-free, so nothing further is asserted here. The
            // discard-and-rerun contract is covered by the driver tests.
            prop_assert!(outcome.spec_ops > 0, "taint requires speculation");
        }
    }

    /// The same contract at 4 cores.
    #[test]
    fn certified_runs_match_quantum_op_for_op_4_cores(program in programs(4)) {
        let (spec, outcome, _) =
            run_program(&program, GateMode::Speculative, None, Vec::new(), false);
        let outcome = outcome.expect("speculative gate reports a verdict");
        let (quantum, _, _) =
            run_program(&program, GateMode::Quantum, None, Vec::new(), false);
        if outcome.certified {
            prop_assert_eq!(spec, quantum, "certified run diverged from quantum");
        } else {
            prop_assert!(outcome.spec_ops > 0, "taint requires speculation");
        }
    }

    /// Core-private programs never conflict: speculation certifies and the
    /// output is quantum's, bit for bit — including with genuinely
    /// speculated ops whenever any core ran ahead.
    #[test]
    fn disjoint_programs_always_certify(
        program in proptest::collection::vec(
            proptest::collection::vec((3..6u8, 0..1u64, 0..64u64), 8..40),
            4..=4,
        ),
    ) {
        let (spec, outcome, _) =
            run_program(&program, GateMode::Speculative, None, Vec::new(), false);
        let outcome = outcome.expect("speculative gate reports a verdict");
        prop_assert!(outcome.certified, "disjoint programs must certify");
        let (quantum, _, _) =
            run_program(&program, GateMode::Quantum, None, Vec::new(), false);
        prop_assert_eq!(spec, quantum);
    }

    /// A fault plan makes the schedule dynamic, which clamps speculation
    /// off entirely: the run certifies with zero speculative ops and
    /// matches the quantum run under the identical plan.
    #[test]
    fn fault_plans_clamp_speculation_and_stay_quantum_identical(
        program in programs(2),
        fault_ops in proptest::collection::vec((0..64u64, 0..2usize, 0..2u8, 0..4usize), 1..4),
    ) {
        let mut faults: Vec<FaultEvent> = fault_ops
            .iter()
            .map(|&(at_op, core, kind, nth)| FaultEvent {
                at_op,
                core,
                kind: if kind == 0 {
                    FaultKind::EvictL1 { nth }
                } else {
                    FaultKind::BackInvalidate { nth }
                },
            })
            .collect();
        faults.sort_by_key(|f| f.at_op);
        let (spec, outcome, _) =
            run_program(&program, GateMode::Speculative, None, faults.clone(), false);
        let outcome = outcome.expect("speculative gate reports a verdict");
        prop_assert!(outcome.certified, "clamped run must certify");
        prop_assert_eq!(outcome.spec_ops, 0, "fault plans must clamp speculation");
        let (quantum, _, _) =
            run_program(&program, GateMode::Quantum, None, faults, false);
        prop_assert_eq!(spec, quantum, "clamped run diverged from quantum");
    }

    /// Forced mid-run rollback accounts every cycle exactly once: the
    /// tainted run still executes the whole program (same op count as
    /// quantum), its cycles stay confined to the discarded report, and
    /// the conservative re-run — with stats and a structured trace — is
    /// bit-identical to a quantum run that never speculated.
    #[test]
    fn forced_rollback_accounts_cycles_exactly_once(
        program in programs(2),
        taint_at in 0..16u64,
    ) {
        let (tainted, outcome, _) = run_program(
            &program, GateMode::Speculative, Some(taint_at), Vec::new(), false,
        );
        let outcome = outcome.expect("speculative gate reports a verdict");
        let (quantum, _, _) =
            run_program(&program, GateMode::Quantum, None, Vec::new(), false);
        let program_ops: u64 = outcome.total_ops;
        if program_ops > taint_at + 1 {
            prop_assert!(!outcome.certified, "taint hook past {taint_at} ops must taint");
            // The discarded run ran to completion — every op executed
            // once, none re-executed inside the run.
            prop_assert!(tainted.report.makespan() > 0);
            // The wasted cycles exist only in the discarded report. The
            // re-run (driver contract: fresh machine, quantum gate) is the
            // pure quantum run compared below, so total accounting is
            // `wasted + kept` with no overlap.
            let wasted = tainted.report.total(|c| c.cycles);
            prop_assert!(wasted > 0);
        }
        // The conservative re-run matches an untainted quantum run
        // bit-for-bit, trace included: nothing from the discarded run
        // leaks into stats or trace.
        let (rerun, rerun_outcome, rerun_log) =
            run_program(&program, GateMode::Quantum, None, Vec::new(), true);
        prop_assert!(rerun_outcome.is_none(), "quantum gate reports no spec verdict");
        prop_assert_eq!(&rerun.observed, &quantum.observed);
        prop_assert_eq!(&rerun.memory, &quantum.memory);
        // Same cycle accounting per core (the trace arming is timing
        // neutral), and the trace itself reconciles against the stats —
        // no double-counted losses.
        prop_assert_eq!(&rerun.report.cores, &quantum.report.cores);
        let log = rerun_log.expect("tracing was armed");
        let lost: Vec<u64> = rerun.report.cores.iter().map(|c| c.marked_lines_lost).collect();
        reconcile_mark_discards(&log, &lost).map_err(|e| {
            TestCaseError::fail(format!("trace/stats reconciliation failed: {e}"))
        })?;
    }
}
