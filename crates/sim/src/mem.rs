//! Flat backing memory.
//!
//! The caches in this simulator are *tag-only*: because all simulated memory
//! operations are globally serialized by the scheduler, data can live in a
//! single flat store that is always coherent, while the cache model tracks
//! only presence, MESI state, and mark bits for timing and mark-counter
//! semantics. This keeps data movement trivially correct without changing
//! any observable timing or mark behavior.

use std::collections::HashMap;

use crate::addr::Addr;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse paged byte-addressable memory. Unwritten memory reads as zero.
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    fn page(&self, addr: Addr) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr.0 >> PAGE_SHIFT)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: Addr) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr.0 >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    #[inline]
    fn page_offset(addr: Addr) -> usize {
        (addr.0 as usize) & (PAGE_SIZE - 1)
    }

    /// Reads one naturally aligned `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned (simulated code is required to
    /// use natural alignment so accesses never straddle sub-blocks).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        assert!(addr.is_aligned(8), "unaligned u64 read at {addr}");
        match self.page(addr) {
            None => 0,
            Some(p) => {
                let o = Self::page_offset(addr);
                u64::from_le_bytes(p[o..o + 8].try_into().unwrap())
            }
        }
    }

    /// Writes one naturally aligned `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        assert!(addr.is_aligned(8), "unaligned u64 write at {addr}");
        let o = Self::page_offset(addr);
        self.page_mut(addr)[o..o + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.page(addr) {
            None => 0,
            Some(p) => p[Self::page_offset(addr)],
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let o = Self::page_offset(addr);
        self.page_mut(addr)[o] = value;
    }

    /// Number of pages that have been materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill() {
        let m = Memory::new();
        assert_eq!(m.read_u64(Addr(0x1000)), 0);
        assert_eq!(m.read_u8(Addr(12345)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back() {
        let mut m = Memory::new();
        m.write_u64(Addr(0x1000), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(Addr(0x1000)), 0xdead_beef_cafe_f00d);
        // Neighbors untouched.
        assert_eq!(m.read_u64(Addr(0x1008)), 0);
        assert_eq!(m.read_u64(Addr(0x0ff8)), 0);
    }

    #[test]
    fn byte_and_word_views_agree() {
        let mut m = Memory::new();
        m.write_u64(Addr(0x2000), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(Addr(0x2000)), 0x08); // little endian
        assert_eq!(m.read_u8(Addr(0x2007)), 0x01);
        m.write_u8(Addr(0x2000), 0xff);
        assert_eq!(m.read_u64(Addr(0x2000)), 0x0102_0304_0506_07ff);
    }

    #[test]
    fn page_boundary() {
        let mut m = Memory::new();
        m.write_u64(Addr(0x0ff8), 7); // last word of page 0
        m.write_u64(Addr(0x1000), 9); // first word of page 1
        assert_eq!(m.read_u64(Addr(0x0ff8)), 7);
        assert_eq!(m.read_u64(Addr(0x1000)), 9);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_rejected() {
        let m = Memory::new();
        let _ = m.read_u64(Addr(0x1001));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_rejected() {
        let mut m = Memory::new();
        m.write_u64(Addr(0x1004), 1);
    }
}
