//! Simulation counters.

/// Per-core event counters accumulated during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Ordinary and mark-variant loads executed.
    pub loads: u64,
    /// Stores executed (including the store half of a successful CAS).
    pub stores: u64,
    /// Compare-and-swap operations executed.
    pub cas_ops: u64,
    /// Accesses that hit in this core's L1.
    pub l1_hits: u64,
    /// Accesses that missed in this core's L1.
    pub l1_misses: u64,
    /// L1 misses serviced by the shared L2 or by another core's L1.
    pub l2_hits: u64,
    /// L1 misses serviced by memory.
    pub mem_accesses: u64,
    /// Lines invalidated in this core's L1 by other cores' writes.
    pub invalidations_received: u64,
    /// Marked lines this core lost to eviction, snoop invalidation, or
    /// inclusive-L2 back-invalidation (each of these increments the
    /// architected mark counter, §3).
    pub marked_lines_lost: u64,
    /// The capacity-pressure share of `marked_lines_lost`: evictions and
    /// inclusive-L2 back-invalidations (plus whole-cache flushes) — losses
    /// no contention-management policy could have avoided.
    pub marked_lost_capacity: u64,
    /// The conflict share of `marked_lines_lost`: losses to a remote
    /// writer's snoop invalidation (true data conflicts).
    pub marked_lost_conflict: u64,
    /// `loadsetmark`-family instructions executed.
    pub mark_sets: u64,
    /// `loadtestmark`-family instructions executed.
    pub mark_tests: u64,
    /// `loadtestmark` executions that found all covered mark bits set.
    pub mark_test_hits: u64,
    /// `resetmarkall` executions.
    pub mark_resets: u64,
    /// Lines brought in by the next-line prefetcher.
    pub prefetch_fills: u64,
    /// Final value of this core's logical clock, in cycles.
    pub cycles: u64,
}

impl CoreStats {
    /// Total memory operations (loads + stores + CAS).
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores + self.cas_ops
    }

    /// Fraction of `loadtestmark`s that hit, or 0 if none executed.
    pub fn mark_filter_rate(&self) -> f64 {
        if self.mark_tests == 0 {
            0.0
        } else {
            self.mark_test_hits as f64 / self.mark_tests as f64
        }
    }
}

/// Machine-wide counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// L2 evictions.
    pub l2_evictions: u64,
    /// L1 lines removed because an inclusive L2 evicted their line.
    pub back_invalidations: u64,
}

/// Result of one [`crate::Machine::run`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Per-core counters, indexed by core id.
    pub cores: Vec<CoreStats>,
    /// Machine-wide counters.
    pub machine: MachineStats,
}

impl RunReport {
    /// The run's makespan: the largest per-core cycle count. This is the
    /// "execution time" plotted throughout the paper's evaluation.
    pub fn makespan(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Sum of a per-core counter over all cores.
    pub fn total<F: Fn(&CoreStats) -> u64>(&self, f: F) -> u64 {
        self.cores.iter().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_max() {
        let mut r = RunReport::default();
        r.cores.push(CoreStats {
            cycles: 10,
            ..Default::default()
        });
        r.cores.push(CoreStats {
            cycles: 25,
            ..Default::default()
        });
        assert_eq!(r.makespan(), 25);
        assert_eq!(r.total(|c| c.cycles), 35);
    }

    #[test]
    fn empty_report() {
        let r = RunReport::default();
        assert_eq!(r.makespan(), 0);
    }

    #[test]
    fn filter_rate() {
        let s = CoreStats {
            mark_tests: 4,
            mark_test_hits: 3,
            ..Default::default()
        };
        assert!((s.mark_filter_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CoreStats::default().mark_filter_rate(), 0.0);
    }
}
