//! The per-core CPU handle: ordinary loads/stores, compare-and-swap, and
//! the six mark-bit instructions of the HASTM ISA extension (§3).
//!
//! Every method models exactly one (possibly multi-µop) instruction: it
//! waits for this core's logical-clock turn, performs the operation against
//! the shared memory system, and advances the core's clock by the
//! instruction's cycle cost.

use parking_lot::MutexGuard;

use crate::addr::{Addr, LineId, LINE_SIZE};
use crate::cache::FilterId;
use crate::config::{CostModel, GateMode};
use crate::hierarchy::{AccessKind, MarkOp, WatchKind, WatchViolation};
use crate::machine::{Shared, SimState};
use crate::trace::{TimedEvent, TraceEvent};

/// Execution handle for one simulated core.
///
/// Obtained inside a worker closure passed to [`crate::Machine::run`]; see
/// that method for an end-to-end example.
pub struct Cpu<'a> {
    id: usize,
    shared: &'a Shared,
    cost: CostModel,
    /// Instruction-issue accumulator for ILP amortization (see
    /// [`CostModel::ipc`]).
    insn_acc: u64,
    /// Whether the machine runs the run-until-overtaken quantum gate
    /// ([`GateMode::Quantum`]); cached because gate mode never changes.
    quantum: bool,
    /// Whether the machine runs the optimistic speculative gate
    /// ([`GateMode::Speculative`]); cached because gate mode never changes.
    spec: bool,
    /// Whether the op currently in flight was admitted *speculatively*
    /// (past the conservative bound). Set by `turn_for`, consumed by
    /// `finish`: a speculative completion skips the handoff (it was not
    /// the minimal core, and its clock only grew, so minimality among the
    /// other cores is unchanged).
    spec_op: bool,
    /// Open quantum: the state guard this core kept at the end of its last
    /// op because its `(clock, id)` was still below [`Cpu::bound`]. While
    /// `Some`, every other core is frozen (they need this lock to execute,
    /// advance clocks, or deactivate), which is exactly what makes the
    /// cached bound exact. Released by `finish` on overtake, or by `Drop`
    /// at worker end.
    held: Option<MutexGuard<'a, SimState>>,
    /// Competitor bound cached at quantum admission: the minimal
    /// `(clock, id)` among the *other* active cores. `None` means no
    /// competitor exists (sole active core) and the quantum never expires.
    bound: Option<(u64, usize)>,
    /// Whether structured tracing was armed when this worker started;
    /// cached so [`Cpu::trace`] is one branch when tracing is off.
    tracing: bool,
    /// Software-layer events ([`Cpu::trace`]) stamped locally and flushed
    /// into this core's ring at the next gated op (or into the tail buffer
    /// at worker end).
    trace_pending: Vec<TimedEvent>,
    /// This core's clock as of its last completed gated op — the stamp for
    /// software-layer events, maintained without taking the state lock.
    last_clock: u64,
}

impl std::fmt::Debug for Cpu<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu").field("id", &self.id).finish()
    }
}

impl Drop for Cpu<'_> {
    fn drop(&mut self) {
        // Worker end: spill any still-buffered trace events into the
        // recorder's per-core tail (kept apart from the rings because
        // worker exits happen at host-racy times relative to other cores'
        // flushes), then release a still-open quantum so the other cores
        // (and this worker's deactivation guard, which runs after this
        // drop) can take the lock.
        if let Some(mut st) = self.held.take() {
            if self.tracing && !self.trace_pending.is_empty() {
                st.sys.trace_push_tail(self.id, &mut self.trace_pending);
            }
            self.shared.handoff(st, self.id);
        } else if self.tracing && !self.trace_pending.is_empty() {
            let mut st = self.shared.state.lock();
            st.sys.trace_push_tail(self.id, &mut self.trace_pending);
        }
    }
}

impl<'a> Cpu<'a> {
    pub(crate) fn new(id: usize, shared: &'a Shared) -> Self {
        let (cost, tracing) = {
            let st = shared.state.lock();
            (st.sys_cost(), st.sys.tracing())
        };
        Cpu {
            id,
            shared,
            cost,
            insn_acc: 0,
            quantum: shared.gate == GateMode::Quantum,
            spec: shared.gate == GateMode::Speculative,
            spec_op: false,
            held: None,
            bound: None,
            tracing,
            trace_pending: Vec::new(),
            last_clock: 0,
        }
    }

    /// Whether structured tracing is armed for this run. Software layers
    /// (STM/HTM) can use this to skip building event payloads.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Records a software-layer trace event against this core, stamped with
    /// the core's clock as of its last completed operation. One never-taken
    /// branch (and no allocation) when tracing is off; never a gated op and
    /// never charges cycles.
    #[inline]
    pub fn trace(&mut self, ev: TraceEvent) {
        if self.tracing {
            self.trace_pending.push(TimedEvent {
                cycle: self.last_clock,
                ev,
            });
        }
    }

    /// Converts `insns` issued instructions into cycles at the configured
    /// IPC, carrying the remainder forward.
    #[inline]
    fn issue(&mut self, insns: u64) -> u64 {
        let total = self.insn_acc + insns * self.cost.tick;
        let cycles = total / self.cost.ipc;
        self.insn_acc = total % self.cost.ipc;
        cycles
    }

    /// This core's id (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Reads the simulator state without gating. Must go through the open
    /// quantum's guard when one is held — the state mutex is not reentrant,
    /// so re-locking from the same thread would self-deadlock.
    #[inline]
    fn with_state<R>(&self, f: impl FnOnce(&SimState) -> R) -> R {
        match &self.held {
            Some(st) => f(st),
            None => f(&self.shared.state.lock()),
        }
    }

    /// This core's logical clock, in cycles.
    pub fn now(&self) -> u64 {
        self.with_state(|st| st.clocks[self.id])
    }

    /// The machine's current run epoch (see [`crate::Machine::run_epoch`]).
    pub fn run_epoch(&self) -> u64 {
        self.with_state(|st| st.run_epoch)
    }

    /// Waits until it is this core's turn, then returns the locked state.
    ///
    /// Inside an open quantum the guard is already held and admission was
    /// decided by `finish`'s keep-check; otherwise this blocks in the gate
    /// and, under [`GateMode::Quantum`], caches the competitor bound the
    /// new quantum will run against.
    #[inline]
    fn turn(&mut self) -> MutexGuard<'a, SimState> {
        if let Some(st) = self.held.take() {
            return st;
        }
        let mut st = self.shared.wait_turn(self.id);
        st.note_admission(self.id);
        if self.quantum && !st.dynamic_schedule() {
            self.bound = st.competitor_bound(self.id);
        }
        if self.spec {
            // Canonical (conservative) admission: publish this op's
            // `(clock, core)` so the conflict detector can order remote
            // mutations it performs against earlier speculative ops.
            let clk = st.clocks[self.id];
            st.sys.spec_set_canon(self.id, clk);
        }
        st
    }

    /// Speculative-gate admission for ops whose memory effects are
    /// confined to this core's own L1 (`intent`: the line and access kind,
    /// or `None` for clock-only ops).
    ///
    /// Under [`GateMode::Speculative`] a non-minimal core may execute such
    /// an op *without waiting for its turn*, provided speculation is armed
    /// for this run (`SimState::spec_ok`), its clock is within the
    /// speculation window of the global minimum, and — for memory ops —
    /// the access is a pure own-L1 hit (loads on any resident state;
    /// stores/RMW only on Exclusive/Modified, so no remote traffic is
    /// generated). The op is noted in the per-(core, set) high-water
    /// clocks; a later canonical op that mutates that set from remote
    /// detects the inversion and taints the run. Everything still runs
    /// under the one state mutex, so each op is atomic; speculation only
    /// relaxes the *admission order*, replacing a park/handoff round trip
    /// with a plain lock acquisition.
    #[inline]
    fn turn_for(&mut self, intent: Option<(LineId, AccessKind)>) -> MutexGuard<'a, SimState> {
        if self.spec {
            let mut st = self.shared.state.lock();
            if Shared::is_turn(&st, self.id) {
                st.note_admission(self.id);
                let clk = st.clocks[self.id];
                st.sys.spec_set_canon(self.id, clk);
                return st;
            }
            if st.spec_ok {
                let clk = st.clocks[self.id];
                let window_open = st
                    .min_active()
                    .is_some_and(|(p, _)| clk < p.saturating_add(self.shared.spec_window));
                if window_open
                    && intent.is_none_or(|(line, kind)| st.sys.spec_probe(self.id, line, kind))
                {
                    st.sys.spec_note(self.id, intent.map(|(l, _)| l), clk);
                    self.spec_op = true;
                    return st;
                }
            }
            drop(st);
        }
        self.turn()
    }

    #[inline]
    fn finish(&mut self, mut st: MutexGuard<'a, SimState>, cycles: u64) {
        if self.spec_op {
            // Speculative completion: this core was not minimal and its
            // clock only grew, so the minimal core is unchanged — no
            // handoff needed (and tracing is clamped off whenever
            // speculation is armed, so there is nothing to flush).
            self.spec_op = false;
            st.clocks[self.id] += cycles;
            st.after_op(self.id);
            return;
        }
        if self.tracing {
            // Route software-layer events buffered since the last gated op
            // (already stamped) into this core's ring, ahead of this op's
            // own events, and refresh the local clock stamp.
            if !self.trace_pending.is_empty() {
                st.sys.trace_push_stamped(self.id, &mut self.trace_pending);
            }
            self.last_clock = st.clocks[self.id] + cycles;
        }
        st.clocks[self.id] += cycles;
        // Fuzzed-scheduler hook: re-draw this core's priority jitter and
        // possibly inject cache pressure (no-op under the deterministic
        // policy).
        st.after_op(self.id);
        // Run-until-overtaken: keep the lock while this core's
        // `(clock, id)` is still below the bound cached at admission. No
        // other core can run, advance, or deactivate while we hold the
        // lock, so the bound is exact and this test is equivalent to the
        // per-op `is_turn` minimality check. Dynamic schedules (fuzz
        // jitter re-draws, PCT demotions, preemption directives, fault
        // plans) can change priorities between ops, which would invalidate
        // the bound — they always hand off, clamping the quantum to one op.
        if self.quantum
            && !st.dynamic_schedule()
            && self.bound.is_none_or(|b| (st.clocks[self.id], self.id) < b)
        {
            self.held = Some(st);
            return;
        }
        self.shared.handoff(st, self.id);
    }

    /// Advances this core's clock by `cycles` of raw stall/wait time (spin
    /// backoff, kernel time). For instruction work, use [`Cpu::exec`].
    ///
    /// Long stalls double as PCT yield points: under
    /// [`crate::SchedulePolicy::Pct`] a stall of
    /// `machine::PCT_YIELD_CYCLES` or more demotes this core, so
    /// spin-waiters cannot starve the core they wait on.
    pub fn tick(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let mut st = self.turn_for(None);
        if cycles >= crate::machine::PCT_YIELD_CYCLES {
            // No-op whenever speculation is armed (PCT and preemption
            // traces force spec_ok off, and with them this hook's effects).
            st.pct_note_yield(self.id);
        }
        self.finish(st, cycles);
    }

    /// Executes `insns` non-memory instructions, charged at the cost
    /// model's sustained IPC (fractions carry over between calls).
    pub fn exec(&mut self, insns: u64) {
        let cycles = self.issue(insns);
        self.tick(cycles);
    }

    /// Executes `insns` instructions and runs `f` while this core holds
    /// the state lock under *canonical* admission (never speculative).
    ///
    /// This is the ordering primitive for side-band host state: shared
    /// bookkeeping that is not simulated memory (e.g. a version store's
    /// stamp issue or ring probe). Such state generates no simulated
    /// traffic, so neither the gate's conflict analysis nor the trace can
    /// order it — and host code running *between* gated ops races other
    /// cores' admitted ops on its own locks, nondeterministically. Running
    /// the closure inside the gated op makes its effect atomic with the
    /// op and totally ordered by the deterministic admission schedule.
    /// Canonical admission is required: a speculatively admitted op may
    /// run ahead of the global minimum, which is sound for own-L1 memory
    /// effects but would reorder side-band effects.
    pub fn exec_sync<R>(&mut self, insns: u64, f: impl FnOnce() -> R) -> R {
        let cycles = self.issue(insns);
        let st = self.turn();
        let r = f();
        self.finish(st, cycles);
        r
    }

    /// Loads a naturally aligned `u64`.
    pub fn load_u64(&mut self, addr: Addr) -> u64 {
        let issue = self.issue(1);
        let mut st = self.turn_for(Some((addr.line(), AccessKind::Load)));
        let lat = st.sys.access(self.id, addr, AccessKind::Load);
        let v = st.mem.read_u64(addr);
        self.finish(st, issue + lat);
        v
    }

    /// Loads a `u64` and registers a watch on its line in the *same*
    /// logical-time step — the HTM access primitive. Load and watch must be
    /// indivisible: were they two gated ops, a remote commit could land
    /// between them and the conflict it implies would never be delivered
    /// (a lost update).
    pub fn load_watch_u64(&mut self, addr: Addr, kind: WatchKind) -> u64 {
        let issue = self.issue(1);
        let mut st = self.turn();
        let lat = st.sys.access(self.id, addr, AccessKind::Load);
        let v = st.mem.read_u64(addr);
        st.sys.watch(self.id, addr.line(), kind);
        self.finish(st, issue + lat);
        v
    }

    /// Stores a naturally aligned `u64`.
    pub fn store_u64(&mut self, addr: Addr, value: u64) {
        let issue = self.issue(1);
        let mut st = self.turn_for(Some((addr.line(), AccessKind::Store)));
        if st.trace_addr == Some(addr.0) {
            eprintln!(
                "TRACE store core={} clock={} addr={addr} value={value:#x}",
                self.id, st.clocks[self.id]
            );
        }
        let lat = st.sys.access(self.id, addr, AccessKind::Store);
        st.mem.write_u64(addr, value);
        self.finish(st, issue + lat);
    }

    /// Atomic compare-and-swap on a `u64`. Returns the value observed at
    /// `addr`; the swap succeeded iff the return value equals `expected`.
    pub fn cas_u64(&mut self, addr: Addr, expected: u64, new: u64) -> u64 {
        let issue = self.issue(1);
        let mut st = self.turn_for(Some((addr.line(), AccessKind::Rmw)));
        if st.trace_addr == Some(addr.0) {
            let cur = st.mem.read_u64(addr);
            eprintln!(
                "TRACE cas   core={} clock={} addr={addr} expected={expected:#x} new={new:#x} cur={cur:#x}",
                self.id, st.clocks[self.id]
            );
        }
        st.sys.core_stats_mut(self.id).cas_ops += 1;
        // CAS acquires exclusive ownership regardless of outcome and is
        // fully serializing (no store-buffer absorption).
        let lat = st.sys.access(self.id, addr, AccessKind::Rmw);
        let old = st.mem.read_u64(addr);
        if old == expected {
            st.mem.write_u64(addr, new);
        }
        self.finish(st, issue + lat + self.cost.cas_extra);
        old
    }

    fn mark_load(&mut self, addr: Addr, len: u64, op: MarkOp, filter: FilterId) -> (u64, bool) {
        // Mark-setting loads issue an extra µop (store-queue entry, §7).
        let issue = self.issue(if op == MarkOp::Test { 1 } else { 2 });
        // Mark ops only touch this core's own L1 mark bits (plus, on a
        // loss path, this core's own counters), so they speculate like
        // plain loads; remote canonical evictions of the line hit the
        // same-set conflict check.
        let mut st = self.turn_for(Some((addr.line(), AccessKind::Load)));
        let (lat, flag) = st.sys.mark_access(self.id, addr, len, op, filter);
        let v = st.mem.read_u64(addr);
        let extra = match op {
            MarkOp::Set | MarkOp::Reset => self.cost.mark_op_extra,
            MarkOp::Test => 0,
        };
        self.finish(st, issue + lat + extra);
        (v, flag)
    }

    /// `loadsetmark(addr)`: loads the `u64` at `addr` and sets the mark bit
    /// of its 16-byte sub-block (primary filter).
    pub fn load_set_mark_u64(&mut self, addr: Addr) -> u64 {
        self.mark_load(addr, 8, MarkOp::Set, FilterId::READ).0
    }

    /// `loadresetmark(addr)`: loads the `u64` at `addr` and clears the mark
    /// bit of its sub-block (primary filter).
    pub fn load_reset_mark_u64(&mut self, addr: Addr) -> u64 {
        self.mark_load(addr, 8, MarkOp::Reset, FilterId::READ).0
    }

    /// `loadtestmark(addr)`: loads the `u64` at `addr`; the returned flag is
    /// the mark bit of its sub-block (primary filter; the paper's carry
    /// flag).
    pub fn load_test_mark_u64(&mut self, addr: Addr) -> (u64, bool) {
        self.mark_load(addr, 8, MarkOp::Test, FilterId::READ)
    }

    /// Filtered `loadsetmark`: operates on an explicit mark filter (§3.1's
    /// multiple-independent-filters extension).
    pub fn load_set_mark_u64_f(&mut self, filter: FilterId, addr: Addr) -> u64 {
        self.mark_load(addr, 8, MarkOp::Set, filter).0
    }

    /// Filtered `loadresetmark`.
    pub fn load_reset_mark_u64_f(&mut self, filter: FilterId, addr: Addr) -> u64 {
        self.mark_load(addr, 8, MarkOp::Reset, filter).0
    }

    /// Filtered `loadtestmark`.
    pub fn load_test_mark_u64_f(&mut self, filter: FilterId, addr: Addr) -> (u64, bool) {
        self.mark_load(addr, 8, MarkOp::Test, filter)
    }

    /// Line-granularity mark load: marks/tests the *whole line* but loads
    /// the addressed word, matching the paper's
    /// `loadsetmark_granularity64 eax, [addr]`.
    fn mark_load_line(&mut self, addr: Addr, op: MarkOp) -> (u64, bool) {
        let issue = self.issue(if op == MarkOp::Test { 1 } else { 2 });
        let mut st = self.turn_for(Some((addr.line(), AccessKind::Load)));
        let (lat, flag) =
            st.sys
                .mark_access(self.id, addr.line_base(), LINE_SIZE, op, FilterId::READ);
        let v = st.mem.read_u64(addr);
        let extra = match op {
            MarkOp::Set | MarkOp::Reset => self.cost.mark_op_extra,
            MarkOp::Test => 0,
        };
        self.finish(st, issue + lat + extra);
        (v, flag)
    }

    /// `loadsetmark_granularity64`: loads the `u64` at `addr` and sets all
    /// four mark bits of its line.
    pub fn load_set_mark_line(&mut self, addr: Addr) -> u64 {
        self.mark_load_line(addr, MarkOp::Set).0
    }

    /// `loadresetmark_granularity64`: loads the `u64` at `addr` and clears
    /// the whole line's mark bits.
    pub fn load_reset_mark_line(&mut self, addr: Addr) -> u64 {
        self.mark_load_line(addr, MarkOp::Reset).0
    }

    /// `loadtestmark_granularity64`: loads the `u64` at `addr`; the flag is
    /// the AND of all four mark bits of the line.
    pub fn load_test_mark_line(&mut self, addr: Addr) -> (u64, bool) {
        self.mark_load_line(addr, MarkOp::Test)
    }

    /// `resetmarkall()`: clears every primary-filter mark bit in this
    /// core's L1 and increments the primary mark counter.
    pub fn reset_mark_all(&mut self) {
        self.reset_mark_all_f(FilterId::READ);
    }

    /// Filtered `resetmarkall()`.
    pub fn reset_mark_all_f(&mut self, filter: FilterId) {
        let issue = self.issue(1);
        let mut st = self.turn();
        st.sys.reset_mark_all(self.id, filter);
        self.finish(st, issue);
    }

    /// `readmarkcounter()`: reads this core's primary saturating mark
    /// counter.
    pub fn read_mark_counter(&mut self) -> u64 {
        self.read_mark_counter_f(FilterId::READ)
    }

    /// Filtered `readmarkcounter()`.
    pub fn read_mark_counter_f(&mut self, filter: FilterId) -> u64 {
        let issue = self.issue(1);
        let st = self.turn();
        let v = st.sys.mark_counter(self.id, filter);
        self.finish(st, issue);
        v
    }

    /// Reads this core's marked-line losses split by cause as
    /// `(capacity, conflict)` — evictions plus back-invalidations vs
    /// remote-writer snoops. A diagnostics register read (one gated
    /// instruction): remote cores bump the conflict share during *their*
    /// admitted ops, so the read must take a canonical turn to observe a
    /// deterministic value.
    pub fn marked_loss_by_cause(&mut self) -> (u64, u64) {
        let issue = self.issue(1);
        let st = self.turn();
        let s = &st.sys.core_stats[self.id];
        let v = (s.marked_lost_capacity, s.marked_lost_conflict);
        self.finish(st, issue);
        v
    }

    /// `resetmarkcounter()`: zeroes this core's primary mark counter.
    pub fn reset_mark_counter(&mut self) {
        self.reset_mark_counter_f(FilterId::READ)
    }

    /// Filtered `resetmarkcounter()`.
    pub fn reset_mark_counter_f(&mut self, filter: FilterId) {
        let issue = self.issue(1);
        let mut st = self.turn();
        st.sys.reset_mark_counter(self.id, filter);
        self.finish(st, issue);
    }

    /// Models an OS priority (ring) transition, e.g. a context switch or
    /// page fault: the implementation discards all mark bits
    /// (`resetmarkall`, §3) and charges `cycles` of kernel time.
    pub fn os_transition(&mut self, cycles: u64) {
        let mut st = self.turn();
        for f in 0..crate::cache::NUM_FILTERS {
            st.sys.reset_mark_all(self.id, FilterId(f as u8));
        }
        self.finish(st, cycles.max(1));
    }

    /// Charges the extra delay of a conditional branch that depends on the
    /// immediately preceding `loadtestmark` (§7.3).
    pub fn mark_branch_penalty(&mut self) {
        let extra = self.cost.mark_branch_extra;
        self.tick(extra);
    }

    /// Atomically commits a speculative store buffer: in one indivisible
    /// step (a single point in logical time, as a hardware transaction's
    /// cache flash-commit is), re-checks this core's watch violation and —
    /// only if clean — performs every buffered store and clears the watch
    /// set.
    ///
    /// # Errors
    ///
    /// Returns the pending violation without writing anything if the
    /// transaction was doomed. On success, returns the pre-commit value of
    /// each written address (same order as `writes`) — the committed state
    /// transition, captured at the single commit instant, for verification
    /// layers that journal committed writes.
    ///
    /// The `seeded-bug` feature deliberately splits the violation re-check
    /// and the write-back into *two* gated ops, reintroducing the classic
    /// commit TOCTOU: two transactions that both passed their checks can
    /// interleave write-backs and lose an update. It exists purely as a
    /// mutation test for the schedule-exploration tooling — PCT and the
    /// bounded-exhaustive enumerator must both rediscover the race within
    /// a fixed budget. Never enable the feature outside those tests.
    pub fn commit_stores(&mut self, writes: &[(Addr, u64)]) -> Result<Vec<u64>, WatchViolation> {
        if cfg!(feature = "seeded-bug") {
            // BUG (intentional, feature-gated): the violation check is one
            // gated op and the write-back another; a remote commit admitted
            // between them escapes detection and its update is overwritten.
            let issue = self.issue(writes.len() as u64);
            let mut st = self.turn();
            if let Some(v) = st.sys.violation(self.id) {
                st.sys.clear_watches(self.id);
                self.finish(st, issue);
                return Err(v);
            }
            self.finish(st, issue);
            let mut st = self.turn();
            let mut lat = 0;
            let mut olds = Vec::with_capacity(writes.len());
            for &(addr, value) in writes {
                lat += st.sys.access(self.id, addr, AccessKind::Store);
                olds.push(st.mem.read_u64(addr));
                st.mem.write_u64(addr, value);
            }
            st.sys.clear_watches(self.id);
            self.finish(st, lat);
            return Ok(olds);
        }
        let issue = self.issue(writes.len() as u64);
        let mut st = self.turn();
        if let Some(v) = st.sys.violation(self.id) {
            st.sys.clear_watches(self.id);
            self.finish(st, issue);
            return Err(v);
        }
        let mut lat = 0;
        let mut olds = Vec::with_capacity(writes.len());
        for &(addr, value) in writes {
            lat += st.sys.access(self.id, addr, AccessKind::Store);
            olds.push(st.mem.read_u64(addr));
            st.mem.write_u64(addr, value);
        }
        st.sys.clear_watches(self.id);
        self.finish(st, issue + lat);
        Ok(olds)
    }

    /// Reads simulated memory with no timing or cache effects (debug /
    /// verification aid; not an ISA instruction).
    pub fn peek_u64(&self, addr: Addr) -> u64 {
        self.with_state(|st| st.mem.read_u64(addr))
    }

    /// Allocates from `heap` at this core's logical-clock turn, with no
    /// cycle cost (allocator instruction costs are charged separately by
    /// the caller where they matter, e.g. log-overflow slow paths).
    ///
    /// Worker code must allocate through this method rather than calling
    /// [`crate::SimHeap`] directly: the gate orders concurrent allocations
    /// by logical time, so every run hands out identical addresses — heap
    /// layout, and with it cache behavior and cycle counts, stays
    /// reproducible. Host-side setup code (before `Machine::run`) may use
    /// the heap directly; it is single-threaded and therefore already
    /// deterministic.
    pub fn alloc(&mut self, heap: &crate::SimHeap, size: u64) -> Addr {
        self.alloc_aligned(heap, size, 16)
    }

    /// [`Cpu::alloc`] with explicit alignment (a power of two, ≥ 8).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or is smaller than 8.
    pub fn alloc_aligned(&mut self, heap: &crate::SimHeap, size: u64, align: u64) -> Addr {
        let st = self.turn();
        let addr = heap.alloc_aligned(size, align);
        self.finish(st, 0);
        addr
    }

    // --- HTM substrate: line watches (zero-cost bookkeeping) ---
    //
    // Zero *cycle* cost, but every one of these still synchronizes on the
    // logical-clock gate: watch registration, violation polling, and watch
    // clearing are ordered against other cores' stores by logical time,
    // not host time. (They used to take the state lock without gating,
    // which made HTM abort timing — and therefore the makespan — depend
    // on host thread scheduling; the hastm-check determinism sweep caught
    // the resulting run-to-run wobble.)

    /// Registers a watch on `addr`'s line; see [`WatchKind`].
    pub fn watch(&mut self, addr: Addr, kind: WatchKind) {
        let mut st = self.turn();
        st.sys.watch(self.id, addr.line(), kind);
        self.finish(st, 0);
    }

    /// Drops all watches and any pending violation.
    pub fn clear_watches(&mut self) {
        let mut st = self.turn();
        st.sys.clear_watches(self.id);
        self.finish(st, 0);
    }

    /// The first violation recorded against this core's watches, if any.
    pub fn violation(&mut self) -> Option<WatchViolation> {
        let st = self.turn();
        let v = st.sys.violation(self.id);
        self.finish(st, 0);
        v
    }

    /// Number of lines currently watched.
    pub fn watched_lines(&mut self) -> usize {
        let st = self.turn();
        let n = st.sys.watched_lines(self.id);
        self.finish(st, 0);
        n
    }

    /// The configured cost model (read-only).
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use crate::addr::Addr;
    use crate::config::{IsaLevel, MachineConfig};
    use crate::machine::Machine;

    #[test]
    fn mark_instructions_roundtrip() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.reset_mark_counter();
            cpu.store_u64(Addr(0x100), 77);
            let v = cpu.load_set_mark_u64(Addr(0x100));
            assert_eq!(v, 77);
            let (v2, marked) = cpu.load_test_mark_u64(Addr(0x100));
            assert_eq!(v2, 77);
            assert!(marked);
            let _ = cpu.load_reset_mark_u64(Addr(0x100));
            let (_, marked) = cpu.load_test_mark_u64(Addr(0x100));
            assert!(!marked);
            assert_eq!(cpu.read_mark_counter(), 0);
        });
    }

    #[test]
    fn line_granularity_instructions() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.store_u64(Addr(0x148), 5);
            // All line-granularity variants load the *addressed* word
            // (`loadsetmark_granularity64 eax, [addr]`) while operating on
            // the whole line's mark bits.
            let v = cpu.load_set_mark_line(Addr(0x148));
            assert_eq!(v, 5);
            let (v2, marked) = cpu.load_test_mark_line(Addr(0x148));
            assert_eq!(v2, 5);
            assert!(marked);
            // A word elsewhere in the same line is also covered.
            let (_, marked) = cpu.load_test_mark_line(Addr(0x170));
            assert!(marked);
            let _ = cpu.load_reset_mark_line(Addr(0x148));
            let (_, marked) = cpu.load_test_mark_line(Addr(0x148));
            assert!(!marked);
        });
    }

    #[test]
    fn reset_mark_all_bumps_counter() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.reset_mark_counter();
            cpu.load_set_mark_u64(Addr(0x200));
            cpu.reset_mark_all();
            assert_eq!(cpu.read_mark_counter(), 1);
            let (_, marked) = cpu.load_test_mark_u64(Addr(0x200));
            assert!(!marked);
        });
    }

    #[test]
    fn os_transition_discards_marks() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.reset_mark_counter();
            cpu.load_set_mark_u64(Addr(0x200));
            let before = cpu.now();
            cpu.os_transition(500);
            assert!(cpu.now() >= before + 500);
            let (_, marked) = cpu.load_test_mark_u64(Addr(0x200));
            assert!(!marked);
            assert!(cpu.read_mark_counter() >= 1);
        });
    }

    #[test]
    fn default_isa_degenerates_gracefully() {
        let mut m = Machine::new(MachineConfig {
            isa: IsaLevel::Default,
            ..MachineConfig::default()
        });
        m.run_one(|cpu| {
            cpu.reset_mark_counter();
            cpu.store_u64(Addr(0x100), 3);
            assert_eq!(cpu.load_set_mark_u64(Addr(0x100)), 3);
            assert_eq!(cpu.read_mark_counter(), 1, "set bumps the counter");
            let (v, marked) = cpu.load_test_mark_u64(Addr(0x100));
            assert_eq!(v, 3);
            assert!(!marked, "test always reports clear");
        });
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.store_u64(Addr(0x300), 10);
            assert_eq!(cpu.cas_u64(Addr(0x300), 10, 11), 10);
            assert_eq!(cpu.load_u64(Addr(0x300)), 11);
            assert_eq!(cpu.cas_u64(Addr(0x300), 10, 12), 11, "failed CAS");
            assert_eq!(cpu.load_u64(Addr(0x300)), 11);
        });
    }

    #[test]
    fn costs_accumulate() {
        let mut m = Machine::new(MachineConfig::default());
        let (_, report) = m.run_one(|cpu| {
            let c = cpu.cost_model();
            let t0 = cpu.now();
            cpu.load_u64(Addr(0x400)); // cold miss pays the memory latency
            let cold = cpu.now() - t0;
            assert!(
                cold >= c.mem && cold <= c.mem + c.tick,
                "cold load cost {cold}"
            );
            let t1 = cpu.now();
            cpu.load_u64(Addr(0x400)); // hit pays at most l1_hit + issue
            let hit = cpu.now() - t1;
            assert!(hit <= c.l1_hit + c.tick, "hit cost {hit}");
        });
        assert!(report.makespan() > 0);
    }

    #[test]
    fn exec_amortizes_at_ipc() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            let ipc = cpu.cost_model().ipc;
            let t0 = cpu.now();
            for _ in 0..30 {
                cpu.exec(1);
            }
            assert_eq!(cpu.now() - t0, 30 / ipc, "30 instructions at IPC");
        });
    }
}
