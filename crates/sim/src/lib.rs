//! # hastm-sim — the HASTM paper's hardware substrate, in software
//!
//! An execution-driven, deterministic multi-core memory-hierarchy simulator
//! implementing the ISA extension proposed by *"Architectural Support for
//! Software Transactional Memory"* (Saha, Adl-Tabatabai, Jacobson — MICRO
//! 2006): per-thread **mark bits** on 16-byte L1 sub-blocks plus a
//! saturating **mark counter**, exposed through six instructions
//! (`loadsetmark`, `loadresetmark`, `loadtestmark`, `resetmarkall`,
//! `resetmarkcounter`, `readmarkcounter`).
//!
//! The simulator models:
//!
//! * per-core L1 caches kept coherent with MESI, plus a shared, optionally
//!   inclusive L2 (inclusive-L2 back-invalidation is one of the paper's
//!   sources of spurious marked-line loss in multi-core runs);
//! * mark bits that are discarded — bumping the mark counter — whenever a
//!   marked line is evicted, snooped away by a remote store, or
//!   back-invalidated;
//! * the paper's §3.3 *default implementation* ([`IsaLevel::Default`]) under
//!   which marking software stays correct but unaccelerated;
//! * line-watch sets used by the companion `hastm-htm` crate to build a
//!   bounded HTM;
//! * a conservative logical-clock scheduler that makes multi-core
//!   interleavings fully deterministic and charges every instruction an
//!   explicit cycle cost.
//!
//! ## Quick start
//!
//! ```
//! use hastm_sim::{Addr, Machine, MachineConfig};
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let ((), report) = machine.run_one(|cpu| {
//!     cpu.reset_mark_counter();
//!     cpu.store_u64(Addr(0x1000), 42);
//!     let value = cpu.load_set_mark_u64(Addr(0x1000));
//!     assert_eq!(value, 42);
//!     let (_, marked) = cpu.load_test_mark_u64(Addr(0x1000));
//!     assert!(marked, "line still cached, mark intact");
//!     assert_eq!(cpu.read_mark_counter(), 0, "no marked line was lost");
//! });
//! assert!(report.makespan() > 0);
//! ```

pub mod addr;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod heap;
pub mod hierarchy;
pub mod machine;
pub mod mem;
pub mod stats;
pub mod trace;

pub use addr::{Addr, LineId, LINE_SIZE, SUBBLOCKS_PER_LINE, SUBBLOCK_SIZE};
pub use cache::{FilterId, NUM_FILTERS};
pub use config::{
    CacheConfig, CostModel, FaultEvent, FaultKind, GateMode, IsaLevel, MachineConfig, Preemption,
    SchedulePolicy, SPEC_WINDOW_DEFAULT,
};
pub use cpu::Cpu;
pub use heap::SimHeap;
pub use hierarchy::{AccessKind, MarkOp, ViolationCause, WatchKind, WatchViolation};
pub use machine::{Machine, ScheduleEvent, SpecOutcome, WorkerFn, PCT_CHANGE_HORIZON};
pub use stats::{CoreStats, MachineStats, RunReport};
pub use trace::{
    chrome_trace_json, reconcile_mark_discards, summarize, validate_chrome_trace, LossCause,
    PhaseSums, TimedEvent, TraceConfig, TraceEvent, TraceLog, TraceRecorder, TraceSink, TxnPhase,
    TXN_PHASES,
};
