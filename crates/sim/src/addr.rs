//! Simulated physical addresses and cache-line / sub-block arithmetic.
//!
//! The HASTM paper models 64-byte cache lines with one mark bit per 16-byte
//! sub-block (four mark bits per line). These constants are fixed by the
//! paper's hardware description (§3.1) and are compile-time constants here;
//! cache *geometry* (sets/ways) is configurable in [`crate::config`].

use std::fmt;

/// Bytes per cache line (the paper models 64-byte lines).
pub const LINE_SIZE: u64 = 64;
/// Bytes per mark-bit sub-block (the paper's minimum mark granularity, §3.1).
pub const SUBBLOCK_SIZE: u64 = 16;
/// Mark bits per cache line.
pub const SUBBLOCKS_PER_LINE: u32 = (LINE_SIZE / SUBBLOCK_SIZE) as u32;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = LINE_SIZE.trailing_zeros();

/// A simulated physical byte address.
///
/// `Addr` is a plain newtype over `u64` ([C-NEWTYPE]): all simulated loads,
/// stores, and mark instructions take an `Addr`, which keeps simulated
/// addresses from being confused with host pointers or loop indices.
///
/// # Examples
///
/// ```
/// use hastm_sim::Addr;
///
/// let a = Addr(0x1040);
/// assert_eq!(a.line(), Addr(0x1040).line());
/// assert_eq!(a.line_base(), Addr(0x1040));
/// assert_eq!(a.offset(8).0, 0x1048);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

/// A cache-line number (a byte address shifted right by [`LINE_SHIFT`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineId(pub u64);

impl Addr {
    /// The line this address falls in.
    #[inline]
    pub fn line(self) -> LineId {
        LineId(self.0 >> LINE_SHIFT)
    }

    /// The address of the first byte of the containing line.
    #[inline]
    pub fn line_base(self) -> Addr {
        Addr(self.0 & !(LINE_SIZE - 1))
    }

    /// Byte offset of this address within its line (0..64).
    #[inline]
    pub fn offset_in_line(self) -> u64 {
        self.0 & (LINE_SIZE - 1)
    }

    /// Index of the 16-byte sub-block within the line (0..4).
    #[inline]
    pub fn subblock(self) -> u32 {
        (self.offset_in_line() / SUBBLOCK_SIZE) as u32
    }

    /// This address displaced by `off` bytes.
    #[inline]
    pub fn offset(self, off: u64) -> Addr {
        Addr(self.0 + off)
    }

    /// Whether the address is a multiple of `align` (which must be a power
    /// of two).
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// The null simulated address. The simulator never allocates at address
    /// zero, so this is usable as a sentinel.
    pub const NULL: Addr = Addr(0);

    /// Whether this is [`Addr::NULL`].
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl LineId {
    /// The first byte address of this line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineId({:#x})", self.0)
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// The mask of mark bits covered by an access of `len` bytes at `addr`,
/// confined to a single line.
///
/// A 64-byte-granularity mark instruction passes `len = 64` with a
/// line-aligned base and gets all four bits; an 8-byte access gets the single
/// bit of its sub-block (accesses never straddle sub-blocks because the
/// simulator requires natural alignment).
#[inline]
pub fn subblock_mask(addr: Addr, len: u64) -> u8 {
    debug_assert!(len >= 1);
    debug_assert!(
        addr.offset_in_line() + len <= LINE_SIZE,
        "access {addr:?}+{len} straddles a cache line"
    );
    let first = addr.subblock();
    let last = Addr(addr.0 + len - 1).subblock();
    let mut mask = 0u8;
    for b in first..=last {
        mask |= 1 << b;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic() {
        let a = Addr(0x12345);
        assert_eq!(a.line(), LineId(0x12345 >> 6));
        assert_eq!(a.line_base(), Addr(0x12340));
        assert_eq!(a.offset_in_line(), 5);
        assert_eq!(a.line().base(), Addr(0x12340));
    }

    #[test]
    fn subblock_index() {
        assert_eq!(Addr(0x100).subblock(), 0);
        assert_eq!(Addr(0x10f).subblock(), 0);
        assert_eq!(Addr(0x110).subblock(), 1);
        assert_eq!(Addr(0x12f).subblock(), 2);
        assert_eq!(Addr(0x13f).subblock(), 3);
    }

    #[test]
    fn subblock_masks() {
        // 8-byte access in sub-block 0.
        assert_eq!(subblock_mask(Addr(0x100), 8), 0b0001);
        // 8-byte access in sub-block 3.
        assert_eq!(subblock_mask(Addr(0x138), 8), 0b1000);
        // 16-byte access covering exactly sub-block 1.
        assert_eq!(subblock_mask(Addr(0x110), 16), 0b0010);
        // Whole-line granularity (the paper's granularity64 variants).
        assert_eq!(subblock_mask(Addr(0x100), 64), 0b1111);
        // 32 bytes spanning sub-blocks 1-2.
        assert_eq!(subblock_mask(Addr(0x110), 32), 0b0110);
    }

    #[test]
    #[should_panic(expected = "straddles")]
    #[cfg(debug_assertions)] // `debug_assert!` does not fire under --release
    fn straddling_access_panics_in_debug() {
        let _ = subblock_mask(Addr(0x13c), 8);
    }

    #[test]
    fn alignment() {
        assert!(Addr(0x40).is_aligned(64));
        assert!(!Addr(0x48).is_aligned(64));
        assert!(Addr(0x48).is_aligned(8));
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(8).is_null());
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", Addr(0x40)), "0x40");
        assert_eq!(format!("{:?}", Addr(0x40)), "Addr(0x40)");
        assert_eq!(format!("{}", LineId(1)), "line 0x1");
    }
}
