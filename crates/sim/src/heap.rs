//! A shared bump allocator for simulated memory.
//!
//! Allocation itself is host-side bookkeeping and charges no simulated
//! cycles: every scheme under comparison (locks, STM, HASTM, HyTM) allocates
//! identically, so allocator cost would cancel out of the paper's ratios.
//! Addresses are never reused, which keeps ABA impossible in tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::addr::Addr;

/// Base of the simulated heap (leaves low memory for fixed test addresses).
pub const HEAP_BASE: u64 = 0x4000_0000;

/// A cloneable handle to the machine's simulated heap.
///
/// # Examples
///
/// ```
/// use hastm_sim::{Machine, MachineConfig};
///
/// let machine = Machine::new(MachineConfig::default());
/// let heap = machine.heap();
/// let a = heap.alloc(24);
/// let b = heap.alloc(24);
/// assert_ne!(a, b);
/// assert!(a.is_aligned(16));
/// ```
#[derive(Clone, Debug)]
pub struct SimHeap {
    next: Arc<AtomicU64>,
}

impl SimHeap {
    pub(crate) fn new() -> Self {
        SimHeap {
            next: Arc::new(AtomicU64::new(HEAP_BASE)),
        }
    }

    /// Allocates `size` bytes with 16-byte alignment (the paper's minimum
    /// object size/alignment assumption for object-granularity conflict
    /// detection is 16 bytes).
    pub fn alloc(&self, size: u64) -> Addr {
        self.alloc_aligned(size, 16)
    }

    /// Allocates `size` bytes aligned to `align` (a power of two, ≥ 8).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or is smaller than 8.
    pub fn alloc_aligned(&self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two() && align >= 8, "bad alignment");
        let size = size.max(1);
        loop {
            let cur = self.next.load(Ordering::Relaxed);
            let base = (cur + align - 1) & !(align - 1);
            let end = base + size;
            if self
                .next
                .compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Addr(base);
            }
        }
    }

    /// Allocates one 64-byte line-aligned cache line.
    pub fn alloc_line(&self) -> Addr {
        self.alloc_aligned(crate::addr::LINE_SIZE, crate::addr::LINE_SIZE)
    }

    /// Total bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - HEAP_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_never_overlaps() {
        let h = SimHeap::new();
        let a = h.alloc(10);
        let b = h.alloc(10);
        assert!(b.0 >= a.0 + 10);
    }

    #[test]
    fn alignment_honored() {
        let h = SimHeap::new();
        h.alloc(3);
        let a = h.alloc_aligned(8, 64);
        assert!(a.is_aligned(64));
        let b = h.alloc_line();
        assert!(b.is_aligned(64));
    }

    #[test]
    fn default_alignment_is_16() {
        let h = SimHeap::new();
        for _ in 0..8 {
            assert!(h.alloc(5).is_aligned(16));
        }
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let h = SimHeap::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| h.alloc(16).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|j| j.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "no two allocations alias");
    }

    #[test]
    fn used_tracks_consumption() {
        let h = SimHeap::new();
        assert_eq!(h.used(), 0);
        h.alloc(32);
        assert!(h.used() >= 32);
    }

    #[test]
    #[should_panic(expected = "bad alignment")]
    fn tiny_alignment_rejected() {
        let h = SimHeap::new();
        let _ = h.alloc_aligned(8, 4);
    }
}
