//! The simulated machine and its deterministic scheduler.
//!
//! Workloads run as ordinary Rust closures on real OS threads, but every
//! simulated operation is admitted by a *conservative logical-clock gate*:
//! the core with the smallest `(clock, core_id)` pair executes its next
//! operation, pays its cycle cost, and wakes the others. Given deterministic
//! workload code, the interleaving of simulated operations — and therefore
//! every cache, coherence, and mark-bit event — is fully deterministic and
//! reproducible, which the paper's §7.4 argues is essential for observing
//! spurious-abort effects ("this also shows the importance of precise
//! simulation").

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::config::{MachineConfig, SchedulePolicy};
use crate::cpu::Cpu;
use crate::heap::SimHeap;
use crate::hierarchy::MemSystem;
use crate::mem::Memory;
use crate::stats::RunReport;

/// Upper bound (exclusive) on the per-core priority jitter drawn by the
/// fuzzed scheduler, in cycles. Large enough to reorder cores whose clocks
/// are within a typical memory-access latency of each other, small enough
/// that the schedule still respects coarse logical-time ordering (a core
/// that `tick`s far ahead still runs last).
const FUZZ_JITTER_RANGE: u64 = 64;

/// One in this many completed operations injects cache pressure under the
/// fuzzed scheduler (a spurious L1 eviction or L2 back-invalidation).
const FUZZ_PRESSURE_PERIOD: u64 = 24;

/// State of the seeded schedule-perturbation layer
/// ([`SchedulePolicy::Fuzzed`]).
///
/// All draws happen under the machine's state mutex, in the order the gate
/// admits cores, so the perturbation sequence is a pure function of the
/// seed and the workload — fully replayable.
pub(crate) struct FuzzState {
    /// SplitMix64 PRNG state.
    rng: u64,
    /// Current per-core gate-priority jitter, re-drawn after each op.
    jitter: Vec<u64>,
}

impl FuzzState {
    fn new(seed: u64, cores: usize) -> Self {
        let mut f = FuzzState {
            rng: seed,
            jitter: vec![0; cores],
        };
        for c in 0..cores {
            f.jitter[c] = f.next() % FUZZ_JITTER_RANGE;
        }
        f
    }

    /// SplitMix64: a full-period 64-bit PRNG in three multiplies.
    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub(crate) struct SimState {
    pub(crate) mem: Memory,
    pub(crate) sys: MemSystem,
    pub(crate) clocks: Vec<u64>,
    pub(crate) active: Vec<bool>,
    /// Number of `true` entries in `active`, maintained by `Machine::run`
    /// and the workers' deactivation guards. Lets the per-op gate and
    /// wake-up path skip condvar traffic entirely when a single core is
    /// running (every populate/digest phase, and all 1-thread cells).
    pub(crate) active_count: usize,
    /// Debug trace address ([`MachineConfig::trace_addr`]): stores to it
    /// are logged.
    pub(crate) trace_addr: Option<u64>,
    /// Monotonic count of [`Machine::run`] invocations. Logical clocks
    /// reset to zero at each run, so `(run_epoch, clock)` is what uniquely
    /// orders events across a machine's whole lifetime (used by
    /// verification layers that correlate events across runs).
    pub(crate) run_epoch: u64,
    /// Seeded scheduler perturbation; `None` under
    /// [`SchedulePolicy::Deterministic`] (that path is bit-identical to
    /// the historical scheduler).
    pub(crate) fuzz: Option<FuzzState>,
}

impl SimState {
    pub(crate) fn sys_cost(&self) -> crate::config::CostModel {
        self.sys.cost_model()
    }

    /// Gate priority of `core`: its logical clock, plus the fuzzed jitter
    /// term when schedule perturbation is on.
    fn priority(&self, core: usize) -> u64 {
        let jitter = self.fuzz.as_ref().map_or(0, |f| f.jitter[core]);
        self.clocks[core] + jitter
    }

    /// Post-operation hook, called by the CPU layer (under the state lock)
    /// each time `core` completes one simulated operation. Under the fuzzed
    /// scheduler this re-draws the core's priority jitter and occasionally
    /// injects cache pressure.
    pub(crate) fn after_op(&mut self, core: usize) {
        let Some(fuzz) = &mut self.fuzz else { return };
        fuzz.jitter[core] = fuzz.next() % FUZZ_JITTER_RANGE;
        let roll = fuzz.next();
        if roll % FUZZ_PRESSURE_PERIOD == 0 {
            let nth = (roll >> 32) as usize;
            if roll % (2 * FUZZ_PRESSURE_PERIOD) == 0 {
                self.sys.inject_back_invalidation(nth);
            } else {
                self.sys.inject_l1_eviction(core, nth);
            }
        }
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<SimState>,
    pub(crate) turn: Condvar,
}

impl Shared {
    /// Whether it is `core`'s turn: its `(priority, id)` is minimal among
    /// active cores. Priority is the logical clock, optionally perturbed
    /// by the fuzzed scheduler's jitter.
    pub(crate) fn is_turn(state: &SimState, core: usize) -> bool {
        // Fast path: a sole active core (or a fully drained machine) never
        // has anyone to defer to.
        if state.active_count == 0 || (state.active_count == 1 && state.active[core]) {
            return true;
        }
        let me = (state.priority(core), core);
        (0..state.clocks.len())
            .filter(|&id| state.active[id])
            .map(|id| (state.priority(id), id))
            .min()
            .map(|min| min == me)
            // A deactivated core (post-run inspection) may always proceed.
            .unwrap_or(true)
    }
}

/// A worker closure run on one simulated core.
pub type WorkerFn<'env> = Box<dyn FnOnce(&mut Cpu) + Send + 'env>;

/// A simulated multi-core machine.
///
/// Memory contents, cache state, and mark state *persist across
/// [`Machine::run`] calls*, so an experiment can populate a data structure
/// in a setup run and then measure a separate timed run, as the paper does
/// ("all the data structures were populated before the experimental run").
/// Statistics are reset at the start of each run.
///
/// # Examples
///
/// ```
/// use hastm_sim::{Addr, Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::with_cores(2));
/// let report = machine.run(vec![
///     Box::new(|cpu: &mut hastm_sim::Cpu| {
///         cpu.store_u64(Addr(0x100), 7);
///     }),
///     Box::new(|cpu: &mut hastm_sim::Cpu| {
///         cpu.tick(1000); // run after the store in logical time
///         assert_eq!(cpu.load_u64(Addr(0x100)), 7);
///     }),
/// ]);
/// assert!(report.makespan() > 0);
/// ```
pub struct Machine {
    config: MachineConfig,
    shared: Arc<Shared>,
    heap: SimHeap,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from `config`.
    pub fn new(config: MachineConfig) -> Self {
        let fuzz = match config.schedule {
            SchedulePolicy::Deterministic => None,
            SchedulePolicy::Fuzzed { seed } => Some(FuzzState::new(seed, config.cores)),
        };
        let state = SimState {
            mem: Memory::new(),
            sys: MemSystem::new(&config),
            clocks: vec![0; config.cores],
            active: vec![false; config.cores],
            active_count: 0,
            trace_addr: config.trace_addr,
            run_epoch: 0,
            fuzz,
        };
        Machine {
            config,
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                turn: Condvar::new(),
            }),
            heap: SimHeap::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// A handle to the machine's simulated heap. Handles are cheap to clone
    /// and can be captured by worker closures.
    pub fn heap(&self) -> SimHeap {
        self.heap.clone()
    }

    /// Empties all caches (cold-start the next run). Mark counters are
    /// bumped for lost marked lines, as a real flush would.
    pub fn flush_caches(&mut self) {
        self.shared.state.lock().sys.flush_caches();
    }

    /// Runs one closure per core, gated by the deterministic scheduler, and
    /// returns the per-run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty or larger than the configured core
    /// count, or if any worker panics (the panic is propagated after the
    /// remaining workers are released).
    pub fn run<'env>(&mut self, workers: Vec<WorkerFn<'env>>) -> RunReport {
        let n = workers.len();
        assert!(
            n >= 1 && n <= self.config.cores,
            "worker count {n} must be in 1..={}",
            self.config.cores
        );
        {
            let mut st = self.shared.state.lock();
            st.sys.reset_stats();
            st.run_epoch += 1;
            for c in 0..self.config.cores {
                st.clocks[c] = 0;
                st.active[c] = c < n;
            }
            st.active_count = n;
        }

        let shared = &self.shared;
        let result = crossbeam::thread::scope(|scope| {
            for (id, worker) in workers.into_iter().enumerate() {
                scope.spawn(move |_| {
                    // Deactivate the core on normal return *and* on panic so
                    // the other cores' turn gates never wedge.
                    struct Deactivate<'a> {
                        shared: &'a Shared,
                        id: usize,
                    }
                    impl Drop for Deactivate<'_> {
                        fn drop(&mut self) {
                            let mut st = self.shared.state.lock();
                            if st.active[self.id] {
                                st.active[self.id] = false;
                                st.active_count -= 1;
                            }
                            drop(st);
                            self.shared.turn.notify_all();
                        }
                    }
                    let _guard = Deactivate { shared, id };
                    let mut cpu = Cpu::new(id, shared);
                    worker(&mut cpu);
                });
            }
        });
        if let Err(payload) = result {
            // crossbeam aggregates worker panics into a Vec; re-raise the
            // first original payload so callers (and #[should_panic] tests)
            // see the real panic message.
            match payload.downcast::<Vec<Box<dyn std::any::Any + Send + 'static>>>() {
                Ok(mut panics) if !panics.is_empty() => {
                    std::panic::resume_unwind(panics.swap_remove(0))
                }
                Ok(_) => panic!("worker panicked with empty payload"),
                Err(other) => std::panic::resume_unwind(other),
            }
        }

        let st = self.shared.state.lock();
        let mut report = RunReport {
            cores: st.sys.core_stats.clone(),
            machine: st.sys.machine_stats.clone(),
        };
        for (c, stats) in report.cores.iter_mut().enumerate() {
            stats.cycles = st.clocks[c];
        }
        report.cores.truncate(n);
        drop(st);
        report
    }

    /// Runs a single worker on core 0 and returns its value along with the
    /// run report. Convenient for setup phases and single-thread
    /// experiments.
    pub fn run_one<R, F>(&mut self, f: F) -> (R, RunReport)
    where
        R: Send,
        F: FnOnce(&mut Cpu) -> R + Send,
    {
        let mut out: Option<R> = None;
        let report = {
            let slot = &mut out;
            self.run(vec![Box::new(move |cpu: &mut Cpu| {
                *slot = Some(f(cpu));
            })])
        };
        (out.expect("worker ran"), report)
    }

    /// The current run epoch: how many [`Machine::run`] calls have started.
    /// Clocks reset each run, so `(run_epoch, clock)` orders events across
    /// the machine's lifetime.
    pub fn run_epoch(&self) -> u64 {
        self.shared.state.lock().run_epoch
    }

    /// Reads a `u64` from simulated memory without going through a core
    /// (no timing effects). Intended for test assertions and result
    /// extraction after a run.
    pub fn peek_u64(&self, addr: crate::addr::Addr) -> u64 {
        self.shared.state.lock().mem.read_u64(addr)
    }

    /// Writes a `u64` to simulated memory without timing effects. Intended
    /// for test setup. Does not invalidate cached copies; use only before
    /// the first run touching `addr`.
    pub fn poke_u64(&mut self, addr: crate::addr::Addr, value: u64) {
        self.shared.state.lock().mem.write_u64(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn single_worker_runs_and_reports() {
        let mut m = Machine::new(MachineConfig::default());
        let (val, report) = m.run_one(|cpu| {
            cpu.store_u64(Addr(0x40), 42);
            cpu.load_u64(Addr(0x40))
        });
        assert_eq!(val, 42);
        assert_eq!(report.cores.len(), 1);
        assert!(report.makespan() > 0);
        assert_eq!(report.cores[0].stores, 1);
        assert_eq!(report.cores[0].loads, 1);
    }

    #[test]
    fn state_persists_across_runs() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x80), 9));
        let (v, report) = m.run_one(|cpu| cpu.load_u64(Addr(0x80)));
        assert_eq!(v, 9);
        // Warm hit: the line stayed cached from the previous run.
        assert_eq!(report.cores[0].l1_hits, 1);
        assert_eq!(report.cores[0].l1_misses, 0);
    }

    #[test]
    fn flush_makes_next_access_cold() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x80), 9));
        m.flush_caches();
        let (_, report) = m.run_one(|cpu| cpu.load_u64(Addr(0x80)));
        assert_eq!(report.cores[0].l1_misses, 1);
    }

    #[test]
    fn deterministic_interleaving() {
        // Two cores race increments on the same location with CAS; the
        // logical-clock gate makes the outcome identical across runs.
        fn race() -> (u64, u64) {
            let mut m = Machine::new(MachineConfig::with_cores(2));
            let report = m.run(
                (0..2)
                    .map(|_| {
                        Box::new(|cpu: &mut Cpu| {
                            for _ in 0..50 {
                                loop {
                                    let v = cpu.load_u64(Addr(0x100));
                                    if cpu.cas_u64(Addr(0x100), v, v + 1) == v {
                                        break;
                                    }
                                }
                            }
                        }) as WorkerFn<'_>
                    })
                    .collect(),
            );
            (m.peek_u64(Addr(0x100)), report.makespan())
        }
        let (v1, t1) = race();
        let (v2, t2) = race();
        assert_eq!(v1, 100);
        assert_eq!((v1, t1), (v2, t2), "simulation must be deterministic");
    }

    #[test]
    fn logical_time_ordering() {
        // Worker 1 waits 10_000 cycles, so worker 0's store is ordered first.
        let mut m = Machine::new(MachineConfig::with_cores(2));
        m.run(vec![
            Box::new(|cpu: &mut Cpu| {
                cpu.store_u64(Addr(0x200), 5);
            }),
            Box::new(|cpu: &mut Cpu| {
                cpu.tick(10_000);
                assert_eq!(cpu.load_u64(Addr(0x200)), 5);
            }),
        ]);
    }

    /// Shared harness for the scheduler tests: two cores race CAS
    /// increments; returns the final count and the makespan.
    fn cas_race(schedule: crate::config::SchedulePolicy) -> (u64, u64) {
        let mut m = Machine::new(MachineConfig {
            schedule,
            ..MachineConfig::with_cores(2)
        });
        let report = m.run(
            (0..2)
                .map(|_| {
                    Box::new(|cpu: &mut Cpu| {
                        for _ in 0..50 {
                            loop {
                                let v = cpu.load_u64(Addr(0x100));
                                if cpu.cas_u64(Addr(0x100), v, v + 1) == v {
                                    break;
                                }
                            }
                        }
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        (m.peek_u64(Addr(0x100)), report.makespan())
    }

    #[test]
    fn fuzzed_schedule_is_replayable_from_its_seed() {
        use crate::config::SchedulePolicy;
        let a = cas_race(SchedulePolicy::Fuzzed { seed: 0xf00d });
        let b = cas_race(SchedulePolicy::Fuzzed { seed: 0xf00d });
        assert_eq!(a.0, 100, "no increment may be lost under fuzzing");
        assert_eq!(a, b, "same seed must replay the same run exactly");
    }

    #[test]
    fn fuzz_seeds_explore_different_schedules() {
        use crate::config::SchedulePolicy;
        let base = cas_race(SchedulePolicy::Deterministic);
        assert_eq!(base.0, 100);
        // Across several seeds, at least one must diverge in timing from
        // the canonical schedule (that's the entire point of fuzzing);
        // every seed must still preserve the program's answer.
        let mut saw_divergence = false;
        for seed in 0..8u64 {
            let f = cas_race(SchedulePolicy::Fuzzed { seed });
            assert_eq!(f.0, 100, "seed {seed} lost an increment");
            saw_divergence |= f.1 != base.1;
        }
        assert!(saw_divergence, "no fuzz seed perturbed the schedule");
    }

    #[test]
    fn trace_addr_comes_from_config() {
        let mut m = Machine::new(MachineConfig {
            trace_addr: Some(0x40),
            ..MachineConfig::default()
        });
        // The traced store goes to stderr; here we only assert the
        // configured machine still runs correctly.
        let (v, _) = m.run_one(|cpu| {
            cpu.store_u64(Addr(0x40), 7);
            cpu.load_u64(Addr(0x40))
        });
        assert_eq!(v, 7);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(vec![
                Box::new(|_cpu: &mut Cpu| panic!("boom")),
                Box::new(|cpu: &mut Cpu| {
                    for _ in 0..10 {
                        cpu.load_u64(Addr(0x300));
                    }
                }),
            ]);
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn too_many_workers_rejected() {
        let mut m = Machine::new(MachineConfig::with_cores(1));
        let _ = m.run(vec![
            Box::new(|_: &mut Cpu| {}) as WorkerFn<'_>,
            Box::new(|_: &mut Cpu| {}) as WorkerFn<'_>,
        ]);
    }

    #[test]
    fn stats_reset_between_runs() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.load_u64(Addr(0x40));
        });
        let (_, r2) = m.run_one(|cpu| {
            cpu.load_u64(Addr(0x40));
            cpu.load_u64(Addr(0x80));
        });
        assert_eq!(r2.cores[0].loads, 2);
    }

    #[test]
    fn workers_can_borrow_environment() {
        let data = vec![1u64, 2, 3];
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let sum = std::sync::atomic::AtomicU64::new(0);
        m.run(
            (0..2)
                .map(|_| {
                    let data = &data;
                    let sum = &sum;
                    Box::new(move |cpu: &mut Cpu| {
                        cpu.tick(1);
                        sum.fetch_add(
                            data.iter().sum::<u64>(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 12);
    }
}
