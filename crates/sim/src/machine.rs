//! The simulated machine and its deterministic scheduler.
//!
//! Workloads run as ordinary Rust closures on real OS threads, but every
//! simulated operation is admitted by a *conservative logical-clock gate*:
//! the core with the smallest `(clock, core_id)` pair executes its next
//! operation, pays its cycle cost, and wakes the others. Given deterministic
//! workload code, the interleaving of simulated operations — and therefore
//! every cache, coherence, and mark-bit event — is fully deterministic and
//! reproducible, which the paper's §7.4 argues is essential for observing
//! spurious-abort effects ("this also shows the importance of precise
//! simulation").

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::config::MachineConfig;
use crate::cpu::Cpu;
use crate::heap::SimHeap;
use crate::hierarchy::MemSystem;
use crate::mem::Memory;
use crate::stats::RunReport;

pub(crate) struct SimState {
    pub(crate) mem: Memory,
    pub(crate) sys: MemSystem,
    pub(crate) clocks: Vec<u64>,
    pub(crate) active: Vec<bool>,
    /// Debug trace address (HASTM_TRACE_ADDR=hex): stores to it are logged.
    pub(crate) trace_addr: Option<u64>,
}

impl SimState {
    pub(crate) fn sys_cost(&self) -> crate::config::CostModel {
        self.sys.cost_model()
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<SimState>,
    pub(crate) turn: Condvar,
}

impl Shared {
    /// Whether it is `core`'s turn: its `(clock, id)` is minimal among
    /// active cores.
    pub(crate) fn is_turn(state: &SimState, core: usize) -> bool {
        let me = (state.clocks[core], core);
        state
            .clocks
            .iter()
            .copied()
            .zip(0..)
            .filter(|&(_, id)| state.active[id])
            .min()
            .map(|min| min == me)
            // A deactivated core (post-run inspection) may always proceed.
            .unwrap_or(true)
    }
}

/// A worker closure run on one simulated core.
pub type WorkerFn<'env> = Box<dyn FnOnce(&mut Cpu) + Send + 'env>;

/// A simulated multi-core machine.
///
/// Memory contents, cache state, and mark state *persist across
/// [`Machine::run`] calls*, so an experiment can populate a data structure
/// in a setup run and then measure a separate timed run, as the paper does
/// ("all the data structures were populated before the experimental run").
/// Statistics are reset at the start of each run.
///
/// # Examples
///
/// ```
/// use hastm_sim::{Addr, Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::with_cores(2));
/// let report = machine.run(vec![
///     Box::new(|cpu: &mut hastm_sim::Cpu| {
///         cpu.store_u64(Addr(0x100), 7);
///     }),
///     Box::new(|cpu: &mut hastm_sim::Cpu| {
///         cpu.tick(1000); // run after the store in logical time
///         assert_eq!(cpu.load_u64(Addr(0x100)), 7);
///     }),
/// ]);
/// assert!(report.makespan() > 0);
/// ```
pub struct Machine {
    config: MachineConfig,
    shared: Arc<Shared>,
    heap: SimHeap,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from `config`.
    pub fn new(config: MachineConfig) -> Self {
        let trace_addr = std::env::var("HASTM_TRACE_ADDR")
            .ok()
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok());
        let state = SimState {
            mem: Memory::new(),
            sys: MemSystem::new(&config),
            clocks: vec![0; config.cores],
            active: vec![false; config.cores],
            trace_addr,
        };
        Machine {
            config,
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                turn: Condvar::new(),
            }),
            heap: SimHeap::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// A handle to the machine's simulated heap. Handles are cheap to clone
    /// and can be captured by worker closures.
    pub fn heap(&self) -> SimHeap {
        self.heap.clone()
    }

    /// Empties all caches (cold-start the next run). Mark counters are
    /// bumped for lost marked lines, as a real flush would.
    pub fn flush_caches(&mut self) {
        self.shared.state.lock().sys.flush_caches();
    }

    /// Runs one closure per core, gated by the deterministic scheduler, and
    /// returns the per-run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty or larger than the configured core
    /// count, or if any worker panics (the panic is propagated after the
    /// remaining workers are released).
    pub fn run<'env>(&mut self, workers: Vec<WorkerFn<'env>>) -> RunReport {
        let n = workers.len();
        assert!(
            n >= 1 && n <= self.config.cores,
            "worker count {n} must be in 1..={}",
            self.config.cores
        );
        {
            let mut st = self.shared.state.lock();
            st.sys.reset_stats();
            for c in 0..self.config.cores {
                st.clocks[c] = 0;
                st.active[c] = c < n;
            }
        }

        let shared = &self.shared;
        let result = crossbeam::thread::scope(|scope| {
            for (id, worker) in workers.into_iter().enumerate() {
                scope.spawn(move |_| {
                    // Deactivate the core on normal return *and* on panic so
                    // the other cores' turn gates never wedge.
                    struct Deactivate<'a> {
                        shared: &'a Shared,
                        id: usize,
                    }
                    impl Drop for Deactivate<'_> {
                        fn drop(&mut self) {
                            let mut st = self.shared.state.lock();
                            st.active[self.id] = false;
                            drop(st);
                            self.shared.turn.notify_all();
                        }
                    }
                    let _guard = Deactivate { shared, id };
                    let mut cpu = Cpu::new(id, shared);
                    worker(&mut cpu);
                });
            }
        });
        if let Err(payload) = result {
            // crossbeam aggregates worker panics into a Vec; re-raise the
            // first original payload so callers (and #[should_panic] tests)
            // see the real panic message.
            match payload.downcast::<Vec<Box<dyn std::any::Any + Send + 'static>>>() {
                Ok(mut panics) if !panics.is_empty() => {
                    std::panic::resume_unwind(panics.swap_remove(0))
                }
                Ok(_) => panic!("worker panicked with empty payload"),
                Err(other) => std::panic::resume_unwind(other),
            }
        }

        let st = self.shared.state.lock();
        let mut report = RunReport {
            cores: st.sys.core_stats.clone(),
            machine: st.sys.machine_stats.clone(),
        };
        for (c, stats) in report.cores.iter_mut().enumerate() {
            stats.cycles = st.clocks[c];
        }
        report.cores.truncate(n);
        drop(st);
        report
    }

    /// Runs a single worker on core 0 and returns its value along with the
    /// run report. Convenient for setup phases and single-thread
    /// experiments.
    pub fn run_one<R, F>(&mut self, f: F) -> (R, RunReport)
    where
        R: Send,
        F: FnOnce(&mut Cpu) -> R + Send,
    {
        let mut out: Option<R> = None;
        let report = {
            let slot = &mut out;
            self.run(vec![Box::new(move |cpu: &mut Cpu| {
                *slot = Some(f(cpu));
            })])
        };
        (out.expect("worker ran"), report)
    }

    /// Reads a `u64` from simulated memory without going through a core
    /// (no timing effects). Intended for test assertions and result
    /// extraction after a run.
    pub fn peek_u64(&self, addr: crate::addr::Addr) -> u64 {
        self.shared.state.lock().mem.read_u64(addr)
    }

    /// Writes a `u64` to simulated memory without timing effects. Intended
    /// for test setup. Does not invalidate cached copies; use only before
    /// the first run touching `addr`.
    pub fn poke_u64(&mut self, addr: crate::addr::Addr, value: u64) {
        self.shared.state.lock().mem.write_u64(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn single_worker_runs_and_reports() {
        let mut m = Machine::new(MachineConfig::default());
        let (val, report) = m.run_one(|cpu| {
            cpu.store_u64(Addr(0x40), 42);
            cpu.load_u64(Addr(0x40))
        });
        assert_eq!(val, 42);
        assert_eq!(report.cores.len(), 1);
        assert!(report.makespan() > 0);
        assert_eq!(report.cores[0].stores, 1);
        assert_eq!(report.cores[0].loads, 1);
    }

    #[test]
    fn state_persists_across_runs() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x80), 9));
        let (v, report) = m.run_one(|cpu| cpu.load_u64(Addr(0x80)));
        assert_eq!(v, 9);
        // Warm hit: the line stayed cached from the previous run.
        assert_eq!(report.cores[0].l1_hits, 1);
        assert_eq!(report.cores[0].l1_misses, 0);
    }

    #[test]
    fn flush_makes_next_access_cold() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x80), 9));
        m.flush_caches();
        let (_, report) = m.run_one(|cpu| cpu.load_u64(Addr(0x80)));
        assert_eq!(report.cores[0].l1_misses, 1);
    }

    #[test]
    fn deterministic_interleaving() {
        // Two cores race increments on the same location with CAS; the
        // logical-clock gate makes the outcome identical across runs.
        fn race() -> (u64, u64) {
            let mut m = Machine::new(MachineConfig::with_cores(2));
            let report = m.run(
                (0..2)
                    .map(|_| {
                        Box::new(|cpu: &mut Cpu| {
                            for _ in 0..50 {
                                loop {
                                    let v = cpu.load_u64(Addr(0x100));
                                    if cpu.cas_u64(Addr(0x100), v, v + 1) == v {
                                        break;
                                    }
                                }
                            }
                        }) as WorkerFn<'_>
                    })
                    .collect(),
            );
            (m.peek_u64(Addr(0x100)), report.makespan())
        }
        let (v1, t1) = race();
        let (v2, t2) = race();
        assert_eq!(v1, 100);
        assert_eq!((v1, t1), (v2, t2), "simulation must be deterministic");
    }

    #[test]
    fn logical_time_ordering() {
        // Worker 1 waits 10_000 cycles, so worker 0's store is ordered first.
        let mut m = Machine::new(MachineConfig::with_cores(2));
        m.run(vec![
            Box::new(|cpu: &mut Cpu| {
                cpu.store_u64(Addr(0x200), 5);
            }),
            Box::new(|cpu: &mut Cpu| {
                cpu.tick(10_000);
                assert_eq!(cpu.load_u64(Addr(0x200)), 5);
            }),
        ]);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(vec![
                Box::new(|_cpu: &mut Cpu| panic!("boom")),
                Box::new(|cpu: &mut Cpu| {
                    for _ in 0..10 {
                        cpu.load_u64(Addr(0x300));
                    }
                }),
            ]);
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn too_many_workers_rejected() {
        let mut m = Machine::new(MachineConfig::with_cores(1));
        let _ = m.run(vec![
            Box::new(|_: &mut Cpu| {}) as WorkerFn<'_>,
            Box::new(|_: &mut Cpu| {}) as WorkerFn<'_>,
        ]);
    }

    #[test]
    fn stats_reset_between_runs() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.load_u64(Addr(0x40));
        });
        let (_, r2) = m.run_one(|cpu| {
            cpu.load_u64(Addr(0x40));
            cpu.load_u64(Addr(0x80));
        });
        assert_eq!(r2.cores[0].loads, 2);
    }

    #[test]
    fn workers_can_borrow_environment() {
        let data = vec![1u64, 2, 3];
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let sum = std::sync::atomic::AtomicU64::new(0);
        m.run(
            (0..2)
                .map(|_| {
                    let data = &data;
                    let sum = &sum;
                    Box::new(move |cpu: &mut Cpu| {
                        cpu.tick(1);
                        sum.fetch_add(
                            data.iter().sum::<u64>(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 12);
    }
}
