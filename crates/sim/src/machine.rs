//! The simulated machine and its deterministic scheduler.
//!
//! Workloads run as ordinary Rust closures on real OS threads, but every
//! simulated operation is admitted by a *conservative logical-clock gate*:
//! the core with the smallest `(clock, core_id)` pair executes its next
//! operation, pays its cycle cost, and hands off to the next core. Given
//! deterministic workload code, the interleaving of simulated operations —
//! and therefore every cache, coherence, and mark-bit event — is fully
//! deterministic and reproducible, which the paper's §7.4 argues is
//! essential for observing spurious-abort effects ("this also shows the
//! importance of precise simulation").
//!
//! # Gate admission: per-op vs run-until-overtaken quanta
//!
//! The gate supports two admission strategies ([`crate::GateMode`]):
//!
//! * **Per-op** (reference): every simulated operation acquires the state
//!   lock, checks `(clock, core_id)` minimality, performs the op, releases,
//!   and hands off. Simple, but one lock round-trip — and usually one
//!   condvar wake — per simulated operation.
//!
//! * **Quantum** (default): when the gate admits core *C*, it computes the
//!   second-smallest competitor bound *B* = min over the *other* active
//!   cores of `(clock, core_id)` **once**, and then *C* keeps executing
//!   operations while holding the state lock until its own `(clock, C)`
//!   reaches *B*. Only then does it release and re-enter the gate.
//!
//! The quantum schedule is **provably bit-identical** to per-op gating:
//! while *C* holds the state lock, no other core can execute an operation,
//! advance its clock, or deactivate (all of those require the lock), so the
//! cached bound *B* stays exact for the whole quantum — and the
//! keep-running test `(clock_C, C) < B` is precisely the per-op
//! `is_turn` minimality test, evaluated against state that cannot have
//! changed. The two modes therefore admit the same operation sequence and
//! differ only in host-side synchronization cost. Under
//! [`SchedulePolicy::Fuzzed`] the per-core priority jitter is re-drawn
//! after *every* operation, which invalidates a cached bound, so the
//! quantum clamps to one operation (`Cpu::finish` requires
//! `fuzz.is_none()` to extend a quantum) — fuzzed runs take the per-op
//! path regardless of gate mode.
//!
//! Handoff is *targeted*: the releasing core computes the unique next core
//! (minimal `(priority, id)` among active cores) and wakes only that
//! core's condvar, instead of `notify_all`'s thundering herd. A bounded
//! spin phase watching the handoff hint precedes parking, and is disabled
//! (zero iterations) on single-CPU hosts where spinning can only delay the
//! core being waited on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::config::{FaultEvent, FaultKind, GateMode, MachineConfig, Preemption, SchedulePolicy};
use crate::cpu::Cpu;
use crate::heap::SimHeap;
use crate::hierarchy::MemSystem;
use crate::mem::Memory;
use crate::stats::RunReport;

/// Upper bound (exclusive) on the per-core priority jitter drawn by the
/// fuzzed scheduler, in cycles. Large enough to reorder cores whose clocks
/// are within a typical memory-access latency of each other, small enough
/// that the schedule still respects coarse logical-time ordering (a core
/// that `tick`s far ahead still runs last).
const FUZZ_JITTER_RANGE: u64 = 64;

/// One in this many completed operations injects cache pressure under the
/// fuzzed scheduler (a spurious L1 eviction or L2 back-invalidation).
const FUZZ_PRESSURE_PERIOD: u64 = 24;

/// Iterations of the spin-before-park phase a waiting core runs while
/// watching the handoff hint, before falling back to its condvar. Sized for
/// a few hundred nanoseconds: long enough to catch the common short handoff
/// (the running core finishes one op and yields), short enough not to burn
/// a timeslice when the running core is inside a long quantum.
const SPIN_BEFORE_PARK_ITERS: u32 = 200;

/// Handoff-hint value meaning "no core is known to be next".
const NO_HINT: usize = usize::MAX;

/// Horizon (exclusive) from which [`SchedulePolicy::Pct`] draws its
/// priority-change points, in global gated ops. Classical PCT draws change
/// points from the run's exact op count `k`, which the simulator cannot
/// know up front; a fixed horizon keeps the policy a pure function of
/// `(seed, depth)`. Sized to cover the small workloads schedule search
/// targets (a few hundred to ~1k gated ops) — change points drawn past the
/// end of a shorter run simply never fire, exactly as classical PCT treats
/// an overestimated `k`.
pub const PCT_CHANGE_HORIZON: u64 = 1024;

/// Priority bit that demotes every non-favored core while an explicit
/// preemption directive is in force. Logical clocks stay far below this,
/// so favored-mode priorities never collide with clock-based ones.
const FAVOR_DEMOTED: u64 = 1 << 63;

/// Stall length (in cycles of one `Cpu::tick`) at or above which a
/// PCT-scheduled core counts as *yielding* and is demoted below every
/// other core — PCT's standard treatment of yields. Strict rank priority
/// would otherwise let a spin-waiting core starve the very core it waits
/// on (livelock): every unbounded wait loop in this repository backs off
/// with ticks that reach at least 16 cycles (spinlock exponential backoff,
/// ticket-lock serving spin, STM/HTM contention waits), so each spin
/// iteration demotes the waiter and the owner runs.
pub(crate) const PCT_YIELD_CYCLES: u64 = 16;

/// SplitMix64: a full-period 64-bit PRNG in three multiplies. Shared by
/// every seeded scheduler layer so replays depend only on the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// State of the seeded schedule-perturbation layer
/// ([`SchedulePolicy::Fuzzed`]).
///
/// All draws happen under the machine's state mutex, in the order the gate
/// admits cores, so the perturbation sequence is a pure function of the
/// seed and the workload — fully replayable.
pub(crate) struct FuzzState {
    /// SplitMix64 PRNG state.
    rng: u64,
    /// Current per-core gate-priority jitter, re-drawn after each op.
    jitter: Vec<u64>,
}

impl FuzzState {
    fn new(seed: u64, cores: usize) -> Self {
        let mut f = FuzzState {
            rng: seed,
            jitter: vec![0; cores],
        };
        for c in 0..cores {
            f.jitter[c] = f.next() % FUZZ_JITTER_RANGE;
        }
        f
    }

    fn next(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }
}

/// State of the PCT scheduler ([`SchedulePolicy::Pct`]): a random priority
/// rank per core (lower runs first) plus `depth - 1` sorted change points.
/// Rebuilt from the seed at the start of every [`Machine::run`], so each
/// run — in particular the measured run after a setup run — replays the
/// same rank permutation and change points.
pub(crate) struct PctState {
    /// Current priority rank of each core; lower rank wins the gate.
    ranks: Vec<u64>,
    /// Sorted global op indices at which the running core is demoted.
    change_points: Vec<u64>,
    /// Next unfired entry of `change_points`.
    next_change: usize,
    /// Rank handed to the next demoted core: starts past every initial
    /// rank, so each demotion sends the core below all others.
    next_demote: u64,
}

impl PctState {
    fn new(seed: u64, depth: u32, cores: usize) -> Self {
        let mut rng = seed;
        // Fisher–Yates permutation of 0..cores as the initial ranks.
        let mut ranks: Vec<u64> = (0..cores as u64).collect();
        for i in (1..cores).rev() {
            let j = (splitmix64(&mut rng) % (i as u64 + 1)) as usize;
            ranks.swap(i, j);
        }
        let mut change_points: Vec<u64> = (0..depth.saturating_sub(1))
            .map(|_| splitmix64(&mut rng) % PCT_CHANGE_HORIZON)
            .collect();
        change_points.sort_unstable();
        PctState {
            ranks,
            change_points,
            next_change: 0,
            next_demote: cores as u64,
        }
    }
}

/// One entry of the recorded schedule log
/// ([`MachineConfig::record_schedule`]): which core the gate admitted for
/// each global op, and the memory line that op touched (if it made a
/// data access).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScheduleEvent {
    /// Global gated-op index, 0-based.
    pub op: u64,
    /// Core that executed the op.
    pub core: usize,
    /// `(line, was_write)` of the op's data access, when it made one.
    /// Multi-access ops (e.g. HTM commit write-back) record their last
    /// access.
    pub line: Option<(crate::addr::LineId, bool)>,
}

pub(crate) struct SimState {
    pub(crate) mem: Memory,
    pub(crate) sys: MemSystem,
    pub(crate) clocks: Vec<u64>,
    pub(crate) active: Vec<bool>,
    /// Number of `true` entries in `active`, maintained by `Machine::run`
    /// and the workers' deactivation guards. Lets the per-op gate and
    /// wake-up path skip condvar traffic entirely when a single core is
    /// running (every populate/digest phase, and all 1-thread cells).
    pub(crate) active_count: usize,
    /// Debug trace address ([`MachineConfig::trace_addr`]): stores to it
    /// are logged.
    pub(crate) trace_addr: Option<u64>,
    /// Monotonic count of [`Machine::run`] invocations. Logical clocks
    /// reset to zero at each run, so `(run_epoch, clock)` is what uniquely
    /// orders events across a machine's whole lifetime (used by
    /// verification layers that correlate events across runs).
    pub(crate) run_epoch: u64,
    /// Seeded scheduler perturbation; `None` under
    /// [`SchedulePolicy::Deterministic`] (that path is bit-identical to
    /// the historical scheduler).
    pub(crate) fuzz: Option<FuzzState>,
    /// PCT scheduler state; `None` unless [`SchedulePolicy::Pct`]. Rebuilt
    /// from the seed at the start of each run.
    pub(crate) pct: Option<PctState>,
    /// Global count of gated ops completed in the current run.
    pub(crate) op_count: u64,
    /// Explicit preemption trace (sorted by `at_op`); see
    /// [`MachineConfig::preemptions`].
    preemptions: Vec<Preemption>,
    /// Next unfired entry of `preemptions`.
    trace_pos: usize,
    /// Core currently favored by the preemption trace: while it is active
    /// it runs exclusively, overriding every schedule policy.
    favored: Option<usize>,
    /// Fault-injection plan (sorted by `at_op`); see
    /// [`MachineConfig::faults`].
    faults: Vec<FaultEvent>,
    /// Next unfired entry of `faults`.
    fault_pos: usize,
    /// Whether to append to `schedule_log` after each gated op.
    record_schedule: bool,
    /// Per-op schedule log of the current run (when recording is on).
    schedule_log: Vec<ScheduleEvent>,
    /// End time (cycles) of the latest op completed under a *rank-based*
    /// schedule (PCT ranks or a preemption trace's favored pin). Those
    /// policies admit cores out of clock order; a core admitted with a
    /// lagging clock was descheduled, not executing in the past, so its
    /// clock jumps to this watermark at admission. That keeps per-core
    /// clocks embeddable in one global timeline — the property the
    /// serializability oracle's commit-window analysis relies on.
    serial_now: u64,
    /// Whether speculation is armed for the current run: the gate is
    /// [`GateMode::Speculative`] *and* nothing requires per-op global
    /// ordering of side channels — no dynamic schedule, no schedule
    /// recording, no `trace_addr`, no structured tracing. Recomputed at
    /// each run start; when false a Speculative machine degenerates to
    /// per-op gating (schedule-identical to `Quantum`).
    pub(crate) spec_ok: bool,
    /// Forced-taint test hook ([`MachineConfig::spec_taint_at`]).
    spec_taint_at: Option<u64>,
}

impl SimState {
    pub(crate) fn sys_cost(&self) -> crate::config::CostModel {
        self.sys.cost_model()
    }

    /// Gate priority of `core` (lower wins). In order of precedence: an
    /// in-force preemption directive pins the favored core to priority 0
    /// and demotes everyone else; under PCT the priority is the core's
    /// current rank; otherwise it is the logical clock, plus the fuzzed
    /// jitter term when schedule perturbation is on.
    fn priority(&self, core: usize) -> u64 {
        if let Some(f) = self.favored {
            if self.active[f] {
                return if core == f {
                    0
                } else {
                    self.clocks[core] | FAVOR_DEMOTED
                };
            }
        }
        if let Some(pct) = &self.pct {
            return pct.ranks[core];
        }
        let jitter = self.fuzz.as_ref().map_or(0, |f| f.jitter[core]);
        self.clocks[core] + jitter
    }

    /// Whether any scheduling layer can change priorities (or must observe
    /// state) between ops. When true, the quantum gate clamps to one op:
    /// its cached competitor bound is in clock units and would go stale the
    /// moment a jitter re-draw, PCT demotion, or preemption directive
    /// fires. Clamping preserves the schedule exactly (per-op and quantum
    /// admission are schedule-identical), so dynamic policies behave the
    /// same under either gate mode.
    pub(crate) fn dynamic_schedule(&self) -> bool {
        self.fuzz.is_some()
            || self.pct.is_some()
            || !self.preemptions.is_empty()
            || !self.faults.is_empty()
    }

    /// Minimal `(priority, id)` among active cores — the core the gate
    /// admits next. `None` when no core is active.
    pub(crate) fn min_active(&self) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for id in 0..self.clocks.len() {
            if self.active[id] {
                let t = (self.priority(id), id);
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    /// Minimal `(priority, id)` among active cores *other than* `core` —
    /// the bound the quantum scheduler caches at admission. `None` means
    /// `core` has no competitors (it is the sole active core) and may run
    /// to the end of its worker without re-entering the gate.
    pub(crate) fn competitor_bound(&self, core: usize) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for id in 0..self.clocks.len() {
            if id != core && self.active[id] {
                let t = (self.priority(id), id);
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    /// Whether the current policy admits cores by rank rather than clock
    /// (PCT, or an explicit preemption trace) — the policies that need the
    /// `serial_now` causal clock sync.
    fn rank_based(&self) -> bool {
        self.pct.is_some() || !self.preemptions.is_empty()
    }

    /// Admission hook: under a rank-based schedule, pulls the admitted
    /// core's clock up to the end of the latest completed op, so an op's
    /// cycle window never precedes work that was admitted before it.
    pub(crate) fn note_admission(&mut self, core: usize) {
        if self.rank_based() && self.clocks[core] < self.serial_now {
            self.clocks[core] = self.serial_now;
        }
    }

    /// Post-operation hook, called by the CPU layer (under the state lock)
    /// each time `core` completes one simulated operation. Advances the
    /// global op counter, appends to the schedule log, fires due preemption
    /// directives / fault events / PCT change points, and — under the
    /// fuzzed scheduler — re-draws the core's priority jitter and
    /// occasionally injects cache pressure.
    pub(crate) fn after_op(&mut self, core: usize) {
        self.op_count += 1;
        if self.spec_taint_at.is_some_and(|at| self.op_count > at) {
            // Test hook: simulate a detected conflict so the rollback path
            // (discard + conservative re-run) can be exercised on demand.
            self.sys.spec_force_taint();
        }
        if self.rank_based() && self.serial_now < self.clocks[core] {
            self.serial_now = self.clocks[core];
        }
        if self.record_schedule {
            let line = self.sys.take_last_access();
            self.schedule_log.push(ScheduleEvent {
                op: self.op_count - 1,
                core,
                line,
            });
        }
        self.fire_due_events();
        if let Some(pct) = &mut self.pct {
            // Each change point the run crosses demotes the *currently
            // running* core below every other, per the PCT algorithm.
            while pct.next_change < pct.change_points.len()
                && self.op_count >= pct.change_points[pct.next_change]
            {
                pct.ranks[core] = pct.next_demote;
                pct.next_demote += 1;
                pct.next_change += 1;
            }
        }
        if let Some(fuzz) = &mut self.fuzz {
            fuzz.jitter[core] = fuzz.next() % FUZZ_JITTER_RANGE;
            let roll = fuzz.next();
            if roll % FUZZ_PRESSURE_PERIOD == 0 {
                let nth = (roll >> 32) as usize;
                if roll % (2 * FUZZ_PRESSURE_PERIOD) == 0 {
                    self.sys.inject_back_invalidation(nth);
                } else {
                    self.sys.inject_l1_eviction(core, nth);
                }
            }
        }
        if self.sys.tracing() {
            // Record the gate admission and route everything this op staged
            // (including injected-fault fallout above) at the executing
            // core's clock. Purely observational: never a gated op itself.
            let cycle = self.clocks[core];
            self.sys.trace_op_end(core, self.op_count - 1, cycle);
        }
    }

    /// Yield hook ([`PCT_YIELD_CYCLES`]): called by `Cpu::tick` for long
    /// stalls (spin backoff, contention probes, retry backoff). Under PCT
    /// it demotes `core` below every other core, as PCT demotes a thread
    /// at an explicit yield. Under a preemption trace it releases the
    /// favored pin when the *favored* core stalls — otherwise a favored
    /// core spinning on a lock or record held by a demoted core would
    /// starve the owner forever. Both effects are deterministic functions
    /// of the executed ops, so replays and the exhaustive explorer see
    /// identical behavior.
    pub(crate) fn pct_note_yield(&mut self, core: usize) {
        if let Some(pct) = &mut self.pct {
            pct.ranks[core] = pct.next_demote;
            pct.next_demote += 1;
        }
        if self.favored == Some(core) {
            self.favored = None;
        }
    }

    /// Fires every preemption directive and fault event whose `at_op` the
    /// global op counter has reached. Called after each gated op and once
    /// at run start (so `at_op == 0` entries apply before the first op).
    fn fire_due_events(&mut self) {
        while self.trace_pos < self.preemptions.len()
            && self.preemptions[self.trace_pos].at_op <= self.op_count
        {
            self.favored = Some(self.preemptions[self.trace_pos].core);
            self.trace_pos += 1;
        }
        while self.fault_pos < self.faults.len()
            && self.faults[self.fault_pos].at_op <= self.op_count
        {
            let ev = self.faults[self.fault_pos];
            self.fault_pos += 1;
            match ev.kind {
                FaultKind::EvictL1 { nth } => {
                    self.sys.inject_l1_eviction(ev.core, nth);
                }
                FaultKind::BackInvalidate { nth } => {
                    self.sys.inject_back_invalidation(nth);
                }
                FaultKind::SpuriousAbort => {
                    self.sys.inject_spurious_abort(ev.core);
                }
            }
        }
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<SimState>,
    /// One condvar per core: a non-admitted core parks on its own entry,
    /// and the handoff path wakes exactly the next core instead of
    /// broadcasting to all of them.
    turns: Box<[Condvar]>,
    /// Handoff hint: id of the core the last handoff selected to run next
    /// ([`NO_HINT`] when unknown). The spin-before-park phase watches this
    /// without taking the lock; it is advisory only — waiters always
    /// re-check `is_turn` under the lock before proceeding or parking, so
    /// a stale hint can cost a little spinning but never correctness.
    next_hint: AtomicUsize,
    /// Gate admission strategy ([`MachineConfig::gate`]).
    pub(crate) gate: GateMode,
    /// Speculation window ([`MachineConfig::spec_window`]).
    pub(crate) spec_window: u64,
    /// Spin-before-park iterations; 0 on single-CPU hosts (spinning there
    /// only steals cycles from the core being waited on) and for
    /// single-core machines (nothing to wait for).
    spin_iters: u32,
}

impl Shared {
    /// Whether it is `core`'s turn: its `(priority, id)` is minimal among
    /// active cores. Priority is the logical clock, optionally perturbed
    /// by the fuzzed scheduler's jitter.
    pub(crate) fn is_turn(state: &SimState, core: usize) -> bool {
        // Fast path: a sole active core (or a fully drained machine) never
        // has anyone to defer to.
        if state.active_count == 0 || (state.active_count == 1 && state.active[core]) {
            return true;
        }
        let me = (state.priority(core), core);
        state
            .min_active()
            .map(|min| min == me)
            // A deactivated core (post-run inspection) may always proceed.
            .unwrap_or(true)
    }

    /// Blocks until the gate admits `core`, then returns the locked state.
    pub(crate) fn wait_turn(&self, core: usize) -> MutexGuard<'_, SimState> {
        let mut st = self.state.lock();
        if Shared::is_turn(&st, core) {
            return st;
        }
        if self.spin_iters > 0 {
            // Bounded spin watching the handoff hint before parking: short
            // handoffs (the running core yields after one op) complete
            // without a futex round-trip.
            drop(st);
            for _ in 0..self.spin_iters {
                if self.next_hint.load(Ordering::Acquire) == core {
                    break;
                }
                std::hint::spin_loop();
            }
            st = self.state.lock();
        }
        while !Shared::is_turn(&st, core) {
            self.turns[core].wait(&mut st);
        }
        st
    }

    /// Releases the state lock and wakes the unique next core (targeted
    /// handoff). Called by a core yielding the gate after an op (or a
    /// quantum), and by the deactivation guard on worker exit.
    ///
    /// No wakeup can be lost: every mutation that changes which core is
    /// minimal (clock advance, jitter re-draw, deactivation) happens under
    /// the lock held here, and a waiter only parks after re-checking
    /// `is_turn` under that same lock — so either the waiter observes the
    /// mutation before parking, or it is already parked when we notify.
    pub(crate) fn handoff(&self, st: MutexGuard<'_, SimState>, from: usize) {
        // Solo fast path: a lone active core handing off to itself has no
        // waiter to wake (deactivated cores never park; cf. `is_turn`).
        if st.active_count == 1 && st.active[from] {
            drop(st);
            return;
        }
        let next = st.min_active();
        drop(st);
        if let Some((_, id)) = next {
            if id != from {
                self.next_hint.store(id, Ordering::Release);
                self.turns[id].notify_one();
            }
        }
    }
}

/// A worker closure run on one simulated core.
pub type WorkerFn<'env> = Box<dyn FnOnce(&mut Cpu) + Send + 'env>;

/// A simulated multi-core machine.
///
/// Memory contents, cache state, and mark state *persist across
/// [`Machine::run`] calls*, so an experiment can populate a data structure
/// in a setup run and then measure a separate timed run, as the paper does
/// ("all the data structures were populated before the experimental run").
/// Statistics are reset at the start of each run.
///
/// # Examples
///
/// ```
/// use hastm_sim::{Addr, Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::with_cores(2));
/// let report = machine.run(vec![
///     Box::new(|cpu: &mut hastm_sim::Cpu| {
///         cpu.store_u64(Addr(0x100), 7);
///     }),
///     Box::new(|cpu: &mut hastm_sim::Cpu| {
///         cpu.tick(1000); // run after the store in logical time
///         assert_eq!(cpu.load_u64(Addr(0x100)), 7);
///     }),
/// ]);
/// assert!(report.makespan() > 0);
/// ```
/// Verdict of a [`GateMode::Speculative`] run ([`Machine::spec_outcome`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpecOutcome {
    /// Whether the speculative schedule was certified equivalent to the
    /// conservative one. `false` means the run's output must be discarded
    /// and the workload re-run conservatively.
    pub certified: bool,
    /// Gated ops admitted speculatively (past the conservative bound).
    pub spec_ops: u64,
    /// Total gated ops the run executed.
    pub total_ops: u64,
}

pub struct Machine {
    config: MachineConfig,
    shared: Arc<Shared>,
    heap: SimHeap,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from `config`.
    pub fn new(config: MachineConfig) -> Self {
        let fuzz = match config.schedule {
            SchedulePolicy::Deterministic | SchedulePolicy::Pct { .. } => None,
            SchedulePolicy::Fuzzed { seed } => Some(FuzzState::new(seed, config.cores)),
        };
        debug_assert!(
            config
                .preemptions
                .windows(2)
                .all(|w| w[0].at_op <= w[1].at_op),
            "preemption trace must be sorted by at_op"
        );
        debug_assert!(
            config.faults.windows(2).all(|w| w[0].at_op <= w[1].at_op),
            "fault plan must be sorted by at_op"
        );
        let mut sys = MemSystem::new(&config);
        sys.set_record_accesses(config.record_schedule);
        let state = SimState {
            mem: Memory::new(),
            sys,
            clocks: vec![0; config.cores],
            active: vec![false; config.cores],
            active_count: 0,
            trace_addr: config.trace_addr,
            run_epoch: 0,
            fuzz,
            pct: None,
            op_count: 0,
            preemptions: config.preemptions.clone(),
            trace_pos: 0,
            favored: None,
            serial_now: 0,
            faults: config.faults.clone(),
            fault_pos: 0,
            record_schedule: config.record_schedule,
            schedule_log: Vec::new(),
            spec_ok: false,
            spec_taint_at: config.spec_taint_at,
        };
        // Spin-before-park only helps when the handing-off core and the
        // waiter can actually run simultaneously.
        let host_parallel = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        let spin_iters = if config.cores > 1 && host_parallel {
            SPIN_BEFORE_PARK_ITERS
        } else {
            0
        };
        let turns = (0..config.cores).map(|_| Condvar::new()).collect();
        Machine {
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                turns,
                next_hint: AtomicUsize::new(NO_HINT),
                gate: config.gate,
                spec_window: config.spec_window,
                spin_iters,
            }),
            config,
            heap: SimHeap::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// A handle to the machine's simulated heap. Handles are cheap to clone
    /// and can be captured by worker closures.
    pub fn heap(&self) -> SimHeap {
        self.heap.clone()
    }

    /// Empties all caches (cold-start the next run). Mark counters are
    /// bumped for lost marked lines, as a real flush would.
    pub fn flush_caches(&mut self) {
        self.shared.state.lock().sys.flush_caches();
    }

    /// Replaces the preemption trace applied to subsequent runs (`trace`
    /// must be sorted by `at_op`). Lets a harness run setup phases
    /// unsteered and install the trace for the measured run only.
    pub fn set_preemptions(&mut self, trace: Vec<Preemption>) {
        debug_assert!(
            trace.windows(2).all(|w| w[0].at_op <= w[1].at_op),
            "preemption trace must be sorted by at_op"
        );
        self.config.preemptions = trace.clone();
        self.shared.state.lock().preemptions = trace;
    }

    /// Replaces the fault-injection plan applied to subsequent runs
    /// (`plan` must be sorted by `at_op`).
    pub fn set_faults(&mut self, plan: Vec<FaultEvent>) {
        debug_assert!(
            plan.windows(2).all(|w| w[0].at_op <= w[1].at_op),
            "fault plan must be sorted by at_op"
        );
        self.config.faults = plan.clone();
        self.shared.state.lock().faults = plan;
    }

    /// Turns per-op schedule-log recording on or off for subsequent runs.
    pub fn set_record_schedule(&mut self, on: bool) {
        self.config.record_schedule = on;
        let mut st = self.shared.state.lock();
        st.record_schedule = on;
        st.sys.set_record_accesses(on);
    }

    /// Takes (and clears) the schedule log recorded by the most recent run.
    /// Empty unless [`MachineConfig::record_schedule`] (or
    /// [`Machine::set_record_schedule`]) enabled recording.
    pub fn take_schedule_log(&mut self) -> Vec<ScheduleEvent> {
        std::mem::take(&mut self.shared.state.lock().schedule_log)
    }

    /// Arms (with `Some`) or disarms (with `None`) structured event tracing
    /// for subsequent runs. Lets a harness run setup phases untraced and
    /// trace the measured run only. Tracing is purely observational: it
    /// charges no cycles, gates no ops, and leaves the simulated run
    /// bit-identical to an untraced run.
    pub fn set_tracing(&mut self, config: Option<crate::trace::TraceConfig>) {
        self.config.trace = config;
        self.shared.state.lock().sys.set_trace(config);
    }

    /// Harvests the trace recorded by the most recent run (the recorder
    /// stays armed and empty). `None` unless tracing is armed.
    pub fn take_trace(&mut self) -> Option<crate::trace::TraceLog> {
        self.shared.state.lock().sys.take_trace()
    }

    /// Speculation verdict for the most recent run. `None` unless the gate
    /// is [`GateMode::Speculative`]. When `certified` is false the run's
    /// output MUST be discarded and the workload re-executed under
    /// [`GateMode::Quantum`] (or with speculation clamped): some
    /// speculative op raced a canonical remote access and the interleaving
    /// is not guaranteed equivalent to the conservative schedule.
    pub fn spec_outcome(&self) -> Option<SpecOutcome> {
        if self.config.gate != GateMode::Speculative {
            return None;
        }
        let st = self.shared.state.lock();
        Some(SpecOutcome {
            certified: !st.sys.spec_tainted(),
            spec_ops: st.sys.spec_ops(),
            total_ops: st.op_count,
        })
    }

    /// Runs one closure per core, gated by the deterministic scheduler, and
    /// returns the per-run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty or larger than the configured core
    /// count, or if any worker panics (the panic is propagated after the
    /// remaining workers are released).
    pub fn run<'env>(&mut self, workers: Vec<WorkerFn<'env>>) -> RunReport {
        let n = workers.len();
        assert!(
            n >= 1 && n <= self.config.cores,
            "worker count {n} must be in 1..={}",
            self.config.cores
        );
        {
            let mut st = self.shared.state.lock();
            st.sys.reset_stats();
            st.run_epoch += 1;
            for c in 0..self.config.cores {
                st.clocks[c] = 0;
                st.active[c] = c < n;
            }
            st.active_count = n;
            // Schedule-exploration state is per-run: the op counter,
            // preemption trace, fault plan, and PCT ranks/change points all
            // restart, so a plan installed between runs targets exactly the
            // next run (and two identical runs replay identically).
            st.op_count = 0;
            st.trace_pos = 0;
            st.fault_pos = 0;
            st.favored = None;
            st.schedule_log.clear();
            st.serial_now = 0;
            st.pct = match self.config.schedule {
                SchedulePolicy::Pct { seed, depth } => {
                    Some(PctState::new(seed, depth, self.config.cores))
                }
                _ => None,
            };
            st.sys.spec_reset();
            // Speculation is armed only when every side channel tolerates
            // the relaxed admission order: dynamic schedules (fuzz / PCT /
            // preemption traces / fault plans) perturb per-op, schedule
            // recording and address tracing observe the global admission
            // order, and structured tracing timestamps each op at
            // admission. Any of those forces per-op conservative gating,
            // exactly like they clamp the quantum (see DESIGN.md §11).
            st.spec_ok = self.shared.gate == GateMode::Speculative
                && !st.dynamic_schedule()
                && !st.record_schedule
                && st.trace_addr.is_none()
                && !st.sys.tracing();
            st.sys.trace_reset();
            st.fire_due_events();
            // Events staged by at_op==0 faults above carry cycle 0.
            st.sys.trace_flush(0);
        }

        let shared = &self.shared;
        let result = crossbeam::thread::scope(|scope| {
            for (id, worker) in workers.into_iter().enumerate() {
                scope.spawn(move |_| {
                    // Deactivate the core on normal return *and* on panic so
                    // the other cores' turn gates never wedge.
                    struct Deactivate<'a> {
                        shared: &'a Shared,
                        id: usize,
                    }
                    impl Drop for Deactivate<'_> {
                        fn drop(&mut self) {
                            let mut st = self.shared.state.lock();
                            if st.active[self.id] {
                                st.active[self.id] = false;
                                st.active_count -= 1;
                            }
                            // Deactivation can promote another core to
                            // minimal; hand off to it. (The Cpu — and any
                            // quantum guard it still holds — was dropped
                            // before this guard runs.)
                            self.shared.handoff(st, self.id);
                        }
                    }
                    let _guard = Deactivate { shared, id };
                    let mut cpu = Cpu::new(id, shared);
                    worker(&mut cpu);
                });
            }
        });
        if let Err(payload) = result {
            // crossbeam aggregates worker panics into a Vec; re-raise the
            // first original payload so callers (and #[should_panic] tests)
            // see the real panic message.
            match payload.downcast::<Vec<Box<dyn std::any::Any + Send + 'static>>>() {
                Ok(mut panics) if !panics.is_empty() => {
                    std::panic::resume_unwind(panics.swap_remove(0))
                }
                Ok(_) => panic!("worker panicked with empty payload"),
                Err(other) => std::panic::resume_unwind(other),
            }
        }

        let st = self.shared.state.lock();
        let mut report = RunReport {
            cores: st.sys.core_stats.clone(),
            machine: st.sys.machine_stats.clone(),
        };
        for (c, stats) in report.cores.iter_mut().enumerate() {
            stats.cycles = st.clocks[c];
        }
        report.cores.truncate(n);
        drop(st);
        report
    }

    /// Runs a single worker on core 0 and returns its value along with the
    /// run report. Convenient for setup phases and single-thread
    /// experiments.
    pub fn run_one<R, F>(&mut self, f: F) -> (R, RunReport)
    where
        R: Send,
        F: FnOnce(&mut Cpu) -> R + Send,
    {
        let mut out: Option<R> = None;
        let report = {
            let slot = &mut out;
            self.run(vec![Box::new(move |cpu: &mut Cpu| {
                *slot = Some(f(cpu));
            })])
        };
        (out.expect("worker ran"), report)
    }

    /// The current run epoch: how many [`Machine::run`] calls have started.
    /// Clocks reset each run, so `(run_epoch, clock)` orders events across
    /// the machine's lifetime.
    pub fn run_epoch(&self) -> u64 {
        self.shared.state.lock().run_epoch
    }

    /// Reads a `u64` from simulated memory without going through a core
    /// (no timing effects). Intended for test assertions and result
    /// extraction after a run.
    pub fn peek_u64(&self, addr: crate::addr::Addr) -> u64 {
        self.shared.state.lock().mem.read_u64(addr)
    }

    /// Writes a `u64` to simulated memory without timing effects. Intended
    /// for test setup. Does not invalidate cached copies; use only before
    /// the first run touching `addr`.
    pub fn poke_u64(&mut self, addr: crate::addr::Addr, value: u64) {
        self.shared.state.lock().mem.write_u64(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn single_worker_runs_and_reports() {
        let mut m = Machine::new(MachineConfig::default());
        let (val, report) = m.run_one(|cpu| {
            cpu.store_u64(Addr(0x40), 42);
            cpu.load_u64(Addr(0x40))
        });
        assert_eq!(val, 42);
        assert_eq!(report.cores.len(), 1);
        assert!(report.makespan() > 0);
        assert_eq!(report.cores[0].stores, 1);
        assert_eq!(report.cores[0].loads, 1);
    }

    #[test]
    fn state_persists_across_runs() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x80), 9));
        let (v, report) = m.run_one(|cpu| cpu.load_u64(Addr(0x80)));
        assert_eq!(v, 9);
        // Warm hit: the line stayed cached from the previous run.
        assert_eq!(report.cores[0].l1_hits, 1);
        assert_eq!(report.cores[0].l1_misses, 0);
    }

    #[test]
    fn flush_makes_next_access_cold() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x80), 9));
        m.flush_caches();
        let (_, report) = m.run_one(|cpu| cpu.load_u64(Addr(0x80)));
        assert_eq!(report.cores[0].l1_misses, 1);
    }

    #[test]
    fn deterministic_interleaving() {
        // Two cores race increments on the same location with CAS; the
        // logical-clock gate makes the outcome identical across runs.
        fn race() -> (u64, u64) {
            let mut m = Machine::new(MachineConfig::with_cores(2));
            let report = m.run(
                (0..2)
                    .map(|_| {
                        Box::new(|cpu: &mut Cpu| {
                            for _ in 0..50 {
                                loop {
                                    let v = cpu.load_u64(Addr(0x100));
                                    if cpu.cas_u64(Addr(0x100), v, v + 1) == v {
                                        break;
                                    }
                                }
                            }
                        }) as WorkerFn<'_>
                    })
                    .collect(),
            );
            (m.peek_u64(Addr(0x100)), report.makespan())
        }
        let (v1, t1) = race();
        let (v2, t2) = race();
        assert_eq!(v1, 100);
        assert_eq!((v1, t1), (v2, t2), "simulation must be deterministic");
    }

    #[test]
    fn logical_time_ordering() {
        // Worker 1 waits 10_000 cycles, so worker 0's store is ordered first.
        let mut m = Machine::new(MachineConfig::with_cores(2));
        m.run(vec![
            Box::new(|cpu: &mut Cpu| {
                cpu.store_u64(Addr(0x200), 5);
            }),
            Box::new(|cpu: &mut Cpu| {
                cpu.tick(10_000);
                assert_eq!(cpu.load_u64(Addr(0x200)), 5);
            }),
        ]);
    }

    /// Shared harness for the scheduler tests: `cores` cores race CAS
    /// increments; returns the machine (for post-run inspection) and the
    /// full run report.
    fn cas_race_run(
        schedule: crate::config::SchedulePolicy,
        gate: GateMode,
        cores: usize,
    ) -> (Machine, RunReport) {
        let mut m = Machine::new(MachineConfig {
            schedule,
            gate,
            ..MachineConfig::with_cores(cores)
        });
        let report = m.run(
            (0..cores)
                .map(|_| {
                    Box::new(|cpu: &mut Cpu| {
                        for _ in 0..50 {
                            loop {
                                let v = cpu.load_u64(Addr(0x100));
                                if cpu.cas_u64(Addr(0x100), v, v + 1) == v {
                                    break;
                                }
                            }
                        }
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        (m, report)
    }

    /// [`cas_race_run`], reduced to the final count and the run report.
    fn cas_race_on(
        schedule: crate::config::SchedulePolicy,
        gate: GateMode,
        cores: usize,
    ) -> (u64, RunReport) {
        let (m, report) = cas_race_run(schedule, gate, cores);
        (m.peek_u64(Addr(0x100)), report)
    }

    /// Shared harness for the scheduler tests: two cores race CAS
    /// increments; returns the final count and the makespan.
    fn cas_race(schedule: crate::config::SchedulePolicy) -> (u64, u64) {
        let (v, report) = cas_race_on(schedule, GateMode::default(), 2);
        (v, report.makespan())
    }

    #[test]
    fn quantum_gate_is_bit_identical_to_per_op() {
        use crate::config::SchedulePolicy;
        for cores in [1, 2, 3, 4, 8] {
            let per_op = cas_race_on(SchedulePolicy::Deterministic, GateMode::PerOp, cores);
            let quantum = cas_race_on(SchedulePolicy::Deterministic, GateMode::Quantum, cores);
            assert_eq!(per_op.0, (cores as u64) * 50);
            assert_eq!(
                per_op, quantum,
                "gate modes must admit the same schedule at {cores} cores"
            );
        }
    }

    #[test]
    fn speculative_certified_or_rolled_back_matches_quantum() {
        use crate::config::SchedulePolicy;
        // The speculative gate's contract, exercised on a maximally
        // contended workload (every core CASes one shared line): a
        // *certified* run must be bit-identical to the conservative
        // schedule; a tainted run is discarded and the workload re-run
        // under Quantum — which is exactly what the driver layer does.
        for cores in [1, 2, 3, 4, 8] {
            let quantum = cas_race_on(SchedulePolicy::Deterministic, GateMode::Quantum, cores);
            let (m, report) =
                cas_race_run(SchedulePolicy::Deterministic, GateMode::Speculative, cores);
            let out = m
                .spec_outcome()
                .expect("speculative gate must report an outcome");
            let spec = if out.certified {
                (m.peek_u64(Addr(0x100)), report)
            } else {
                cas_race_on(SchedulePolicy::Deterministic, GateMode::Quantum, cores)
            };
            assert_eq!(
                spec, quantum,
                "certified speculative run diverged from quantum at {cores} cores \
                 (outcome {out:?})"
            );
        }
    }

    #[test]
    fn speculative_disjoint_lines_certify_and_match_quantum() {
        // Cores touching disjoint lines never interact, so speculation
        // must always certify and the output must be bit-identical to the
        // conservative schedule — the common case the gate exists for.
        fn run(gate: GateMode, cores: usize) -> (Vec<u64>, RunReport, Option<SpecOutcome>) {
            let mut m = Machine::new(MachineConfig {
                gate,
                ..MachineConfig::with_cores(cores)
            });
            let report = m.run(
                (0..cores)
                    .map(|id| {
                        Box::new(move |cpu: &mut Cpu| {
                            let base = 0x10_000 + (id as u64) * 0x1000;
                            for i in 0..200u64 {
                                let a = Addr(base + (i % 8) * 64);
                                let v = cpu.load_u64(a);
                                cpu.store_u64(a, v + i + 1);
                            }
                        }) as WorkerFn<'_>
                    })
                    .collect(),
            );
            let vals = (0..cores)
                .map(|id| m.peek_u64(Addr(0x10_000 + (id as u64) * 0x1000)))
                .collect();
            (vals, report, m.spec_outcome())
        }
        for cores in [2, 4, 8] {
            let q = run(GateMode::Quantum, cores);
            let s = run(GateMode::Speculative, cores);
            let out = s.2.expect("speculative gate must report an outcome");
            assert!(
                out.certified,
                "disjoint-line speculation must certify at {cores} cores ({out:?})"
            );
            assert_eq!((&s.0, &s.1), (&q.0, &q.1), "certified output diverged");
        }
    }

    #[test]
    fn spec_taint_at_forces_rollback_verdict() {
        let mut m = Machine::new(MachineConfig {
            gate: GateMode::Speculative,
            spec_taint_at: Some(0),
            ..MachineConfig::with_cores(2)
        });
        m.run(vec![
            Box::new(|cpu: &mut Cpu| cpu.store_u64(Addr(0x100), 1)),
            Box::new(|cpu: &mut Cpu| cpu.store_u64(Addr(0x200), 2)),
        ]);
        let out = m.spec_outcome().expect("outcome under Speculative gate");
        assert!(!out.certified, "forced taint must deny certification");
        assert!(out.total_ops >= 2);
    }

    #[test]
    fn non_speculative_gates_report_no_outcome() {
        for gate in [GateMode::PerOp, GateMode::Quantum] {
            let (m, _) = cas_race_run(crate::config::SchedulePolicy::Deterministic, gate, 2);
            assert_eq!(m.spec_outcome(), None);
        }
    }

    #[test]
    fn fuzzed_quantum_clamps_to_per_op_schedule() {
        use crate::config::SchedulePolicy;
        // Under Fuzzed the jitter is re-drawn after every op, so the
        // quantum scheduler must clamp quanta to a single operation —
        // i.e. reproduce the per-op fuzzed schedule exactly.
        for seed in [0u64, 0xf00d, 0xdead_beef] {
            let policy = SchedulePolicy::Fuzzed { seed };
            for cores in [2, 4] {
                let per_op = cas_race_on(policy, GateMode::PerOp, cores);
                let quantum = cas_race_on(policy, GateMode::Quantum, cores);
                assert_eq!(
                    per_op, quantum,
                    "fuzzed seed {seed:#x} diverged across gates at {cores} cores"
                );
                // A dynamic schedule clamps speculation off entirely, so
                // the speculative gate must reproduce the per-op fuzzed
                // schedule exactly (and always certify).
                let (m, report) = cas_race_run(policy, GateMode::Speculative, cores);
                let out = m.spec_outcome().unwrap();
                assert!(out.certified && out.spec_ops == 0);
                let spec = (m.peek_u64(Addr(0x100)), report);
                assert_eq!(
                    per_op, spec,
                    "fuzzed seed {seed:#x} diverged under clamped speculation at {cores} cores"
                );
            }
        }
    }

    #[test]
    fn fuzzed_schedule_is_replayable_from_its_seed() {
        use crate::config::SchedulePolicy;
        let a = cas_race(SchedulePolicy::Fuzzed { seed: 0xf00d });
        let b = cas_race(SchedulePolicy::Fuzzed { seed: 0xf00d });
        assert_eq!(a.0, 100, "no increment may be lost under fuzzing");
        assert_eq!(a, b, "same seed must replay the same run exactly");
    }

    #[test]
    fn fuzz_seeds_explore_different_schedules() {
        use crate::config::SchedulePolicy;
        let base = cas_race(SchedulePolicy::Deterministic);
        assert_eq!(base.0, 100);
        // Across several seeds, at least one must diverge in timing from
        // the canonical schedule (that's the entire point of fuzzing);
        // every seed must still preserve the program's answer.
        let mut saw_divergence = false;
        for seed in 0..8u64 {
            let f = cas_race(SchedulePolicy::Fuzzed { seed });
            assert_eq!(f.0, 100, "seed {seed} lost an increment");
            saw_divergence |= f.1 != base.1;
        }
        assert!(saw_divergence, "no fuzz seed perturbed the schedule");
    }

    #[test]
    fn pct_schedule_is_replayable_from_its_seed() {
        use crate::config::SchedulePolicy;
        for depth in [1, 2, 3] {
            let policy = SchedulePolicy::Pct {
                seed: 0xabcd,
                depth,
            };
            let a = cas_race(policy);
            let b = cas_race(policy);
            assert_eq!(a.0, 100, "PCT depth {depth} lost an increment");
            assert_eq!(a, b, "PCT depth {depth} must replay exactly");
        }
    }

    #[test]
    fn pct_quantum_clamps_to_per_op_schedule() {
        use crate::config::SchedulePolicy;
        for seed in [0u64, 7, 0xbeef] {
            let policy = SchedulePolicy::Pct { seed, depth: 3 };
            for cores in [2, 4] {
                let per_op = cas_race_on(policy, GateMode::PerOp, cores);
                let quantum = cas_race_on(policy, GateMode::Quantum, cores);
                assert_eq!(
                    per_op, quantum,
                    "PCT seed {seed:#x} diverged across gates at {cores} cores"
                );
                let (m, report) = cas_race_run(policy, GateMode::Speculative, cores);
                let out = m.spec_outcome().unwrap();
                assert!(out.certified && out.spec_ops == 0);
                let spec = (m.peek_u64(Addr(0x100)), report);
                assert_eq!(
                    per_op, spec,
                    "PCT seed {seed:#x} diverged under clamped speculation at {cores} cores"
                );
            }
        }
    }

    #[test]
    fn pct_seeds_explore_different_schedules() {
        use crate::config::SchedulePolicy;
        let base = cas_race(SchedulePolicy::Deterministic);
        let mut saw_divergence = false;
        for seed in 0..8u64 {
            let p = cas_race(SchedulePolicy::Pct { seed, depth: 3 });
            assert_eq!(p.0, 100, "PCT seed {seed} lost an increment");
            saw_divergence |= p.1 != base.1;
        }
        assert!(saw_divergence, "no PCT seed perturbed the schedule");
    }

    #[test]
    fn preemption_trace_favors_a_core() {
        use crate::config::Preemption;
        // Core 0 would normally run first (clock tie broken by id); the
        // directive favors core 1 from op 0, so its store is ordered
        // before core 0's load.
        let mut m = Machine::new(MachineConfig {
            preemptions: vec![Preemption { at_op: 0, core: 1 }],
            ..MachineConfig::with_cores(2)
        });
        m.run(vec![
            Box::new(|cpu: &mut Cpu| {
                assert_eq!(
                    cpu.load_u64(Addr(0x500)),
                    7,
                    "favored core 1 must commit its store first"
                );
            }),
            Box::new(|cpu: &mut Cpu| {
                cpu.store_u64(Addr(0x500), 7);
            }),
        ]);
    }

    #[test]
    fn preemption_trace_switches_at_op_and_is_logged() {
        use crate::config::Preemption;
        let mut m = Machine::new(MachineConfig {
            preemptions: vec![
                Preemption { at_op: 0, core: 1 },
                Preemption { at_op: 2, core: 0 },
            ],
            record_schedule: true,
            ..MachineConfig::with_cores(2)
        });
        m.run(vec![
            Box::new(|cpu: &mut Cpu| {
                for i in 0..4 {
                    cpu.store_u64(Addr(0x600), i);
                }
            }),
            Box::new(|cpu: &mut Cpu| {
                for i in 0..4 {
                    cpu.store_u64(Addr(0x640), i);
                }
            }),
        ]);
        let log = m.take_schedule_log();
        let cores: Vec<usize> = log.iter().map(|e| e.core).collect();
        // Core 1 runs ops 0..2, then core 0 is favored for its whole
        // worker, then core 1 drains.
        assert_eq!(cores, vec![1, 1, 0, 0, 0, 0, 1, 1]);
        assert!(log.iter().enumerate().all(|(i, e)| e.op == i as u64));
        assert!(
            log.iter().all(|e| e.line.is_some_and(|(_, w)| w)),
            "every op here is a store and must be logged as a write"
        );
    }

    #[test]
    fn schedule_log_is_empty_without_recording() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| cpu.store_u64(Addr(0x40), 1));
        assert!(m.take_schedule_log().is_empty());
    }

    #[test]
    fn fault_plan_evicts_and_back_invalidates() {
        use crate::config::{FaultEvent, FaultKind};
        // Op 1 = reset counter, op 2 = marking load; the fault fires once
        // op 2 completes and evicts the only resident L1 line — the marked
        // one — bumping the counter exactly like an organic eviction.
        let mut m = Machine::new(MachineConfig {
            faults: vec![FaultEvent {
                at_op: 2,
                core: 0,
                kind: FaultKind::EvictL1 { nth: 0 },
            }],
            ..MachineConfig::default()
        });
        let (counter, _) = m.run_one(|cpu| {
            cpu.reset_mark_counter();
            cpu.load_set_mark_u64(Addr(0x700));
            cpu.read_mark_counter()
        });
        assert_eq!(counter, 1, "forced eviction must bump the mark counter");

        let mut m = Machine::new(MachineConfig {
            faults: vec![FaultEvent {
                at_op: 2,
                core: 0,
                kind: FaultKind::BackInvalidate { nth: 0 },
            }],
            ..MachineConfig::default()
        });
        let (counter, _) = m.run_one(|cpu| {
            cpu.reset_mark_counter();
            cpu.load_set_mark_u64(Addr(0x700));
            cpu.read_mark_counter()
        });
        assert_eq!(
            counter, 1,
            "forced back-invalidation must reach the marked L1 copy"
        );
    }

    #[test]
    fn fault_plan_injects_spurious_abort() {
        use crate::config::{FaultEvent, FaultKind};
        use crate::hierarchy::{ViolationCause, WatchKind};
        let mut m = Machine::new(MachineConfig {
            faults: vec![FaultEvent {
                at_op: 1,
                core: 0,
                kind: FaultKind::SpuriousAbort,
            }],
            ..MachineConfig::default()
        });
        let (violation, _) = m.run_one(|cpu| {
            cpu.load_watch_u64(Addr(0x800), WatchKind::Read);
            cpu.violation()
        });
        assert_eq!(
            violation.map(|v| v.cause),
            Some(ViolationCause::Spurious),
            "the watched transaction must observe the injected abort"
        );
    }

    #[test]
    fn spurious_abort_without_watches_is_a_noop() {
        use crate::config::{FaultEvent, FaultKind};
        let mut m = Machine::new(MachineConfig {
            faults: vec![FaultEvent {
                at_op: 1,
                core: 0,
                kind: FaultKind::SpuriousAbort,
            }],
            ..MachineConfig::default()
        });
        let (v, _) = m.run_one(|cpu| {
            cpu.load_u64(Addr(0x800));
            cpu.tick(5);
            cpu.load_u64(Addr(0x840))
        });
        assert_eq!(v, 0, "plain code is unaffected by a spurious abort");
    }

    #[test]
    fn plans_installed_between_runs_target_the_next_run_only() {
        use crate::config::Preemption;
        // First run unsteered, then install a trace: the second run must
        // see the favored core, and the trace must restart per run.
        let mut m = Machine::new(MachineConfig {
            record_schedule: true,
            ..MachineConfig::with_cores(2)
        });
        let workers = || -> Vec<WorkerFn<'static>> {
            (0..2)
                .map(|_| {
                    Box::new(|cpu: &mut Cpu| {
                        for i in 0..3 {
                            cpu.store_u64(Addr(0x900), i);
                        }
                    }) as WorkerFn<'static>
                })
                .collect()
        };
        m.run(workers());
        let first: Vec<usize> = m.take_schedule_log().iter().map(|e| e.core).collect();
        assert_eq!(first[0], 0, "unsteered run starts with core 0");
        m.set_preemptions(vec![Preemption { at_op: 0, core: 1 }]);
        for _ in 0..2 {
            m.run(workers());
            let cores: Vec<usize> = m.take_schedule_log().iter().map(|e| e.core).collect();
            assert_eq!(
                &cores[..3],
                &[1, 1, 1],
                "installed trace must favor core 1 in every subsequent run"
            );
        }
    }

    #[test]
    fn trace_addr_comes_from_config() {
        let mut m = Machine::new(MachineConfig {
            trace_addr: Some(0x40),
            ..MachineConfig::default()
        });
        // The traced store goes to stderr; here we only assert the
        // configured machine still runs correctly.
        let (v, _) = m.run_one(|cpu| {
            cpu.store_u64(Addr(0x40), 7);
            cpu.load_u64(Addr(0x40))
        });
        assert_eq!(v, 7);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run(vec![
                Box::new(|_cpu: &mut Cpu| panic!("boom")),
                Box::new(|cpu: &mut Cpu| {
                    for _ in 0..10 {
                        cpu.load_u64(Addr(0x300));
                    }
                }),
            ]);
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn too_many_workers_rejected() {
        let mut m = Machine::new(MachineConfig::with_cores(1));
        let _ = m.run(vec![
            Box::new(|_: &mut Cpu| {}) as WorkerFn<'_>,
            Box::new(|_: &mut Cpu| {}) as WorkerFn<'_>,
        ]);
    }

    #[test]
    fn stats_reset_between_runs() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_one(|cpu| {
            cpu.load_u64(Addr(0x40));
        });
        let (_, r2) = m.run_one(|cpu| {
            cpu.load_u64(Addr(0x40));
            cpu.load_u64(Addr(0x80));
        });
        assert_eq!(r2.cores[0].loads, 2);
    }

    #[test]
    fn workers_can_borrow_environment() {
        let data = vec![1u64, 2, 3];
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let sum = std::sync::atomic::AtomicU64::new(0);
        m.run(
            (0..2)
                .map(|_| {
                    let data = &data;
                    let sum = &sum;
                    Box::new(move |cpu: &mut Cpu| {
                        cpu.tick(1);
                        sum.fetch_add(
                            data.iter().sum::<u64>(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 12);
    }
}
