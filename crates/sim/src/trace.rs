//! Structured tracing and metrics: typed events with cycle timestamps, a
//! per-core ring-buffer recorder, a Chrome/Perfetto `trace_events` JSON
//! exporter, and trace-vs-statistics reconciliation checks.
//!
//! # Zero cost when off
//!
//! The recorder lives in the memory system as an `Option<TraceRecorder>`;
//! every emission site is a single `is_some()` branch when tracing is
//! disabled, no allocation happens, and the simulated run is bit-identical
//! to a never-traced run (tracing charges no cycles and is never a gated
//! operation, so it cannot shift the global op counter or the schedule).
//!
//! # Determinism
//!
//! Events are staged while the executing core holds the machine's state
//! lock and are routed to the *affected* core's ring at the end of each
//! gated operation, in gate order. The only host-racy moment — a worker's
//! `Cpu` dropping with locally buffered events — lands in a separate
//! per-core tail buffer, so the harvested [`TraceLog`] is a pure function
//! of the configuration and seed regardless of host thread timing.

use crate::addr::LineId;

/// Configuration for the trace recorder.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum retained events per core. When a ring overflows, the oldest
    /// events are overwritten and [`TraceLog::dropped`] counts the loss
    /// (reconciliation checks are skipped on lossy traces).
    pub per_core_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            per_core_capacity: 65_536,
        }
    }
}

/// Why a line left an L1 (the mark-discard / watch-violation paths).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LossCause {
    /// Capacity/conflict eviction from the owning L1.
    Eviction,
    /// Snooped away by a remote core's store.
    Remote,
    /// Back-invalidated by an inclusive-L2 eviction.
    BackInval,
}

impl LossCause {
    /// Short label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            LossCause::Eviction => "eviction",
            LossCause::Remote => "remote-write",
            LossCause::BackInval => "back-invalidation",
        }
    }
}

/// Transactional work category, mirrored from the STM layer's
/// `Category` (the simulator cannot depend on the STM crate; the STM maps
/// its categories onto this enum when emitting [`TraceEvent::Phase`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TxnPhase {
    /// Thread-local-state access at barrier entry.
    Tls,
    /// Read barriers.
    ReadBarrier,
    /// Write barriers (including undo logging).
    WriteBarrier,
    /// Read-set validation.
    Validate,
    /// Commit processing.
    Commit,
    /// Contention handling (backoff waits).
    Contention,
    /// Application work inside the transaction.
    App,
}

/// All phases, in the order used by [`PhaseSums`].
pub const TXN_PHASES: [TxnPhase; 7] = [
    TxnPhase::Tls,
    TxnPhase::ReadBarrier,
    TxnPhase::WriteBarrier,
    TxnPhase::Validate,
    TxnPhase::Commit,
    TxnPhase::Contention,
    TxnPhase::App,
];

impl TxnPhase {
    /// Stable label used by the Chrome exporter and summarizer.
    pub fn label(self) -> &'static str {
        match self {
            TxnPhase::Tls => "tls",
            TxnPhase::ReadBarrier => "read_barrier",
            TxnPhase::WriteBarrier => "write_barrier",
            TxnPhase::Validate => "validate",
            TxnPhase::Commit => "commit",
            TxnPhase::Contention => "contention",
            TxnPhase::App => "app",
        }
    }
}

/// One typed trace event. The `core` an event belongs to is the *affected*
/// core (e.g. a back-invalidation event lands on the core that lost the
/// line, not the core whose access triggered it).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The gate admitted this core for global op `op` (one per gated op;
    /// identical between per-op and quantum gating, which admit the same
    /// logical schedule).
    GateAdmit {
        /// Global gated-op index.
        op: u64,
    },
    /// A demand data access (load/store/RMW or mark-variant load).
    CacheAccess {
        /// Line touched.
        line: LineId,
        /// Store or RMW.
        write: bool,
        /// Missed the L1.
        miss: bool,
    },
    /// A line left this core's L1.
    LineLoss {
        /// Line lost.
        line: LineId,
        /// Why.
        cause: LossCause,
    },
    /// The shared L2 evicted a line (back-invalidations follow as
    /// [`TraceEvent::LineLoss`] on each victim core when inclusive).
    L2Evict {
        /// Line evicted.
        line: LineId,
    },
    /// Mark bits were set on a line (`loadsetmark` family).
    MarkSet {
        /// Line marked.
        line: LineId,
    },
    /// A *marked* line was discarded, losing its mark bits.
    MarkDiscard {
        /// Line whose marks were lost.
        line: LineId,
        /// Why.
        cause: LossCause,
    },
    /// The saturating mark counter was incremented.
    MarkCounterBump {
        /// Filter index whose counter bumped.
        filter: u8,
    },
    /// A hardware transaction attempt began.
    HtmBegin,
    /// A hardware transaction committed.
    HtmCommit,
    /// A hardware transaction aborted.
    HtmAbort {
        /// Stable cause label ("conflict", "capacity", …).
        cause: &'static str,
    },
    /// A software transaction attempt began.
    TxnBegin {
        /// Retry attempt number (0 = first try).
        attempt: u32,
    },
    /// A software transaction committed.
    TxnCommit,
    /// A software transaction aborted.
    TxnAbort {
        /// Stable cause label ("conflict", "mark-dirty", …).
        cause: &'static str,
    },
    /// `cycles` of transactional work attributed to `phase` (emitted by the
    /// STM layer at the same point it updates its `TimeBreakdown`, so the
    /// per-phase sums of a lossless trace equal the breakdown exactly).
    Phase {
        /// Work category.
        phase: TxnPhase,
        /// Cycles attributed.
        cycles: u64,
    },
}

/// An event stamped with the logical cycle at which it was recorded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Logical-clock timestamp (the affected/executing core's clock at the
    /// end of the gated op that produced the event).
    pub cycle: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// Anything that can receive trace events. The simulator's built-in
/// implementation is [`TraceRecorder`]; tests can implement this to collect
/// events differently.
pub trait TraceSink {
    /// Records `ev` against `core` at logical `cycle`.
    fn record(&mut self, core: usize, cycle: u64, ev: TraceEvent);
}

/// Fixed-capacity per-core event ring.
#[derive(Clone, Debug)]
struct Ring {
    buf: Vec<TimedEvent>,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap),
            start: 0,
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TimedEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Contents oldest-first, leaving the ring empty (capacity retained).
    fn drain_ordered(&mut self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        self.buf.clear();
        self.start = 0;
        out
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

/// The built-in ring-buffer recorder. Owned by the memory system (under
/// the machine's state lock); harvested through `Machine::take_trace`.
#[derive(Debug)]
pub struct TraceRecorder {
    rings: Vec<Ring>,
    /// Worker-exit spill: events a `Cpu` still held locally when it was
    /// dropped. Kept apart from the rings because drops happen at
    /// host-racy times relative to other cores' flushes.
    tails: Vec<Vec<TimedEvent>>,
    /// Events staged during the current gated op, `(affected_core, event)`,
    /// stamped and routed at op end.
    pending: Vec<(usize, TraceEvent)>,
}

impl TraceRecorder {
    /// A recorder for `cores` cores with per-core capacity from `config`.
    pub fn new(cores: usize, config: &TraceConfig) -> Self {
        TraceRecorder {
            rings: (0..cores)
                .map(|_| Ring::new(config.per_core_capacity))
                .collect(),
            tails: vec![Vec::new(); cores],
            pending: Vec::with_capacity(64),
        }
    }

    /// Stages an event for the affected core; routed at the next flush.
    #[inline]
    pub(crate) fn stage(&mut self, core: usize, ev: TraceEvent) {
        self.pending.push((core, ev));
    }

    /// Stamps every staged event with `cycle` and routes it to the
    /// affected core's ring.
    pub(crate) fn flush(&mut self, cycle: u64) {
        for (core, ev) in self.pending.drain(..) {
            self.rings[core].push(TimedEvent { cycle, ev });
        }
    }

    /// Appends pre-stamped events (a `Cpu`'s local buffer) to `core`'s
    /// ring, clearing the buffer.
    pub(crate) fn push_stamped(&mut self, core: usize, events: &mut Vec<TimedEvent>) {
        for ev in events.drain(..) {
            self.rings[core].push(ev);
        }
    }

    /// Spills a dropping `Cpu`'s leftover events into `core`'s tail.
    pub(crate) fn push_tail(&mut self, core: usize, events: &mut Vec<TimedEvent>) {
        self.tails[core].append(events);
    }

    /// Clears all retained events (run start).
    pub(crate) fn reset(&mut self) {
        for r in &mut self.rings {
            r.reset();
        }
        for t in &mut self.tails {
            t.clear();
        }
        self.pending.clear();
    }

    /// Harvests everything recorded so far, leaving the recorder armed and
    /// empty.
    pub(crate) fn take(&mut self) -> TraceLog {
        self.flush(u64::MAX); // stamp any stragglers (normally empty)
        let mut per_core = Vec::with_capacity(self.rings.len());
        let mut dropped = Vec::with_capacity(self.rings.len());
        for (ring, tail) in self.rings.iter_mut().zip(self.tails.iter_mut()) {
            dropped.push(ring.dropped);
            let mut events = ring.drain_ordered();
            events.append(tail);
            ring.dropped = 0;
            per_core.push(events);
        }
        TraceLog { per_core, dropped }
    }
}

impl TraceSink for TraceRecorder {
    #[inline]
    fn record(&mut self, core: usize, cycle: u64, ev: TraceEvent) {
        self.rings[core].push(TimedEvent { cycle, ev });
    }
}

/// Per-phase cycle totals extracted from a trace. Field-for-field the
/// shape of the STM layer's `TimeBreakdown`, so the two can be compared
/// directly.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseSums {
    /// TLS-access cycles.
    pub tls: u64,
    /// Read-barrier cycles.
    pub read_barrier: u64,
    /// Write-barrier cycles.
    pub write_barrier: u64,
    /// Validation cycles.
    pub validate: u64,
    /// Commit cycles.
    pub commit: u64,
    /// Contention cycles.
    pub contention: u64,
    /// Application cycles.
    pub app: u64,
}

impl PhaseSums {
    /// Adds `cycles` to the slot for `phase`.
    pub fn add(&mut self, phase: TxnPhase, cycles: u64) {
        match phase {
            TxnPhase::Tls => self.tls += cycles,
            TxnPhase::ReadBarrier => self.read_barrier += cycles,
            TxnPhase::WriteBarrier => self.write_barrier += cycles,
            TxnPhase::Validate => self.validate += cycles,
            TxnPhase::Commit => self.commit += cycles,
            TxnPhase::Contention => self.contention += cycles,
            TxnPhase::App => self.app += cycles,
        }
    }

    /// The slot for `phase`.
    pub fn get(&self, phase: TxnPhase) -> u64 {
        match phase {
            TxnPhase::Tls => self.tls,
            TxnPhase::ReadBarrier => self.read_barrier,
            TxnPhase::WriteBarrier => self.write_barrier,
            TxnPhase::Validate => self.validate,
            TxnPhase::Commit => self.commit,
            TxnPhase::Contention => self.contention,
            TxnPhase::App => self.app,
        }
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        TXN_PHASES.iter().map(|&p| self.get(p)).sum()
    }
}

/// A harvested trace: per-core event streams plus per-core drop counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// Events per core, oldest first.
    pub per_core: Vec<Vec<TimedEvent>>,
    /// Events lost to ring overflow, per core (0 everywhere for a lossless
    /// trace).
    pub dropped: Vec<u64>,
}

impl TraceLog {
    /// Total retained events across all cores.
    pub fn total_events(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Whether any core's ring overflowed.
    pub fn dropped_any(&self) -> bool {
        self.dropped.iter().any(|&d| d > 0)
    }

    /// Iterates `(core, event)` over every retained event.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &TimedEvent)> {
        self.per_core
            .iter()
            .enumerate()
            .flat_map(|(core, evs)| evs.iter().map(move |e| (core, e)))
    }

    /// Sums [`TraceEvent::Phase`] cycles per category across all cores.
    pub fn phase_sums(&self) -> PhaseSums {
        let mut sums = PhaseSums::default();
        for (_, e) in self.iter_all() {
            if let TraceEvent::Phase { phase, cycles } = e.ev {
                sums.add(phase, cycles);
            }
        }
        sums
    }

    /// Count of [`TraceEvent::MarkDiscard`] events per core.
    pub fn mark_discards(&self) -> Vec<u64> {
        self.per_core
            .iter()
            .map(|evs| {
                evs.iter()
                    .filter(|e| matches!(e.ev, TraceEvent::MarkDiscard { .. }))
                    .count() as u64
            })
            .collect()
    }

    /// All [`TraceEvent::GateAdmit`] op indices, across cores, sorted.
    pub fn gate_ops(&self) -> Vec<u64> {
        let mut ops: Vec<u64> = self
            .iter_all()
            .filter_map(|(_, e)| match e.ev {
                TraceEvent::GateAdmit { op } => Some(op),
                _ => None,
            })
            .collect();
        ops.sort_unstable();
        ops
    }
}

/// Reconciles the trace against the per-core `marked_lines_lost` counters:
/// every marked-line loss the hardware counted must appear in the trace as
/// a [`TraceEvent::MarkDiscard`]. Catches event-emission bugs (see the
/// `seeded-trace-bug` feature) the aggregate statistics alone cannot.
///
/// # Errors
///
/// Returns a description of the first core whose counts disagree, or of a
/// lossy ring (overflowed traces cannot be reconciled).
pub fn reconcile_mark_discards(log: &TraceLog, marked_lines_lost: &[u64]) -> Result<(), String> {
    if log.dropped_any() {
        return Err(format!(
            "trace ring overflowed (dropped per core: {:?}); raise per_core_capacity",
            log.dropped
        ));
    }
    let discards = log.mark_discards();
    for (core, &lost) in marked_lines_lost.iter().enumerate() {
        let seen = discards.get(core).copied().unwrap_or(0);
        if seen != lost {
            return Err(format!(
                "core {core}: {seen} MarkDiscard trace events but marked_lines_lost = {lost}"
            ));
        }
    }
    Ok(())
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn event_name(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::GateAdmit { .. } => "gate_admit",
        TraceEvent::CacheAccess { miss: false, .. } => "cache_hit",
        TraceEvent::CacheAccess { miss: true, .. } => "cache_miss",
        TraceEvent::LineLoss { .. } => "line_loss",
        TraceEvent::L2Evict { .. } => "l2_evict",
        TraceEvent::MarkSet { .. } => "mark_set",
        TraceEvent::MarkDiscard { .. } => "mark_discard",
        TraceEvent::MarkCounterBump { .. } => "mark_counter_bump",
        TraceEvent::HtmBegin => "htm_begin",
        TraceEvent::HtmCommit => "htm_commit",
        TraceEvent::HtmAbort { .. } => "htm_abort",
        TraceEvent::TxnBegin { .. } => "txn_begin",
        TraceEvent::TxnCommit => "txn_commit",
        TraceEvent::TxnAbort { .. } => "txn_abort",
        TraceEvent::Phase { .. } => "phase",
    }
}

fn event_args(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::GateAdmit { op } => format!("{{\"op\":{op}}}"),
        TraceEvent::CacheAccess { line, write, .. } => {
            format!("{{\"line\":{},\"write\":{write}}}", line.0)
        }
        TraceEvent::LineLoss { line, cause } | TraceEvent::MarkDiscard { line, cause } => {
            format!("{{\"line\":{},\"cause\":\"{}\"}}", line.0, cause.label())
        }
        TraceEvent::L2Evict { line } | TraceEvent::MarkSet { line } => {
            format!("{{\"line\":{}}}", line.0)
        }
        TraceEvent::MarkCounterBump { filter } => format!("{{\"filter\":{filter}}}"),
        TraceEvent::HtmAbort { cause } | TraceEvent::TxnAbort { cause } => {
            let mut s = String::from("{\"cause\":\"");
            push_json_escaped(&mut s, cause);
            s.push_str("\"}");
            s
        }
        TraceEvent::TxnBegin { attempt } => format!("{{\"attempt\":{attempt}}}"),
        TraceEvent::Phase { cycles, .. } => format!("{{\"cycles\":{cycles}}}"),
        _ => String::from("{}"),
    }
}

/// Renders a trace as Chrome/Perfetto `trace_events` JSON (the
/// JSON-array format `chrome://tracing` and <https://ui.perfetto.dev>
/// open directly). Layout: process 0 holds one instant-event track per
/// core; process 1 holds the transaction-phase duration events, one track
/// per core with the phase as the event name. One event per line, so the
/// tiny schema checker ([`validate_chrome_trace`]) and text tools can
/// process it without a JSON parser.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut out = String::with_capacity(128 * log.total_events() + 64);
    out.push_str("[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for core in 0..log.per_core.len() {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{core},\"ts\":0,\"args\":{{\"name\":\"core {core} events\"}}}}"
            ),
            &mut out,
        );
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{core},\"ts\":0,\"args\":{{\"name\":\"core {core} txn phases\"}}}}"
            ),
            &mut out,
        );
    }
    for (core, e) in log.iter_all() {
        let line = match e.ev {
            TraceEvent::Phase { phase, cycles } => {
                let ts = e.cycle.saturating_sub(cycles);
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{cycles},\"pid\":1,\"tid\":{core},\"args\":{}}}",
                    phase.label(),
                    event_args(&e.ev)
                )
            }
            _ => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{core},\"s\":\"t\",\"args\":{}}}",
                event_name(&e.ev),
                e.cycle,
                event_args(&e.ev)
            ),
        };
        emit(line, &mut out);
    }
    out.push_str("\n]\n");
    out
}

/// Tiny Chrome `trace_events` schema checker (no JSON parser): the
/// document must be a JSON array with one complete event object per line,
/// each carrying the required `name`/`ph`/`ts`/`pid`/`tid` keys, `X`
/// events additionally a `dur`. Returns the number of events.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let body = json.trim();
    let body = body
        .strip_prefix('[')
        .ok_or("trace must be a JSON array (missing '[')")?;
    let body = body
        .strip_suffix(']')
        .ok_or("trace must be a JSON array (missing ']')")?;
    let mut events = 0usize;
    for (i, raw) in body.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {}: event is not an object: {line}", i + 1));
        }
        if line.matches('{').count() != line.matches('}').count() {
            return Err(format!("line {}: unbalanced braces", i + 1));
        }
        for key in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            if !line.contains(key) {
                return Err(format!("line {}: missing required key {key}", i + 1));
            }
        }
        if line.contains("\"ph\":\"X\"") && !line.contains("\"dur\":") {
            return Err(format!("line {}: complete event without dur", i + 1));
        }
        events += 1;
    }
    if events == 0 {
        return Err("trace contains no events".into());
    }
    Ok(events)
}

/// Renders a human-readable per-core timeline of the interesting events
/// (transaction lifecycle, phases, HTM outcomes, mark discards), capped at
/// `max_lines_per_core` lines per core. This is what `hastm-check` prints
/// when the explorer shrinks a failure to a minimal trace.
pub fn summarize(log: &TraceLog, max_lines_per_core: usize) -> String {
    let mut out = String::new();
    for (core, events) in log.per_core.iter().enumerate() {
        let mut lines: Vec<String> = Vec::new();
        for e in events {
            let text = match e.ev {
                TraceEvent::TxnBegin { attempt } => format!("txn begin (attempt {attempt})"),
                TraceEvent::TxnCommit => "txn commit".into(),
                TraceEvent::TxnAbort { cause } => format!("txn abort ({cause})"),
                TraceEvent::HtmBegin => "htm begin".into(),
                TraceEvent::HtmCommit => "htm commit".into(),
                TraceEvent::HtmAbort { cause } => format!("htm abort ({cause})"),
                TraceEvent::MarkDiscard { line, cause } => {
                    format!("marked line {} lost ({})", line.0, cause.label())
                }
                TraceEvent::Phase { phase, cycles } => {
                    format!("{}: {cycles} cycles", phase.label())
                }
                _ => continue,
            };
            lines.push(format!("    @{:<8} {text}", e.cycle));
        }
        if lines.is_empty() {
            continue;
        }
        out.push_str(&format!("  core {core}:\n"));
        let shown = lines.len().min(max_lines_per_core);
        for l in &lines[..shown] {
            out.push_str(l);
            out.push('\n');
        }
        if lines.len() > shown {
            out.push_str(&format!("    … (+{} more events)\n", lines.len() - shown));
        }
    }
    if out.is_empty() {
        out.push_str("  (no transactional events recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, ev: TraceEvent) -> TimedEvent {
        TimedEvent { cycle, ev }
    }

    #[test]
    fn ring_retains_newest_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5u64 {
            r.push(ev(i, TraceEvent::GateAdmit { op: i }));
        }
        assert_eq!(r.dropped, 2);
        let out = r.drain_ordered();
        let cycles: Vec<u64> = out.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest-first after wrap");
    }

    #[test]
    fn recorder_routes_pending_to_affected_core() {
        let mut rec = TraceRecorder::new(2, &TraceConfig::default());
        rec.stage(1, TraceEvent::MarkCounterBump { filter: 0 });
        rec.stage(0, TraceEvent::L2Evict { line: LineId(7) });
        rec.flush(42);
        let log = rec.take();
        assert_eq!(log.per_core[0].len(), 1);
        assert_eq!(log.per_core[1].len(), 1);
        assert_eq!(log.per_core[1][0].cycle, 42);
        assert!(!log.dropped_any());
    }

    #[test]
    fn phase_sums_accumulate_per_category() {
        let log = TraceLog {
            per_core: vec![vec![
                ev(
                    10,
                    TraceEvent::Phase {
                        phase: TxnPhase::ReadBarrier,
                        cycles: 4,
                    },
                ),
                ev(
                    20,
                    TraceEvent::Phase {
                        phase: TxnPhase::ReadBarrier,
                        cycles: 6,
                    },
                ),
                ev(
                    30,
                    TraceEvent::Phase {
                        phase: TxnPhase::App,
                        cycles: 5,
                    },
                ),
            ]],
            dropped: vec![0],
        };
        let sums = log.phase_sums();
        assert_eq!(sums.read_barrier, 10);
        assert_eq!(sums.app, 5);
        assert_eq!(sums.total(), 15);
    }

    #[test]
    fn reconcile_catches_missing_discard() {
        let log = TraceLog {
            per_core: vec![vec![ev(
                5,
                TraceEvent::MarkDiscard {
                    line: LineId(1),
                    cause: LossCause::Remote,
                },
            )]],
            dropped: vec![0],
        };
        assert!(reconcile_mark_discards(&log, &[1]).is_ok());
        assert!(reconcile_mark_discards(&log, &[2]).is_err());
    }

    #[test]
    fn chrome_export_is_valid_and_counts_events() {
        let log = TraceLog {
            per_core: vec![vec![
                ev(3, TraceEvent::GateAdmit { op: 0 }),
                ev(
                    9,
                    TraceEvent::Phase {
                        phase: TxnPhase::Commit,
                        cycles: 6,
                    },
                ),
                ev(9, TraceEvent::TxnCommit),
            ]],
            dropped: vec![0],
        };
        let json = chrome_trace_json(&log);
        let n = validate_chrome_trace(&json).expect("valid trace");
        // 3 events + 2 thread_name metadata records.
        assert_eq!(n, 5);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":6"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[\n]\n").is_err());
        assert!(validate_chrome_trace("[\n{\"name\":\"x\"}\n]").is_err());
    }

    #[test]
    fn summary_reports_lifecycle() {
        let log = TraceLog {
            per_core: vec![
                vec![
                    ev(1, TraceEvent::TxnBegin { attempt: 0 }),
                    ev(40, TraceEvent::TxnCommit),
                ],
                vec![],
            ],
            dropped: vec![0, 0],
        };
        let s = summarize(&log, 10);
        assert!(s.contains("core 0"));
        assert!(s.contains("txn begin"));
        assert!(!s.contains("core 1"), "empty cores are omitted");
    }
}
