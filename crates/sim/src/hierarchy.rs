//! Multi-core cache hierarchy: per-core L1s kept coherent with MESI, a
//! shared (optionally inclusive) L2, the HASTM mark bits / mark counter, and
//! line-watch sets used by the HTM baseline.
//!
//! Mark-bit semantics implemented here (paper §3):
//!
//! * mark bits live in the L1 tag, one per 16-byte sub-block;
//! * a line brought into the L1 starts with all mark bits clear;
//! * when a *marked* line leaves the L1 — capacity/conflict eviction, snoop
//!   invalidation caused by another core's store, or back-invalidation from
//!   an inclusive L2 eviction — the owning thread's saturating **mark
//!   counter** is incremented;
//! * `resetmarkall` clears every mark bit and increments the counter;
//! * at [`IsaLevel::Default`] no mark state exists and every mark-setting or
//!   mark-clearing instruction conservatively increments the counter, making
//!   software fall back to its slow paths while remaining correct.
//!
//! # Visibility contract with the quantum scheduler
//!
//! Everything in this module — cache state, watch sets, mark bits and
//! counters, coherence side effects on *other* cores (invalidations,
//!   downgrades, back-invalidations, watch violations) — is mutated only
//! from inside a gated operation, i.e. while the executing core holds the
//! machine's state lock. Under [`crate::GateMode::Quantum`] that lock is
//! held for a whole quantum, so a remote core observes the effects exactly
//! when it is next admitted (its quantum boundary) — the same point in
//! *logical* time at which the per-op gate would have admitted it. Nothing
//! here is read outside the lock, so coherence events that change which
//! core the gate favors next are always visible to the handoff computation.

use crate::addr::{subblock_mask, Addr, LineId};
use crate::cache::{Cache, FilterId, Mesi, NUM_FILTERS};
use crate::config::{IsaLevel, MachineConfig};
use crate::stats::{CoreStats, MachineStats};
use crate::trace::{LossCause, TimedEvent, TraceConfig, TraceEvent, TraceLog, TraceRecorder};

/// Whether an access reads or writes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (or the load half of `loadtestmark` etc.).
    Load,
    /// A plain store (requires exclusive ownership; latency capped by the
    /// store buffer, [`crate::CostModel::store_latency_cap`]).
    Store,
    /// An atomic read-modify-write: same coherence behavior as a store but
    /// fully serializing (uncapped latency).
    Rmw,
}

/// Mark manipulation performed together with a load.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MarkOp {
    /// `loadsetmark`: set the covered mark bits.
    Set,
    /// `loadresetmark`: clear the covered mark bits.
    Reset,
    /// `loadtestmark`: report the logical AND of the covered mark bits.
    Test,
}

/// How a line-watch (HTM read/write set membership) was registered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WatchKind {
    /// Transactionally read: violated by a remote store or by losing the
    /// line to eviction/back-invalidation.
    Read,
    /// Transactionally (speculatively) written: additionally violated by a
    /// remote load, which would otherwise observe unbuffered state.
    Write,
}

/// Why a watch was violated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ViolationCause {
    /// Another core stored to the watched line (true data conflict).
    RemoteWrite,
    /// Another core loaded a line in the speculative write set.
    RemoteRead,
    /// The watched line left this core's L1 (capacity/conflict eviction or
    /// inclusive-L2 back-invalidation) — a *spurious* abort cause for HTM.
    Eviction,
    /// An injected non-coherence abort ([`MemSystem::inject_spurious_abort`])
    /// modeling interrupts, TLB shootdowns, and other transient events real
    /// HTMs abort on. Distinct from [`ViolationCause::Eviction`]: no line
    /// actually left the cache, so capacity-driven fallback heuristics must
    /// not treat it as capacity pressure.
    Spurious,
}

/// A recorded watch violation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WatchViolation {
    /// The line whose watch fired.
    pub line: LineId,
    /// Why.
    pub cause: ViolationCause,
}

/// One slot of a [`WatchSet`]'s open-addressed table. A slot is live only
/// when its `gen` equals the set's current generation.
#[derive(Copy, Clone, Debug)]
struct WatchSlot {
    gen: u64,
    line: LineId,
    kind: WatchKind,
}

const WATCH_INITIAL_SLOTS: usize = 64;
const EMPTY_WATCH_SLOT: WatchSlot = WatchSlot {
    gen: 0,
    line: LineId(0),
    kind: WatchKind::Read,
};

/// HTM line-watch set: an open-addressed, generation-versioned hash table.
///
/// Watches are registered on every transactional access, probed on every
/// coherence event, and dropped wholesale at commit/abort — the hottest
/// bookkeeping in the simulator after the caches themselves. A flat
/// power-of-two slot array with multiply hashing and linear probing keeps
/// the probe to a few cache lines; slot validity is "its generation matches
/// the set's", so `clear` is a single counter bump and a warm set never
/// touches the heap. Entries are never individually deleted within a
/// generation, which preserves the linear-probe invariant.
#[derive(Debug)]
struct WatchSet {
    slots: Box<[WatchSlot]>,
    gen: u64,
    live: usize,
    violation: Option<WatchViolation>,
}

impl Default for WatchSet {
    fn default() -> Self {
        WatchSet {
            slots: vec![EMPTY_WATCH_SLOT; WATCH_INITIAL_SLOTS].into_boxed_slice(),
            gen: 1,
            live: 0,
            violation: None,
        }
    }
}

impl WatchSet {
    #[inline]
    fn slot_of(&self, line: LineId) -> usize {
        // Fibonacci multiply hash, taken from the high bits.
        (line.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (self.slots.len() - 1)
    }

    #[inline]
    fn get(&self, line: LineId) -> Option<WatchKind> {
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(line);
        loop {
            let s = &self.slots[i];
            if s.gen != self.gen {
                return None;
            }
            if s.line == line {
                return Some(s.kind);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, line: LineId, kind: WatchKind) {
        if (self.live + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.slot_of(line);
        loop {
            let s = &mut self.slots[i];
            if s.gen != self.gen {
                *s = WatchSlot {
                    gen: self.gen,
                    line,
                    kind,
                };
                self.live += 1;
                return;
            }
            if s.line == line {
                // A write watch subsumes a read watch, never the reverse.
                if kind == WatchKind::Write {
                    s.kind = WatchKind::Write;
                }
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the slot array and re-seats the live entries. The array is
    /// kept across `clear`, so a steady-state transaction mix stops growing
    /// (and allocating) after warmup.
    fn grow(&mut self) {
        let doubled = vec![EMPTY_WATCH_SLOT; self.slots.len() * 2].into_boxed_slice();
        let old = std::mem::replace(&mut self.slots, doubled);
        let mask = self.slots.len() - 1;
        for s in old.iter().filter(|s| s.gen == self.gen) {
            let mut i = self.slot_of(s.line);
            while self.slots[i].gen == self.gen {
                i = (i + 1) & mask;
            }
            self.slots[i] = *s;
        }
    }

    fn clear(&mut self) {
        self.gen += 1;
        self.live = 0;
        self.violation = None;
    }

    #[inline]
    fn violate(&mut self, line: LineId, cause: ViolationCause) {
        // Fast path: cores running non-transactional phases have empty
        // watch sets, and a doomed core keeps only its first violation —
        // skip the probe in both cases. This sits on the store/invalidation
        // broadcast path, which every remote store takes once per core.
        if self.live == 0 || self.violation.is_some() {
            return;
        }
        if self.get(line).is_some() {
            self.violation = Some(WatchViolation { line, cause });
        }
    }

    /// Records a violation against an arbitrary watched line regardless of
    /// which line a coherence event touched — the shape of a spurious
    /// abort. No-op when the set is empty (no transaction to doom) or
    /// already violated. Returns whether a violation was recorded.
    fn force_violation(&mut self, cause: ViolationCause) -> bool {
        if self.live == 0 || self.violation.is_some() {
            return false;
        }
        let line = self
            .slots
            .iter()
            .find(|s| s.gen == self.gen)
            .expect("live > 0")
            .line;
        self.violation = Some(WatchViolation { line, cause });
        true
    }
}

/// Per-run conflict-detection bookkeeping for
/// [`crate::GateMode::Speculative`] (the scheduling half lives in
/// `machine.rs`/`cpu.rs`).
///
/// A speculative op is a pure own-L1 hit, so the only shared state it can
/// interact with is its own L1's contents — which canonical ops from
/// *other* cores mutate through exactly three remote paths: downgrade,
/// snoop invalidation, and inclusive-L2 back-invalidation. All three act
/// on a line *resident* in the victim's L1, and every victim-visible
/// consequence (MESI state, mark bits, residency, and LRU order — which
/// the replacement policy only ever compares within one set) is confined
/// to that line's set. So the detector keeps one high-water clock per
/// `(core, L1 set)`: the largest start-clock of any speculative op that
/// touched the set. A canonical remote mutation at `(clock, core)` that
/// finds the victim set's high-water mark logically *after* it has been
/// reordered against speculation — the run is tainted and its output must
/// be discarded. Speculative ops themselves never need a check: a
/// canonical op only executes while globally minimal, so any speculative
/// op that executed host-later necessarily has a larger `(clock, core)`
/// and observed the canonical effects in order.
#[derive(Debug)]
struct SpecState {
    /// `clock + 1` of the latest-clocked speculative op by `[core]` that
    /// touched `[set]` this run; 0 = none.
    set_hwm: Vec<Box<[u64]>>,
    /// `(clock, core)` of the currently executing canonical op, set by the
    /// scheduler before every canonical op of a speculative run.
    canon_clock: u64,
    canon_core: usize,
    /// Sticky conflict flag: some speculative op may have observed cache
    /// state out of canonical order, so the run's output is unreliable.
    tainted: bool,
    /// Speculative ops executed this run (telemetry).
    spec_ops: u64,
}

/// The coherent memory system shared by all cores.
#[derive(Debug)]
pub struct MemSystem {
    l1s: Vec<Cache>,
    l2: Cache,
    inclusive: bool,
    isa: IsaLevel,
    prefetch: bool,
    /// Saturating mark counters: `[core][filter]`.
    mark_counters: Vec<[u64; NUM_FILTERS]>,
    watches: Vec<WatchSet>,
    /// Per-core event counters (cycles are filled in by the scheduler).
    pub core_stats: Vec<CoreStats>,
    /// Machine-wide counters.
    pub machine_stats: MachineStats,
    cost: crate::config::CostModel,
    l1_hit: u64,
    l2_hit: u64,
    mem_lat: u64,
    upgrade: u64,
    /// Reused line-id buffer for the snapshot paths (`flush_caches`), so
    /// those entry points stop allocating a fresh `Vec` per call.
    scratch: Vec<LineId>,
    /// When set, `access`/`mark_access` stash `(line, was_write)` of each
    /// data access here for the scheduler's schedule log. Off by default so
    /// the hot path pays nothing outside recording runs.
    record_accesses: bool,
    /// The stash `take_last_access` drains once per gated op.
    last_access: Option<(LineId, bool)>,
    /// Structured event recorder (see [`crate::trace`]). `None` keeps every
    /// emission site a single never-taken branch.
    trace: Option<TraceRecorder>,
    /// Speculation conflict detector, installed only for
    /// [`crate::GateMode::Speculative`] machines; `None` keeps the three
    /// check sites a single never-taken branch on the other gates.
    spec: Option<Box<SpecState>>,
}

impl MemSystem {
    /// A memory system matching `config`, with all caches empty and every
    /// mark counter at its architected default of "all ones" (the paper
    /// notes the counter need not be context-switched because it can be
    /// restored to all ones, which conservatively forces software
    /// validation).
    pub fn new(config: &MachineConfig) -> Self {
        let cores = config.cores;
        MemSystem {
            l1s: (0..cores).map(|_| Cache::new(config.l1)).collect(),
            l2: Cache::new(config.l2),
            inclusive: config.inclusive_l2,
            isa: config.isa,
            prefetch: config.prefetch_next_line,
            mark_counters: vec![[u64::MAX; NUM_FILTERS]; cores],
            watches: (0..cores).map(|_| WatchSet::default()).collect(),
            core_stats: vec![CoreStats::default(); cores],
            machine_stats: MachineStats::default(),
            cost: config.cost,
            l1_hit: config.cost.l1_hit,
            l2_hit: config.cost.l2_hit,
            mem_lat: config.cost.mem,
            upgrade: config.cost.upgrade,
            scratch: Vec::new(),
            record_accesses: false,
            last_access: None,
            trace: config
                .trace
                .as_ref()
                .map(|tc| TraceRecorder::new(cores, tc)),
            spec: (config.gate == crate::config::GateMode::Speculative).then(|| {
                Box::new(SpecState {
                    set_hwm: (0..cores).map(|_| vec![0; config.l1.sets].into()).collect(),
                    canon_clock: 0,
                    canon_core: 0,
                    tainted: false,
                    spec_ops: 0,
                })
            }),
        }
    }

    /// Resets the speculation detector at run start (no-op on machines
    /// without one).
    pub(crate) fn spec_reset(&mut self) {
        if let Some(spec) = self.spec.as_deref_mut() {
            for per_set in &mut spec.set_hwm {
                per_set.fill(0);
            }
            spec.canon_clock = 0;
            spec.canon_core = 0;
            spec.tainted = false;
            spec.spec_ops = 0;
        }
    }

    /// Whether a speculative execution of `kind` at `addr`'s line by `core`
    /// is admissible: a pure own-L1 hit that provably touches no other
    /// core's state — loads hit any resident line; stores/RMWs only an
    /// Exclusive or Modified one (a Shared-store upgrade snoops the bus).
    #[inline]
    pub(crate) fn spec_probe(&self, core: usize, line: LineId, kind: AccessKind) -> bool {
        match self.l1s[core].peek(line) {
            None => false,
            Some(l) => match kind {
                AccessKind::Load => true,
                AccessKind::Store | AccessKind::Rmw => {
                    matches!(l.state, Mesi::Exclusive | Mesi::Modified)
                }
            },
        }
    }

    /// Records a speculative op by `core` at start-clock `clock`, touching
    /// `line` (or no line for clock-only ops).
    #[inline]
    pub(crate) fn spec_note(&mut self, core: usize, line: Option<LineId>, clock: u64) {
        let Some(spec) = self.spec.as_deref_mut() else {
            return;
        };
        spec.spec_ops += 1;
        if let Some(line) = line {
            let set = self.l1s[core].set_of(line);
            let hwm = &mut spec.set_hwm[core][set];
            *hwm = (*hwm).max(clock + 1);
        }
    }

    /// Sets the `(clock, core)` context the conflict checks compare
    /// against; called before every canonical op of a speculative run.
    #[inline]
    pub(crate) fn spec_set_canon(&mut self, core: usize, clock: u64) {
        if let Some(spec) = self.spec.as_deref_mut() {
            spec.canon_clock = clock;
            spec.canon_core = core;
        }
    }

    /// Forces a taint (test hook for [`crate::MachineConfig::spec_taint_at`]).
    pub(crate) fn spec_force_taint(&mut self) {
        if let Some(spec) = self.spec.as_deref_mut() {
            spec.tainted = true;
        }
    }

    /// Whether this run's speculation was tainted (`false` on machines
    /// without a detector).
    pub(crate) fn spec_tainted(&self) -> bool {
        self.spec.as_deref().is_some_and(|s| s.tainted)
    }

    /// Speculative ops executed this run.
    pub(crate) fn spec_ops(&self) -> u64 {
        self.spec.as_deref().map_or(0, |s| s.spec_ops)
    }

    /// Conflict check at a canonical remote mutation of `line`, which the
    /// caller just found resident in `victim`'s L1: if any speculative op
    /// by `victim` in that line's set carries a `(clock, core)` logically
    /// *after* the canonical op's, host order inverted logical order and
    /// the speculation may have observed stale state — taint the run.
    #[inline]
    fn spec_check(&mut self, victim: usize, line: LineId) {
        if let Some(spec) = self.spec.as_deref_mut() {
            // `spec-seeded-bug`: skip the last-writer check for one line
            // class (the bottom quarter of every eight-line block),
            // silently certifying conflicting speculation. Only the
            // cross-gate golden tests / hastm-check can see the corruption.
            #[cfg(feature = "spec-seeded-bug")]
            if line.0 % 8 < 2 {
                return;
            }
            let set = self.l1s[victim].set_of(line);
            let hwm = spec.set_hwm[victim][set];
            if hwm != 0 && (hwm - 1, victim) > (spec.canon_clock, spec.canon_core) {
                spec.tainted = true;
            }
        }
    }

    /// Whether structured tracing is armed.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Arms (or disarms, with `None`) the structured event recorder.
    pub(crate) fn set_trace(&mut self, config: Option<TraceConfig>) {
        let cores = self.cores();
        self.trace = config.map(|tc| TraceRecorder::new(cores, &tc));
    }

    /// Clears all recorded events (run start).
    pub(crate) fn trace_reset(&mut self) {
        if let Some(t) = self.trace.as_mut() {
            t.reset();
        }
    }

    /// Stamps and routes all staged events at logical `cycle`.
    pub(crate) fn trace_flush(&mut self, cycle: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.flush(cycle);
        }
    }

    /// End-of-gated-op hook: records the gate admission of global op `op`
    /// by `core`, then stamps and routes everything the op staged.
    pub(crate) fn trace_op_end(&mut self, core: usize, op: u64, cycle: u64) {
        if let Some(t) = self.trace.as_mut() {
            use crate::trace::TraceSink;
            t.record(core, cycle, TraceEvent::GateAdmit { op });
            t.flush(cycle);
        }
    }

    /// Appends a worker's pre-stamped local events to `core`'s ring.
    pub(crate) fn trace_push_stamped(&mut self, core: usize, events: &mut Vec<TimedEvent>) {
        if let Some(t) = self.trace.as_mut() {
            t.push_stamped(core, events);
        }
    }

    /// Spills a dropping worker's leftover events into `core`'s tail.
    pub(crate) fn trace_push_tail(&mut self, core: usize, events: &mut Vec<TimedEvent>) {
        if let Some(t) = self.trace.as_mut() {
            t.push_tail(core, events);
        }
    }

    /// Harvests the recorded trace, leaving the recorder armed and empty.
    pub(crate) fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.as_mut().map(|t| t.take())
    }

    /// Stages an event against the affected `core`; stamped and routed at
    /// the end of the current gated op. One never-taken branch when off.
    #[inline]
    fn stage(&mut self, core: usize, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.stage(core, ev);
        }
    }

    /// Enables or disables last-access recording (see
    /// [`MemSystem::take_last_access`]).
    pub fn set_record_accesses(&mut self, on: bool) {
        self.record_accesses = on;
        if !on {
            self.last_access = None;
        }
    }

    /// Drains the `(line, was_write)` of the most recent data access since
    /// the last drain. Always `None` unless recording is enabled.
    pub fn take_last_access(&mut self) -> Option<(LineId, bool)> {
        self.last_access.take()
    }

    /// Raises a spurious watch violation on `core`: its current
    /// transaction (if any) observes [`ViolationCause::Spurious`] at the
    /// next violation check, without any cache state changing. Models
    /// interrupt/TLB-shootdown aborts. Returns whether a transaction was
    /// actually doomed (false when `core` holds no watches).
    pub fn inject_spurious_abort(&mut self, core: usize) -> bool {
        self.watches[core].force_violation(ViolationCause::Spurious)
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1s.len()
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> crate::config::CostModel {
        self.cost
    }

    /// Mutable access to a core's counters (used by the CPU layer for
    /// events, like CAS, that the memory system cannot classify itself).
    pub fn core_stats_mut(&mut self, core: usize) -> &mut CoreStats {
        &mut self.core_stats[core]
    }

    /// Resets all per-run statistics (not cache or mark state).
    pub fn reset_stats(&mut self) {
        for s in &mut self.core_stats {
            *s = CoreStats::default();
        }
        self.machine_stats = MachineStats::default();
    }

    /// Empties every cache, losing all mark bits (counters are bumped as if
    /// the marked lines were evicted) and violating all watches.
    pub fn flush_caches(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for core in 0..self.cores() {
            scratch.clear();
            scratch.extend(self.l1s[core].iter().map(|l| l.id));
            for &id in &scratch {
                let line = self.l1s[core].remove(id).expect("resident");
                if line.is_marked() {
                    self.bump_counters_for_loss(core, &line);
                    self.core_stats[core].marked_lines_lost += 1;
                    self.core_stats[core].marked_lost_capacity += 1;
                }
                self.watches[core].violate(id, ViolationCause::Eviction);
            }
        }
        scratch.clear();
        scratch.extend(self.l2.iter().map(|l| l.id));
        for &id in &scratch {
            self.l2.remove(id);
        }
        self.scratch = scratch;
    }

    fn bump_mark_counter(&mut self, core: usize, filter: FilterId) {
        let c = &mut self.mark_counters[core][filter.idx()];
        *c = c.saturating_add(1);
        self.stage(core, TraceEvent::MarkCounterBump { filter: filter.0 });
    }

    /// Bumps every filter whose marks a lost line carried.
    fn bump_counters_for_loss(&mut self, core: usize, line: &crate::cache::Line) {
        for f in line.marked_filters() {
            self.bump_mark_counter(core, f);
        }
    }

    /// The architected mark counter of `core` for `filter`.
    pub fn mark_counter(&self, core: usize, filter: FilterId) -> u64 {
        self.mark_counters[core][filter.idx()]
    }

    /// `resetmarkcounter`.
    pub fn reset_mark_counter(&mut self, core: usize, filter: FilterId) {
        self.mark_counters[core][filter.idx()] = 0;
    }

    /// `resetmarkall`: clears all of `core`'s mark bits in `filter` and
    /// increments that filter's counter. At [`IsaLevel::Default`] only the
    /// increment happens.
    pub fn reset_mark_all(&mut self, core: usize, filter: FilterId) {
        if self.isa == IsaLevel::Full {
            self.l1s[core].clear_all_marks(filter);
        }
        self.bump_mark_counter(core, filter);
        self.core_stats[core].mark_resets += 1;
    }

    /// Handles a line being pushed out of `core`'s L1 (eviction, remote
    /// store, or back-invalidation): mark-counter bump if marked, watch
    /// violation, trace events.
    fn on_l1_loss(&mut self, core: usize, line: crate::cache::Line, cause: LossCause) {
        self.stage(
            core,
            TraceEvent::LineLoss {
                line: line.id,
                cause,
            },
        );
        if line.is_marked() {
            self.bump_counters_for_loss(core, &line);
            self.core_stats[core].marked_lines_lost += 1;
            match cause {
                LossCause::Remote => self.core_stats[core].marked_lost_conflict += 1,
                LossCause::Eviction | LossCause::BackInval => {
                    self.core_stats[core].marked_lost_capacity += 1
                }
            }
            // `seeded-trace-bug`: swallow the MarkDiscard event when the
            // loss came from an inclusive-L2 back-invalidation — the stats
            // still count it, so only the trace-vs-stats reconciliation
            // check can see the hole.
            #[cfg(feature = "seeded-trace-bug")]
            let emit_discard = cause != LossCause::BackInval;
            #[cfg(not(feature = "seeded-trace-bug"))]
            let emit_discard = true;
            if emit_discard {
                self.stage(
                    core,
                    TraceEvent::MarkDiscard {
                        line: line.id,
                        cause,
                    },
                );
            }
        }
        let violation = match cause {
            LossCause::Remote => ViolationCause::RemoteWrite,
            LossCause::Eviction | LossCause::BackInval => ViolationCause::Eviction,
        };
        self.watches[core].violate(line.id, violation);
    }

    /// Invalidates `line` from every L1 except `writer`'s (remote store).
    fn invalidate_others(&mut self, writer: usize, line: LineId) {
        for core in 0..self.cores() {
            if core == writer {
                continue;
            }
            if let Some(victim) = self.l1s[core].remove(line) {
                self.spec_check(core, line);
                self.core_stats[core].invalidations_received += 1;
                self.on_l1_loss(core, victim, LossCause::Remote);
            } else {
                // Not resident, but an HTM write-buffer entry may still be
                // watched (the buffered line need not be cached).
                self.watches[core].violate(line, ViolationCause::RemoteWrite);
            }
        }
    }

    /// Downgrades `line` to Shared in every L1 except `reader`'s and fires
    /// remote-read violations on write-watches.
    fn downgrade_others(&mut self, reader: usize, line: LineId) -> bool {
        let mut other_has = false;
        for core in 0..self.cores() {
            if core == reader {
                continue;
            }
            if let Some(l) = self.l1s[core].lookup(line) {
                l.state = Mesi::Shared;
                other_has = true;
                self.spec_check(core, line);
            }
            if self.watches[core].get(line) == Some(WatchKind::Write) {
                self.watches[core].violate(line, ViolationCause::RemoteRead);
            }
        }
        other_has
    }

    /// Ensures `line` is in the L2, back-invalidating L1 copies of the L2
    /// victim if the hierarchy is inclusive.
    fn l2_fill(&mut self, line: LineId) {
        if self.l2.lookup(line).is_some() {
            return;
        }
        if let Some(victim) = self.l2.insert(line, Mesi::Exclusive) {
            self.machine_stats.l2_evictions += 1;
            self.stage(0, TraceEvent::L2Evict { line: victim.id });
            if self.inclusive {
                for core in 0..self.cores() {
                    if let Some(l1_victim) = self.l1s[core].remove(victim.id) {
                        self.spec_check(core, victim.id);
                        self.machine_stats.back_invalidations += 1;
                        self.on_l1_loss(core, l1_victim, LossCause::BackInval);
                    }
                }
            }
        }
    }

    /// Evicts the `nth` (modulo residency) resident line from `core`'s L1
    /// as capacity pressure would: the line's marks are lost (bumping the
    /// mark counter) and its watches are violated, exactly like an organic
    /// eviction. Used by the fuzzed scheduler to exercise the §7.4
    /// spurious-loss paths on demand. Returns whether a line was evicted.
    pub fn inject_l1_eviction(&mut self, core: usize, nth: usize) -> bool {
        let resident = self.l1s[core].resident_lines();
        if resident == 0 {
            return false;
        }
        let id = self.l1s[core]
            .iter()
            .nth(nth % resident)
            .expect("resident line")
            .id;
        let victim = self.l1s[core].remove(id).expect("resident");
        self.on_l1_loss(core, victim, LossCause::Eviction);
        true
    }

    /// Evicts the `nth` (modulo residency) line from the shared L2 and, if
    /// the hierarchy is inclusive, back-invalidates every L1 copy — the
    /// same effect as an organic L2 conflict eviction ("prefetches and
    /// speculative accesses from one core kick out marked cache lines from
    /// another core", §7.4). Returns whether a line was evicted.
    pub fn inject_back_invalidation(&mut self, nth: usize) -> bool {
        let resident = self.l2.resident_lines();
        if resident == 0 {
            return false;
        }
        let id = self
            .l2
            .iter()
            .nth(nth % resident)
            .expect("resident line")
            .id;
        self.l2.remove(id);
        self.machine_stats.l2_evictions += 1;
        self.stage(0, TraceEvent::L2Evict { line: id });
        if self.inclusive {
            for core in 0..self.cores() {
                if let Some(victim) = self.l1s[core].remove(id) {
                    self.machine_stats.back_invalidations += 1;
                    self.on_l1_loss(core, victim, LossCause::BackInval);
                }
            }
        }
        true
    }

    /// Makes `line` resident in `core`'s L1 with sufficient permission,
    /// returning `(latency, was_miss)`. The hit path is first (it resolves
    /// almost every access once caches are warm) and retires on a single
    /// `lookup`; only the Shared→Modified upgrade needs a second pass,
    /// because the snoop walks the other L1s.
    fn ensure_resident(&mut self, core: usize, line: LineId, kind: AccessKind) -> (u64, bool) {
        if let Some(l) = self.l1s[core].lookup(line) {
            let needs_upgrade = match (kind, l.state) {
                (AccessKind::Load, _) | (_, Mesi::Modified) => false,
                (_, Mesi::Exclusive) => {
                    l.state = Mesi::Modified;
                    false
                }
                (_, Mesi::Shared) => true,
            };
            self.core_stats[core].l1_hits += 1;
            if !needs_upgrade {
                return (self.l1_hit, false);
            }
            self.invalidate_others(core, line);
            self.l1s[core].lookup(line).expect("resident").state = Mesi::Modified;
            return (self.l1_hit + self.upgrade, false);
        }

        self.core_stats[core].l1_misses += 1;
        let other_has_before = (0..self.cores()).any(|c| c != core && self.l1s[c].contains(line));
        let in_l2 = self.l2.contains(line);

        let (state, still_shared) = match kind {
            AccessKind::Store | AccessKind::Rmw => {
                self.invalidate_others(core, line);
                (Mesi::Modified, false)
            }
            AccessKind::Load => {
                let shared = self.downgrade_others(core, line);
                (
                    if shared {
                        Mesi::Shared
                    } else {
                        Mesi::Exclusive
                    },
                    shared,
                )
            }
        };
        let _ = still_shared;

        let service = if in_l2 || other_has_before {
            self.core_stats[core].l2_hits += 1;
            self.l2_hit
        } else {
            self.core_stats[core].mem_accesses += 1;
            self.mem_lat
        };
        self.l2_fill(line);
        if let Some(victim) = self.l1s[core].insert(line, state) {
            self.on_l1_loss(core, victim, LossCause::Eviction);
        }
        (service, true)
    }

    /// Performs a plain load or store by `core` at `addr`, returning the
    /// latency in cycles. (Data itself lives in [`crate::mem::Memory`].)
    pub fn access(&mut self, core: usize, addr: Addr, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Load => self.core_stats[core].loads += 1,
            AccessKind::Store | AccessKind::Rmw => self.core_stats[core].stores += 1,
        }
        let line = addr.line();
        if self.record_accesses {
            self.last_access = Some((line, kind != AccessKind::Load));
        }
        let (mut lat, was_miss) = self.ensure_resident(core, line, kind);
        self.stage(
            core,
            TraceEvent::CacheAccess {
                line,
                write: kind != AccessKind::Load,
                miss: was_miss,
            },
        );
        if kind == AccessKind::Store {
            // Store-buffer absorption: the fill happens off the critical
            // path; cache-state effects above are already applied.
            lat = lat.min(self.cost.store_latency_cap);
        }
        if self.prefetch && was_miss {
            // Next-line prefetch: fills (and pollutes) the L1 off the
            // critical path; charged no latency.
            let next = LineId(line.0 + 1);
            if !self.l1s[core].contains(next) {
                self.core_stats[core].prefetch_fills += 1;
                self.ensure_resident(core, next, AccessKind::Load);
            }
        }
        lat
    }

    /// Performs a mark-variant load covering `len` bytes at `addr` against
    /// `filter`, returning `(latency, test_result)`. `test_result` is
    /// meaningful only for [`MarkOp::Test`] and is the logical AND of the
    /// covered mark bits.
    pub fn mark_access(
        &mut self,
        core: usize,
        addr: Addr,
        len: u64,
        op: MarkOp,
        filter: FilterId,
    ) -> (u64, bool) {
        self.core_stats[core].loads += 1;
        match op {
            MarkOp::Set => self.core_stats[core].mark_sets += 1,
            MarkOp::Test => self.core_stats[core].mark_tests += 1,
            MarkOp::Reset => {}
        }
        let line = addr.line();
        if self.record_accesses {
            self.last_access = Some((line, false));
        }
        let (latency, was_miss) = self.ensure_resident(core, line, AccessKind::Load);
        self.stage(
            core,
            TraceEvent::CacheAccess {
                line,
                write: false,
                miss: was_miss,
            },
        );
        if self.prefetch && was_miss {
            let next = LineId(line.0 + 1);
            if !self.l1s[core].contains(next) {
                self.core_stats[core].prefetch_fills += 1;
                self.ensure_resident(core, next, AccessKind::Load);
            }
        }

        if self.isa == IsaLevel::Default {
            // §3.3 default behavior: loadsetmark increments the counter,
            // loadresetmark is a plain load, loadtestmark clears the flag.
            if op == MarkOp::Set {
                self.bump_mark_counter(core, filter);
            }
            return (latency, false);
        }

        let mask = subblock_mask(addr, len);
        let f = filter.idx();
        let line = self.l1s[core].lookup(addr.line()).expect("just filled");
        let line_id = line.id;
        let result = match op {
            MarkOp::Set => {
                line.marks[f] |= mask;
                false
            }
            MarkOp::Reset => {
                line.marks[f] &= !mask;
                false
            }
            MarkOp::Test => line.marks[f] & mask == mask,
        };
        if op == MarkOp::Set {
            self.stage(core, TraceEvent::MarkSet { line: line_id });
        }
        if op == MarkOp::Test && result {
            self.core_stats[core].mark_test_hits += 1;
        }
        (latency, result)
    }

    /// Registers an HTM-style watch on `line` for `core`. A `Write` watch
    /// subsumes an existing `Read` watch; a `Read` watch never downgrades a
    /// `Write` watch.
    pub fn watch(&mut self, core: usize, line: LineId, kind: WatchKind) {
        self.watches[core].insert(line, kind);
    }

    /// Clears `core`'s watch set and any pending violation.
    pub fn clear_watches(&mut self, core: usize) {
        self.watches[core].clear();
    }

    /// The first violation recorded against `core`'s watch set, if any.
    pub fn violation(&self, core: usize) -> Option<WatchViolation> {
        self.watches[core].violation
    }

    /// Number of lines currently watched by `core`.
    pub fn watched_lines(&self, core: usize) -> usize {
        self.watches[core].live
    }

    /// Number of lines resident in `core`'s L1 marked in `filter`
    /// (test/debug aid).
    pub fn marked_lines(&self, core: usize, filter: FilterId) -> usize {
        self.l1s[core].marked_lines(filter)
    }

    /// Whether `line` is resident in `core`'s L1 (test/debug aid).
    pub fn l1_contains(&self, core: usize, line: LineId) -> bool {
        self.l1s[core].contains(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, CostModel};

    fn sys(cores: usize) -> MemSystem {
        let cfg = MachineConfig {
            cores,
            l1: CacheConfig::new(4, 2),
            l2: CacheConfig::new(16, 4),
            inclusive_l2: true,
            isa: IsaLevel::Full,
            prefetch_next_line: false,
            cost: CostModel::default(),
            ..MachineConfig::default()
        };
        MemSystem::new(&cfg)
    }

    const A: Addr = Addr(0x1000);
    const B: Addr = Addr(0x2000);

    #[test]
    fn cold_miss_then_hit() {
        let mut s = sys(1);
        let miss = s.access(0, A, AccessKind::Load);
        assert_eq!(miss, CostModel::default().mem);
        let hit = s.access(0, A, AccessKind::Load);
        assert_eq!(hit, CostModel::default().l1_hit);
        assert_eq!(s.core_stats[0].l1_hits, 1);
        assert_eq!(s.core_stats[0].l1_misses, 1);
        assert_eq!(s.core_stats[0].mem_accesses, 1);
    }

    #[test]
    fn l2_services_second_core() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        let lat = s.access(1, A, AccessKind::Load);
        assert_eq!(lat, CostModel::default().l2_hit);
        assert_eq!(s.core_stats[1].l2_hits, 1);
    }

    #[test]
    fn exclusive_then_shared_states() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        assert_eq!(s.l1s[0].peek(A.line()).unwrap().state, Mesi::Exclusive);
        s.access(1, A, AccessKind::Load);
        assert_eq!(s.l1s[0].peek(A.line()).unwrap().state, Mesi::Shared);
        assert_eq!(s.l1s[1].peek(A.line()).unwrap().state, Mesi::Shared);
    }

    #[test]
    fn store_invalidates_other_copies() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        s.access(1, A, AccessKind::Store);
        assert!(!s.l1_contains(0, A.line()));
        assert_eq!(s.l1s[1].peek(A.line()).unwrap().state, Mesi::Modified);
        assert_eq!(s.core_stats[0].invalidations_received, 1);
    }

    #[test]
    fn shared_store_pays_upgrade() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        s.access(1, A, AccessKind::Load);
        // A plain store's visible latency is absorbed by the store buffer,
        // but the invalidation still happens; an RMW pays the full
        // round-trip.
        let lat = s.access(0, A, AccessKind::Store);
        let c = CostModel::default();
        assert_eq!(lat, c.store_latency_cap);
        assert!(!s.l1_contains(1, A.line()));
        s.access(1, A, AccessKind::Load);
        let lat_rmw = s.access(0, A, AccessKind::Rmw);
        assert_eq!(lat_rmw, c.l1_hit + c.upgrade);
        assert!(!s.l1_contains(1, A.line()));
    }

    // --- Figure 1 state machine: mark bits ---

    #[test]
    fn loadsetmark_sets_and_loadtestmark_sees_it() {
        let mut s = sys(1);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(t);
        // A different sub-block of the same line is not marked.
        let (_, t2) = s.mark_access(0, A.offset(16), 8, MarkOp::Test, FilterId::READ);
        assert!(!t2);
        assert_eq!(s.core_stats[0].mark_test_hits, 1);
        assert_eq!(s.core_stats[0].mark_tests, 2);
    }

    #[test]
    fn loadresetmark_clears() {
        let mut s = sys(1);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Reset, FilterId::READ);
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(!t);
    }

    #[test]
    fn line_granularity_marks_all_subblocks() {
        let mut s = sys(1);
        s.mark_access(0, A.line_base(), 64, MarkOp::Set, FilterId::READ);
        for sb in 0..4 {
            let (_, t) = s.mark_access(
                0,
                A.line_base().offset(16 * sb),
                8,
                MarkOp::Test,
                FilterId::READ,
            );
            assert!(t, "sub-block {sb} marked");
        }
        // Whole-line test is the AND of all four.
        let (_, t) = s.mark_access(0, A.line_base(), 64, MarkOp::Test, FilterId::READ);
        assert!(t);
    }

    #[test]
    fn whole_line_test_is_and_of_bits() {
        let mut s = sys(1);
        s.mark_access(0, A.line_base(), 8, MarkOp::Set, FilterId::READ); // only sub-block 0
        let (_, t) = s.mark_access(0, A.line_base(), 64, MarkOp::Test, FilterId::READ);
        assert!(!t, "AND over partially marked line is false");
    }

    #[test]
    fn remote_store_discards_marks_and_bumps_counter() {
        let mut s = sys(2);
        s.reset_mark_counter(0, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        assert_eq!(s.mark_counter(0, FilterId::READ), 0);
        s.access(1, A, AccessKind::Store);
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        assert_eq!(s.core_stats[0].marked_lines_lost, 1);
        // Re-testing re-fetches the line; marks are gone.
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(!t);
    }

    #[test]
    fn remote_load_does_not_discard_marks() {
        let mut s = sys(2);
        s.reset_mark_counter(0, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        s.access(1, A, AccessKind::Load);
        assert_eq!(s.mark_counter(0, FilterId::READ), 0);
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(t, "shared read keeps the mark");
    }

    #[test]
    fn capacity_eviction_of_marked_line_bumps_counter() {
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        // L1 is 4 sets x 2 ways; lines 0x40*k with k ≡ same set collide.
        // Set index = line_id & 3. Lines with id 0,4,8 share set 0.
        let l0 = Addr(0);
        let l4 = Addr(4 * 64);
        let l8 = Addr(8 * 64);
        s.mark_access(0, l0, 8, MarkOp::Set, FilterId::READ);
        s.access(0, l4, AccessKind::Load);
        s.access(0, l8, AccessKind::Load); // evicts l0 (LRU)
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        assert!(!s.l1_contains(0, l0.line()));
    }

    #[test]
    fn reset_mark_all_clears_and_increments() {
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        s.mark_access(0, B, 8, MarkOp::Set, FilterId::READ);
        assert_eq!(s.marked_lines(0, FilterId::READ), 2);
        s.reset_mark_all(0, FilterId::READ);
        assert_eq!(s.marked_lines(0, FilterId::READ), 0);
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        // Lines themselves stay resident (it's not a flush).
        assert!(s.l1_contains(0, A.line()));
    }

    #[test]
    fn mark_counter_defaults_to_all_ones() {
        let s = sys(1);
        assert_eq!(s.mark_counter(0, FilterId::READ), u64::MAX);
    }

    #[test]
    fn mark_counter_saturates() {
        let mut s = sys(1);
        // Already at MAX; resetmarkall must not wrap.
        s.reset_mark_all(0, FilterId::READ);
        assert_eq!(s.mark_counter(0, FilterId::READ), u64::MAX);
    }

    #[test]
    fn inclusive_l2_back_invalidates() {
        // L2 of 16 sets x 4 ways: lines mapping to L2 set 0 are ids 0,16,32...
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        let mk = Addr(0); // line id 0 -> L2 set 0, L1 set 0
        s.mark_access(0, mk, 8, MarkOp::Set, FilterId::READ);
        // Fill L2 set 0 with 4 more lines whose L1 sets differ (ids 16,32,48,64
        // -> L1 sets 0..3 after &3: 0,0,0,0 — careful, keep them from evicting
        // the marked line out of L1 set 0 first. Use ids 17,33,49,65? They map
        // to L2 set 1. Instead pick L1-set-diverse ids in L2 set 0: id 16 -> L1
        // set 0. All multiples of 16 land in L1 set 0 with 4 L1 sets. So give
        // the L1 more room by touching only 1 extra per L1 set... Simplest:
        // accept that one of the L2-set-0 fills may evict the marked line via
        // L1 capacity; in either case the counter bumps exactly once when the
        // marked line is lost.
        for k in 1..=4u64 {
            s.access(0, Addr(16 * 64 * k), AccessKind::Load);
        }
        assert!(!s.l1_contains(0, mk.line()), "marked line back-invalidated");
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        assert!(
            s.machine_stats.l2_evictions >= 1,
            "L2 must have evicted at least once"
        );
    }

    #[test]
    fn default_isa_level_is_conservative() {
        let cfg = MachineConfig {
            cores: 1,
            isa: IsaLevel::Default,
            ..MachineConfig::default()
        };
        let mut s = MemSystem::new(&cfg);
        s.reset_mark_counter(0, FilterId::READ);
        // loadsetmark increments the counter instead of marking.
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        // loadtestmark always reports unmarked.
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(!t);
        // resetmarkall still increments.
        s.reset_mark_all(0, FilterId::READ);
        assert_eq!(s.mark_counter(0, FilterId::READ), 2);
    }

    // --- watch sets (HTM substrate) ---

    #[test]
    fn read_watch_violated_by_remote_store() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        s.watch(0, A.line(), WatchKind::Read);
        assert!(s.violation(0).is_none());
        s.access(1, A, AccessKind::Store);
        let v = s.violation(0).expect("violated");
        assert_eq!(v.cause, ViolationCause::RemoteWrite);
        assert_eq!(v.line, A.line());
    }

    #[test]
    fn read_watch_not_violated_by_remote_load() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        s.watch(0, A.line(), WatchKind::Read);
        s.access(1, A, AccessKind::Load);
        assert!(s.violation(0).is_none());
    }

    #[test]
    fn write_watch_violated_by_remote_load() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Store);
        s.watch(0, A.line(), WatchKind::Write);
        s.access(1, A, AccessKind::Load);
        let v = s.violation(0).expect("violated");
        assert_eq!(v.cause, ViolationCause::RemoteRead);
    }

    #[test]
    fn eviction_violates_watch() {
        let mut s = sys(1);
        let l0 = Addr(0);
        s.access(0, l0, AccessKind::Load);
        s.watch(0, l0.line(), WatchKind::Read);
        s.access(0, Addr(4 * 64), AccessKind::Load);
        s.access(0, Addr(8 * 64), AccessKind::Load); // evicts l0
        let v = s.violation(0).expect("capacity violation");
        assert_eq!(v.cause, ViolationCause::Eviction);
    }

    #[test]
    fn clear_watches_resets_violation() {
        let mut s = sys(2);
        s.access(0, A, AccessKind::Load);
        s.watch(0, A.line(), WatchKind::Read);
        s.access(1, A, AccessKind::Store);
        assert!(s.violation(0).is_some());
        s.clear_watches(0);
        assert!(s.violation(0).is_none());
        assert_eq!(s.watched_lines(0), 0);
    }

    #[test]
    fn write_watch_subsumes_read() {
        let mut s = sys(2);
        s.watch(0, A.line(), WatchKind::Read);
        s.watch(0, A.line(), WatchKind::Write);
        s.watch(0, A.line(), WatchKind::Read); // must not downgrade
        s.access(1, A, AccessKind::Load);
        assert!(s.violation(0).is_some(), "still a write watch");
    }

    #[test]
    fn prefetcher_fills_next_line() {
        let cfg = MachineConfig {
            cores: 1,
            prefetch_next_line: true,
            ..MachineConfig::default()
        };
        let mut s = MemSystem::new(&cfg);
        s.access(0, Addr(0x1000), AccessKind::Load);
        assert!(
            s.l1_contains(0, Addr(0x1040).line()),
            "next line prefetched"
        );
        assert_eq!(s.core_stats[0].prefetch_fills, 1);
        // The prefetched line now hits.
        let lat = s.access(0, Addr(0x1040), AccessKind::Load);
        assert_eq!(lat, CostModel::default().l1_hit);
        // Hits do not prefetch.
        s.access(0, Addr(0x1000), AccessKind::Load);
        assert_eq!(s.core_stats[0].prefetch_fills, 1);
    }

    #[test]
    fn prefetch_also_serves_mark_loads() {
        let cfg = MachineConfig {
            cores: 1,
            prefetch_next_line: true,
            ..MachineConfig::default()
        };
        let mut s = MemSystem::new(&cfg);
        s.mark_access(0, Addr(0x2000), 8, MarkOp::Set, FilterId::READ);
        assert!(s.l1_contains(0, Addr(0x2040).line()));
    }

    #[test]
    fn store_latency_is_capped_but_rmw_is_not() {
        let mut s = sys(1);
        let c = CostModel::default();
        // Cold store: full miss handled off the critical path.
        let lat = s.access(0, Addr(0x9000), AccessKind::Store);
        assert_eq!(lat, c.store_latency_cap);
        // Cold RMW: pays the whole memory latency.
        let lat = s.access(0, Addr(0xa000), AccessKind::Rmw);
        assert_eq!(lat, c.mem);
    }

    #[test]
    fn filters_are_independent() {
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        s.reset_mark_counter(0, FilterId::WRITE);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        // Filter 1 does not see filter 0's mark.
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::WRITE);
        assert!(!t);
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(t);
        // resetmarkall on filter 1 leaves filter 0's marks alone.
        s.reset_mark_all(0, FilterId::WRITE);
        let (_, t) = s.mark_access(0, A, 8, MarkOp::Test, FilterId::READ);
        assert!(t);
        assert_eq!(s.mark_counter(0, FilterId::READ), 0);
        assert_eq!(s.mark_counter(0, FilterId::WRITE), 1);
    }

    #[test]
    fn line_loss_bumps_every_marked_filter() {
        let mut s = sys(2);
        s.reset_mark_counter(0, FilterId::READ);
        s.reset_mark_counter(0, FilterId::WRITE);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::WRITE);
        s.access(1, A, AccessKind::Store);
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        assert_eq!(s.mark_counter(0, FilterId::WRITE), 1);
    }

    #[test]
    fn line_loss_spares_unmarked_filter() {
        let mut s = sys(2);
        s.reset_mark_counter(0, FilterId::READ);
        s.reset_mark_counter(0, FilterId::WRITE);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        s.access(1, A, AccessKind::Store);
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        assert_eq!(s.mark_counter(0, FilterId::WRITE), 0);
    }

    #[test]
    fn flush_caches_loses_marks_and_watches() {
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        s.watch(0, A.line(), WatchKind::Read);
        s.flush_caches();
        assert_eq!(s.mark_counter(0, FilterId::READ), 1);
        assert!(s.violation(0).is_some());
        assert!(!s.l1_contains(0, A.line()));
        // Next access is a cold miss again.
        let lat = s.access(0, A, AccessKind::Load);
        assert_eq!(lat, CostModel::default().mem);
    }

    // --- Fuzzed-scheduler pressure injection ---

    #[test]
    fn injected_l1_eviction_behaves_like_organic_eviction() {
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        s.mark_access(0, A, 8, MarkOp::Set, FilterId::READ);
        // Only one resident line, so any `nth` selects it.
        assert!(s.inject_l1_eviction(0, 13));
        assert!(!s.l1_contains(0, A.line()));
        assert_eq!(s.mark_counter(0, FilterId::READ), 1, "marked loss bumps");
        assert_eq!(s.core_stats[0].marked_lines_lost, 1);
        // Nothing left to evict.
        assert!(!s.inject_l1_eviction(0, 0));
    }

    #[test]
    fn injected_eviction_of_unmarked_line_leaves_counter_alone() {
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        s.access(0, A, AccessKind::Load);
        assert!(s.inject_l1_eviction(0, 0));
        assert_eq!(s.mark_counter(0, FilterId::READ), 0);
        assert_eq!(s.core_stats[0].marked_lines_lost, 0);
    }

    #[test]
    fn injected_back_invalidation_reaches_marked_l1_copies() {
        let mut s = sys(2);
        s.reset_mark_counter(1, FilterId::READ);
        s.mark_access(1, A, 8, MarkOp::Set, FilterId::READ);
        assert!(s.inject_back_invalidation(7));
        assert!(!s.l1_contains(1, A.line()), "inclusive victim leaves L1s");
        assert_eq!(s.mark_counter(1, FilterId::READ), 1);
        assert!(s.machine_stats.back_invalidations >= 1);
        assert!(s.machine_stats.l2_evictions >= 1);
    }

    #[test]
    fn injected_back_invalidation_on_empty_l2_is_noop() {
        let mut s = sys(1);
        assert!(!s.inject_back_invalidation(0));
        assert_eq!(s.machine_stats.l2_evictions, 0);
    }

    // --- eviction / replacement edge cases ---

    #[test]
    fn eviction_bumps_only_the_marked_filters_counter() {
        // A line marked only in the WRITE filter, discarded on capacity
        // eviction, must bump exactly that filter's counter.
        let mut s = sys(1);
        s.reset_mark_counter(0, FilterId::READ);
        s.reset_mark_counter(0, FilterId::WRITE);
        let l0 = Addr(0);
        s.mark_access(0, l0, 8, MarkOp::Set, FilterId::WRITE);
        s.access(0, Addr(4 * 64), AccessKind::Load);
        s.access(0, Addr(8 * 64), AccessKind::Load); // evicts l0 (LRU)
        assert!(!s.l1_contains(0, l0.line()));
        assert_eq!(s.mark_counter(0, FilterId::WRITE), 1);
        assert_eq!(s.mark_counter(0, FilterId::READ), 0);
        assert_eq!(s.core_stats[0].marked_lines_lost, 1);
    }

    #[test]
    fn non_inclusive_l2_eviction_leaves_l1_copies_alone() {
        let cfg = MachineConfig {
            cores: 1,
            l1: CacheConfig::new(4, 2),
            l2: CacheConfig::new(16, 4),
            inclusive_l2: false,
            isa: IsaLevel::Full,
            prefetch_next_line: false,
            ..MachineConfig::default()
        };
        let mut s = MemSystem::new(&cfg);
        s.reset_mark_counter(0, FilterId::READ);
        let mk = Addr(0); // line id 0 -> L2 set 0
        s.mark_access(0, mk, 8, MarkOp::Set, FilterId::READ);
        // Overflow L2 set 0 (ids 16,32,48,64 — these collide with L1 set 0
        // too, but the L1 holds 2 ways, so keep the marked line fresh by
        // re-touching it between fills).
        for k in 1..=4u64 {
            s.access(0, Addr(16 * 64 * k), AccessKind::Load);
            s.access(0, mk, AccessKind::Load);
        }
        assert!(s.machine_stats.l2_evictions >= 1, "L2 set overflowed");
        assert_eq!(s.machine_stats.back_invalidations, 0, "non-inclusive");
        assert!(s.l1_contains(0, mk.line()), "L1 copy survives L2 eviction");
        assert_eq!(s.mark_counter(0, FilterId::READ), 0, "marks survive");
    }

    #[test]
    fn back_invalidation_violates_watch_with_eviction_cause() {
        let mut s = sys(2);
        s.access(1, A, AccessKind::Load);
        s.watch(1, A.line(), WatchKind::Read);
        assert!(s.inject_back_invalidation(0));
        let v = s.violation(1).expect("watched line back-invalidated");
        assert_eq!(v.cause, ViolationCause::Eviction);
        assert_eq!(v.line, A.line());
    }

    #[test]
    fn lru_tie_breaks_toward_older_insertion() {
        // Two untouched-since-insert lines in one set: the earlier insert
        // holds the strictly smaller LRU tick and must be the victim.
        let mut s = sys(1);
        let l0 = Addr(0);
        let l4 = Addr(4 * 64);
        let l8 = Addr(8 * 64);
        s.access(0, l0, AccessKind::Load);
        s.access(0, l4, AccessKind::Load);
        s.access(0, l8, AccessKind::Load); // set 0 full: victim must be l0
        assert!(!s.l1_contains(0, l0.line()));
        assert!(s.l1_contains(0, l4.line()));
        assert!(s.l1_contains(0, l8.line()));
    }

    // --- watch-set table mechanics ---

    #[test]
    fn watch_set_survives_growth_past_initial_capacity() {
        let mut s = sys(2);
        // Register far more watches than the initial slot count; lines are
        // spread across the address space so probing and growth both run.
        for i in 0..200u64 {
            s.watch(0, LineId(i * 3 + 1), WatchKind::Read);
        }
        assert_eq!(s.watched_lines(0), 200);
        // Re-registering existing lines must not inflate the count.
        for i in 0..200u64 {
            s.watch(0, LineId(i * 3 + 1), WatchKind::Write);
        }
        assert_eq!(s.watched_lines(0), 200);
        // A remote load now violates (Write watch upheld through growth).
        s.access(1, Addr((7 * 3 + 1) * 64), AccessKind::Load);
        let v = s.violation(0).expect("write watch fires after growth");
        assert_eq!(v.cause, ViolationCause::RemoteRead);
        s.clear_watches(0);
        assert_eq!(s.watched_lines(0), 0);
        assert!(s.violation(0).is_none());
    }

    #[test]
    fn cleared_watches_do_not_resurface_across_generations() {
        let mut s = sys(2);
        s.watch(0, A.line(), WatchKind::Read);
        s.clear_watches(0);
        // The slot still physically holds the stale entry; a remote store
        // must not see it as live.
        s.access(1, A, AccessKind::Store);
        assert!(s.violation(0).is_none(), "stale generation must be dead");
        // Re-watching the same line in the new generation works. Core 0
        // loads first so core 1's copy is demoted to Shared and its next
        // store raises coherence traffic instead of hitting silently.
        s.access(0, A, AccessKind::Load);
        s.watch(0, A.line(), WatchKind::Read);
        assert_eq!(s.watched_lines(0), 1);
        s.access(1, A, AccessKind::Store);
        assert!(s.violation(0).is_some());
    }
}
