//! Set-associative tag store with MESI state and per-sub-block mark bits.
//!
//! This module implements a single cache's bookkeeping; the multi-level
//! protocol (snoops, inclusion, mark-counter effects) lives in
//! [`crate::hierarchy`].

use crate::addr::{LineId, SUBBLOCKS_PER_LINE};
use crate::config::CacheConfig;

/// Number of independent mark-bit filters the hardware provides. The paper
/// implements one but notes "one could support multiple filters
/// concurrently with independent mark bits to enable additional software
/// uses" (§3.1); we provide two, so HASTM can dedicate the second to
/// write-barrier filtering (§5).
pub const NUM_FILTERS: usize = 2;

/// Identifies one of the independent mark-bit filters.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct FilterId(pub u8);

impl FilterId {
    /// The primary filter (the paper's single filter; read barriers).
    pub const READ: FilterId = FilterId(0);
    /// The secondary filter (write-barrier filtering extension).
    pub const WRITE: FilterId = FilterId(1);

    #[inline]
    pub(crate) fn idx(self) -> usize {
        let i = self.0 as usize;
        assert!(i < NUM_FILTERS, "filter {i} out of range");
        i
    }
}

/// MESI coherence state of a resident line. Absent lines are Invalid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: other caches may hold copies.
    Shared,
}

/// One resident cache line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Line {
    /// Which memory line this entry holds.
    pub id: LineId,
    /// Coherence state.
    pub state: Mesi,
    /// One mark bit per 16-byte sub-block per filter (low 4 bits of each
    /// plane used). Always zero in caches that do not implement marking
    /// (the L2, or the whole machine at [`crate::IsaLevel::Default`]).
    pub marks: [u8; NUM_FILTERS],
    /// LRU timestamp (larger = more recently used).
    pub lru: u64,
}

impl Line {
    /// Whether any mark bit of `filter` is set.
    #[inline]
    pub fn is_marked_in(&self, filter: FilterId) -> bool {
        self.marks[filter.idx()] != 0
    }

    /// Whether any mark bit of any filter is set ("marked cache line").
    #[inline]
    pub fn is_marked(&self) -> bool {
        self.marks.iter().any(|&m| m != 0)
    }

    /// Iterates the filters whose mark bits this line carries (the set of
    /// counters a loss of this line bumps).
    #[inline]
    pub fn marked_filters(&self) -> impl Iterator<Item = FilterId> + '_ {
        self.marks
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (m != 0).then_some(FilterId(i as u8)))
    }
}

/// A tag-only set-associative cache with LRU replacement.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            sets: (0..config.sets).map(|_| Vec::new()).collect(),
            config,
            tick: 0,
        }
    }

    #[inline]
    fn set_index(&self, id: LineId) -> usize {
        (id.0 as usize) & (self.config.sets - 1)
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a line without touching LRU state.
    #[inline]
    pub fn peek(&self, id: LineId) -> Option<&Line> {
        self.sets[self.set_index(id)].iter().find(|l| l.id == id)
    }

    /// The set index `id` maps to. LRU order is only ever compared within
    /// one set, which is what makes the speculative scheduler's per-set
    /// conflict granularity exact (see `hierarchy::SpecState`).
    #[inline]
    pub fn set_of(&self, id: LineId) -> usize {
        self.set_index(id)
    }

    /// Looks up a line, refreshing its LRU position on hit.
    #[inline]
    pub fn lookup(&mut self, id: LineId) -> Option<&mut Line> {
        let tick = self.bump();
        let set = self.set_index(id);
        let line = self.sets[set].iter_mut().find(|l| l.id == id)?;
        line.lru = tick;
        Some(line)
    }

    /// Whether the line is resident.
    #[inline]
    pub fn contains(&self, id: LineId) -> bool {
        self.peek(id).is_some()
    }

    /// Inserts `id` in state `state`, returning the victim line evicted to
    /// make room, if the set was full.
    ///
    /// New lines start with all mark bits clear, matching the paper's rule
    /// that "when the processor brings a line into the cache, it clears all
    /// the mark bits for the new line" (§3.1).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the line is already resident (callers
    /// must `lookup` first). Release builds skip the extra set scan: every
    /// caller sits behind a miss path that has just proven non-residency.
    pub fn insert(&mut self, id: LineId, state: Mesi) -> Option<Line> {
        debug_assert!(!self.contains(id), "insert of resident {id}");
        let tick = self.bump();
        let ways = self.config.ways;
        let set = self.set_index(id);
        let set = &mut self.sets[set];
        let victim = if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty full set");
            Some(set.swap_remove(vi))
        } else {
            None
        };
        set.push(Line {
            id,
            state,
            marks: [0; NUM_FILTERS],
            lru: tick,
        });
        victim
    }

    /// Removes a line (snoop invalidation / back-invalidation), returning it
    /// if it was resident.
    pub fn remove(&mut self, id: LineId) -> Option<Line> {
        let set = self.set_index(id);
        let set = &mut self.sets[set];
        let i = set.iter().position(|l| l.id == id)?;
        Some(set.swap_remove(i))
    }

    /// Clears every mark bit of `filter` in the cache and reports how many
    /// lines carried that filter's marks (the `resetmarkall` instruction
    /// clears marks *without* invalidating the lines themselves).
    pub fn clear_all_marks(&mut self, filter: FilterId) -> u64 {
        let mut cleared = 0;
        let f = filter.idx();
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.marks[f] != 0 {
                    cleared += 1;
                    line.marks[f] = 0;
                }
            }
        }
        cleared
    }

    /// Number of resident lines with at least one mark bit set in `filter`.
    pub fn marked_lines(&self, filter: FilterId) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.is_marked_in(filter))
            .count()
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Iterates over resident lines (test/debug aid).
    pub fn iter(&self) -> impl Iterator<Item = &Line> {
        self.sets.iter().flat_map(|s| s.iter())
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

/// Validates a mark mask (low [`SUBBLOCKS_PER_LINE`] bits).
#[inline]
pub fn assert_mark_mask(mask: u8) {
    debug_assert!(
        mask != 0 && mask < (1 << SUBBLOCKS_PER_LINE),
        "invalid mark mask {mask:#b}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig::new(2, 2))
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = tiny();
        assert!(c.insert(LineId(0), Mesi::Exclusive).is_none());
        assert!(c.contains(LineId(0)));
        assert_eq!(c.lookup(LineId(0)).unwrap().state, Mesi::Exclusive);
        assert!(c.lookup(LineId(1)).is_none());
    }

    #[test]
    fn new_lines_start_unmarked() {
        let mut c = tiny();
        c.insert(LineId(4), Mesi::Shared);
        assert_eq!(c.peek(LineId(4)).unwrap().marks, [0; NUM_FILTERS]);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line ids with 2 sets).
        c.insert(LineId(0), Mesi::Exclusive);
        c.insert(LineId(2), Mesi::Exclusive);
        // Touch 0 so 2 becomes LRU.
        c.lookup(LineId(0));
        let victim = c.insert(LineId(4), Mesi::Exclusive).expect("evicts");
        assert_eq!(victim.id, LineId(2));
        assert!(c.contains(LineId(0)));
        assert!(c.contains(LineId(4)));
    }

    #[test]
    fn eviction_carries_marks() {
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Exclusive);
        c.lookup(LineId(0)).unwrap().marks[0] = 0b0101;
        c.insert(LineId(2), Mesi::Exclusive);
        let victim = c.insert(LineId(4), Mesi::Exclusive).expect("evicts");
        assert_eq!(victim.id, LineId(0));
        assert!(victim.is_marked());
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Exclusive);
        c.insert(LineId(1), Mesi::Exclusive);
        c.insert(LineId(3), Mesi::Exclusive);
        // Set 0 still has room.
        assert!(c.insert(LineId(2), Mesi::Exclusive).is_none());
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn remove_returns_line() {
        let mut c = tiny();
        c.insert(LineId(5), Mesi::Modified);
        let l = c.remove(LineId(5)).unwrap();
        assert_eq!(l.state, Mesi::Modified);
        assert!(c.remove(LineId(5)).is_none());
        assert!(!c.contains(LineId(5)));
    }

    #[test]
    fn clear_all_marks_counts_marked_lines_only() {
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Exclusive);
        c.insert(LineId(1), Mesi::Exclusive);
        c.lookup(LineId(1)).unwrap().marks[0] = 0b1111;
        c.lookup(LineId(1)).unwrap().marks[1] = 0b0001;
        assert_eq!(c.marked_lines(FilterId::READ), 1);
        assert_eq!(c.clear_all_marks(FilterId::READ), 1);
        assert_eq!(c.marked_lines(FilterId::READ), 0);
        assert_eq!(c.clear_all_marks(FilterId::READ), 0);
        // The other filter's plane is untouched.
        assert_eq!(c.marked_lines(FilterId::WRITE), 1);
        assert_eq!(c.clear_all_marks(FilterId::WRITE), 1);
        // Lines stay resident.
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    #[should_panic(expected = "insert of resident")]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Shared);
        c.insert(LineId(0), Mesi::Shared);
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Exclusive);
        c.insert(LineId(2), Mesi::Exclusive);
        // Peeking line 0 must not rescue it from being the LRU victim.
        assert!(c.peek(LineId(0)).is_some());
        let victim = c.insert(LineId(4), Mesi::Exclusive).expect("evicts");
        assert_eq!(victim.id, LineId(0));
    }

    #[test]
    fn untouched_lines_evict_in_insertion_order() {
        // Never-touched-again lines carry strictly increasing insert
        // ticks, so replacement falls back to FIFO order — the "LRU tie"
        // case resolves deterministically toward the older resident.
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Exclusive);
        c.insert(LineId(2), Mesi::Exclusive);
        let v1 = c.insert(LineId(4), Mesi::Exclusive).expect("evicts");
        assert_eq!(v1.id, LineId(0));
        let v2 = c.insert(LineId(6), Mesi::Exclusive).expect("evicts");
        assert_eq!(v2.id, LineId(2));
    }

    #[test]
    fn reinserted_line_starts_clean() {
        // Eviction discards mark bits with the line: bringing the same id
        // back in must start with clear marks and the new MESI state.
        let mut c = tiny();
        c.insert(LineId(0), Mesi::Modified);
        c.lookup(LineId(0)).unwrap().marks[0] = 0b0011;
        let evicted = c.remove(LineId(0)).expect("resident");
        assert!(evicted.is_marked());
        c.insert(LineId(0), Mesi::Shared);
        let line = c.peek(LineId(0)).unwrap();
        assert_eq!(line.marks, [0; NUM_FILTERS]);
        assert_eq!(line.state, Mesi::Shared);
    }
}
