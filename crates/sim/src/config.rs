//! Machine, cache, and cost-model configuration.

/// Geometry of one cache level. Line size is fixed at 64 bytes
/// ([`crate::addr::LINE_SIZE`]); only sets and ways are configurable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A cache of `sets` x `ways` 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(sets > 0 && ways > 0, "cache dimensions must be nonzero");
        CacheConfig { sets, ways }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * crate::addr::LINE_SIZE
    }

    /// 32 KiB, 8-way: the paper-era L1 data cache.
    pub fn l1_default() -> Self {
        CacheConfig::new(64, 8)
    }

    /// 2 MiB, 16-way shared L2.
    pub fn l2_default() -> Self {
        CacheConfig::new(2048, 16)
    }
}

/// How fully the mark-bit ISA extension is implemented.
///
/// The paper (§3.3) requires a *default implementation* that keeps installed
/// software functionally correct on processors that do not implement marking:
/// `loadsetmark` degenerates to a load that increments the mark counter,
/// `loadtestmark` always reports the bit clear, and `resetmarkall` only
/// increments the counter. Software then never observes a zero counter after
/// marking anything, so it always falls back to full software validation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum IsaLevel {
    /// Mark bits and the mark counter are fully implemented in the L1.
    #[default]
    Full,
    /// The §3.3 default implementation: no mark state, conservative counter.
    Default,
}

/// Cycle costs charged by the simulator.
///
/// The reproduction is execution-driven, not pipeline-accurate: every
/// simulated instruction costs [`CostModel::tick`] cycles plus, for memory
/// instructions, the latency of the level that services the access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of one instruction (ALU op, branch, address generation)
    /// before ILP amortization.
    pub tick: u64,
    /// Sustained instructions per cycle for straight-line code. The paper
    /// evaluates on an out-of-order IA32 core where barrier ALU sequences
    /// largely overlap with surrounding work ("the STM code sequences are
    /// friendly to out of order execution", §7.3); `Cpu::exec` charges
    /// `instructions / ipc` cycles, while memory latencies and explicit
    /// stalls are charged in full.
    pub ipc: u64,
    /// Extra cycles for an access that hits in the L1.
    pub l1_hit: u64,
    /// Extra cycles for an access serviced by the shared L2 (or by a
    /// cache-to-cache transfer through it).
    pub l2_hit: u64,
    /// Extra cycles for an access serviced by memory.
    pub mem: u64,
    /// Extra cycles to upgrade a Shared line to Modified (invalidation
    /// round-trip).
    pub upgrade: u64,
    /// Extra cycles for the atomic portion of a compare-and-swap.
    pub cas_extra: u64,
    /// Maximum latency a plain store charges the pipeline: stores retire
    /// through the store buffer, so a store miss fills the line off the
    /// critical path (cache-state effects still happen in full). Atomic
    /// RMWs are exempt (they serialize).
    pub store_latency_cap: u64,
    /// Extra *raw* cycles for mark-setting loads beyond the additional
    /// issued µop they already pay (the paper notes `loadsetmark` consumes
    /// a store-queue entry in addition to the load port, §7).
    pub mark_op_extra: u64,
    /// Extra cycles modeling the slower resolution of a conditional branch
    /// that depends on the immediately preceding `loadtestmark` (§7.3 uses
    /// this to explain why cautious mode can be slower than the STM despite
    /// executing fewer instructions).
    pub mark_branch_extra: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tick: 1,
            ipc: 2,
            l1_hit: 1,
            l2_hit: 12,
            mem: 100,
            upgrade: 10,
            cas_extra: 4,
            store_latency_cap: 2,
            mark_op_extra: 0,
            mark_branch_extra: 2,
        }
    }
}

/// How the logical-clock gate *admits* cores, i.e. how much host-side
/// synchronization buys the deterministic interleaving.
///
/// Both modes admit the exact same interleaving — [`GateMode::Quantum`] is
/// provably schedule-identical to [`GateMode::PerOp`] (see
/// `crates/sim/src/machine.rs` and DESIGN.md for the argument) — so every
/// simulated statistic, cycle count, and final memory image is bit-equal
/// between them. `PerOp` is kept as the independently-simple reference
/// implementation that the test suite cross-checks `Quantum` against.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum GateMode {
    /// Reference scheduler: every simulated operation re-enters the gate
    /// (acquire the state lock, check `(clock, core_id)` minimality,
    /// release, hand off). One lock round-trip per operation.
    PerOp,
    /// Run-until-overtaken quantum scheduler: an admitted core computes the
    /// second-smallest competitor `(clock, core_id)` bound once and then
    /// executes operations while *holding* the state lock until its own
    /// clock meets that bound — no other core could have been admitted in
    /// between, so the interleaving is identical to `PerOp` at a fraction
    /// of the host synchronization cost. Under [`SchedulePolicy::Fuzzed`]
    /// the quantum is clamped to a single operation (per-core priority
    /// jitter is re-drawn after every op, so a precomputed bound would go
    /// stale); fuzzed runs therefore behave exactly like `PerOp` plus the
    /// targeted-handoff fast path.
    #[default]
    Quantum,
    /// Optimistic parallel discrete-event scheduler: a core that is *not*
    /// the global minimum may still execute its next operation — without
    /// waiting for its turn — when the operation provably cannot interact
    /// with any other core's pending canonical operation: a pure L1 hit
    /// (load on any resident state; store/RMW on an Exclusive/Modified
    /// line), or a clock-only op. Each speculative op records a per-(core,
    /// L1-set) high-water clock; every canonical remote cache mutation
    /// (downgrade, invalidation, inclusive back-invalidation) checks the
    /// victim set's high-water mark against its own `(clock, core)` and
    /// *taints* the run if a speculative op may have observed cache state
    /// out of canonical order. A tainted run completes (it is still a
    /// valid execution of *some* legal schedule — every op is atomic under
    /// the state lock) but its output must be discarded and the workload
    /// re-run under [`GateMode::Quantum`]; a certified (untainted) run is
    /// bit-identical to `Quantum` by construction. Speculation clamps off
    /// — degenerating to per-op `Quantum` gating — whenever the schedule
    /// is dynamic ([`SchedulePolicy::Fuzzed`] / [`SchedulePolicy::Pct`],
    /// preemptions, faults) or when tracing / schedule recording /
    /// `trace_addr` is armed, for the same reason those clamp the quantum:
    /// side channels must observe the per-op global order.
    Speculative,
}

/// How the deterministic logical-clock gate orders the cores.
///
/// Both policies are fully deterministic and replayable: given the same
/// configuration (including the fuzz seed), every run produces the same
/// interleaving, cache state, and statistics. [`SchedulePolicy::Fuzzed`]
/// exists so a test harness can *explore* many legal-but-adversarial
/// interleavings and pressure patterns from a single replayable `u64`,
/// rather than only ever seeing the one canonical schedule.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The paper-faithful baseline: the core with the smallest
    /// `(clock, core_id)` pair executes next. Bit-identical to the
    /// simulator's historical behavior.
    #[default]
    Deterministic,
    /// Seeded schedule perturbation: each core's gate priority carries a
    /// bounded jitter term that is re-drawn (from a PRNG seeded by `seed`)
    /// after every operation the core completes, so cores with nearby
    /// clocks interleave in seed-dependent orders. The same PRNG also
    /// injects cache pressure — spurious L1 evictions and inclusive-L2
    /// back-invalidations — which exercises the paper's §7.4
    /// marked-line-loss paths (mark-counter bumps, watch violations) far
    /// more often than organic capacity misses would.
    Fuzzed {
        /// Replay seed: two machines built with the same configuration and
        /// seed produce identical runs.
        seed: u64,
    },
    /// Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010):
    /// each core gets a random distinct priority rank, the highest-priority
    /// active core runs exclusively, and `depth - 1` *priority-change
    /// points* are placed at random global op indices — when the running
    /// core crosses one, it is demoted below every other core. A bug of
    /// depth *d* (one needing *d* ordering constraints) is found with
    /// probability at least `1 / (n · k^(d-1))` per run, so directed search
    /// replaces [`SchedulePolicy::Fuzzed`]'s uniform luck. Change points
    /// are drawn uniformly from `0..PCT_CHANGE_HORIZON` gated ops; like
    /// `Fuzzed`, the quantum gate clamps to one op under this policy.
    Pct {
        /// Replay seed for the rank permutation and change points.
        seed: u64,
        /// Bug depth `d` to target; `d - 1` change points are scheduled.
        depth: u32,
    },
}

/// A schedule-steering directive: from global gated-op index `at_op`
/// onward, `core` is *favored* — it runs exclusively (while active) until
/// the next directive takes effect. A sorted list of these forms an
/// explicit preemption trace, the replayable unit the bounded-exhaustive
/// explorer enumerates and the trace shrinker minimizes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Preemption {
    /// Global gated-op index (across all cores) at which the switch fires.
    pub at_op: u64,
    /// Core favored from that point on.
    pub core: usize,
}

/// What a [`FaultEvent`] does when it fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Evict the `nth` (modulo occupancy) resident line from `core`'s L1 —
    /// the paper's §7.4 marked-line-loss path: mark-counter bumps and
    /// eviction-cause watch violations, driving aggressive→cautious
    /// fallback.
    EvictL1 {
        /// Index into the core's resident lines, wrapped modulo occupancy.
        nth: usize,
    },
    /// Evict the `nth` (modulo occupancy) L2 line; with an inclusive L2
    /// this back-invalidates every L1 copy (capacity pressure). The `core`
    /// field of the event is ignored.
    BackInvalidate {
        /// Index into the L2's resident lines, wrapped modulo occupancy.
        nth: usize,
    },
    /// Raise a spurious watch violation on `core`: the next violation
    /// check observes [`crate::hierarchy::ViolationCause::Spurious`], which
    /// HTM layers surface as a spurious transactional abort (interrupts,
    /// TLB shootdowns — abort causes real HTMs have and the paper's
    /// fallback path must tolerate).
    SpuriousAbort,
}

/// A scheduled fault: when the global gated-op counter reaches `at_op`,
/// apply `kind` to `core`. Events fire in order and each fires once;
/// multiple events may share an `at_op`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// Global gated-op index at which the fault fires.
    pub at_op: u64,
    /// Target core (ignored by [`FaultKind::BackInvalidate`]).
    pub core: usize,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (each with a private L1).
    pub cores: usize,
    /// Per-core L1 geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Whether the L2 is inclusive of the L1s. Inclusive hierarchies
    /// back-invalidate L1 lines on L2 eviction, which is one of the paper's
    /// sources of "accidental" marked-line loss in multi-core runs (§7.4).
    pub inclusive_l2: bool,
    /// ISA implementation level.
    pub isa: IsaLevel,
    /// Enable a next-line hardware prefetcher: every demand L1 miss also
    /// fills the following line. Prefetch pollution is one of the paper's
    /// sources of accidental marked-line eviction in multi-core runs
    /// ("prefetches and speculative accesses from one core kick out marked
    /// cache lines from another core", §7.4).
    pub prefetch_next_line: bool,
    /// Cycle costs.
    pub cost: CostModel,
    /// Scheduler policy: canonical deterministic order, or seeded
    /// schedule/pressure perturbation (see [`SchedulePolicy`]).
    pub schedule: SchedulePolicy,
    /// Gate admission strategy: per-op reference gating or run-until-
    /// overtaken quantum gating (see [`GateMode`]). Schedule-identical;
    /// only host-side synchronization cost differs.
    pub gate: GateMode,
    /// Debug trace address: every store/CAS touching this simulated
    /// address is logged to stderr with the core and logical clock.
    pub trace_addr: Option<u64>,
    /// Explicit preemption trace (must be sorted by `at_op`): schedule
    /// directives that favor a chosen core from a chosen global op index.
    /// Empty means no steering. Composes with any [`SchedulePolicy`]; while
    /// a directive is in force it overrides the policy's priorities.
    pub preemptions: Vec<Preemption>,
    /// Fault-injection plan (must be sorted by `at_op`): forced evictions,
    /// back-invalidations, and spurious aborts at chosen op indices. Empty
    /// means no injected faults.
    pub faults: Vec<FaultEvent>,
    /// Record the per-op schedule log (admitted core + touched line per
    /// gated op) during runs, retrievable via `Machine::take_schedule_log`.
    /// Off by default; the explorer uses it to find conflict ops and to
    /// fingerprint schedules.
    pub record_schedule: bool,
    /// Speculation window for [`GateMode::Speculative`]: a core may run
    /// ahead speculatively only while its clock is within this many cycles
    /// of the smallest competitor clock. A small window bounds how much
    /// work a taint can waste; a large one maximizes overlap. Ignored by
    /// the other gate modes.
    pub spec_window: u64,
    /// Test hook: force a speculation taint when the global gated-op
    /// counter reaches this index (as if a conflict had been detected).
    /// Used by the equivalence suite to prove the discard-and-re-run path
    /// double-counts nothing. `None` (the default) never fires.
    pub spec_taint_at: Option<u64>,
    /// Structured event tracing (see [`crate::trace`]). `None` (the
    /// default) records nothing and keeps every emission site a single
    /// never-taken branch: disabled runs are allocation-free and
    /// bit-identical to a build without the tracing layer. Also armed and
    /// harvested at run time via `Machine::set_tracing` /
    /// `Machine::take_trace`.
    pub trace: Option<crate::trace::TraceConfig>,
}

impl MachineConfig {
    /// A machine with `cores` cores and paper-era default caches.
    pub fn with_cores(cores: usize) -> Self {
        MachineConfig {
            cores,
            ..Self::default()
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 1,
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            inclusive_l2: true,
            isa: IsaLevel::Full,
            prefetch_next_line: false,
            cost: CostModel::default(),
            schedule: SchedulePolicy::default(),
            gate: GateMode::default(),
            trace_addr: None,
            preemptions: Vec::new(),
            faults: Vec::new(),
            record_schedule: false,
            spec_window: SPEC_WINDOW_DEFAULT,
            spec_taint_at: None,
            trace: None,
        }
    }
}

/// Default [`MachineConfig::spec_window`]: wide enough that a core can
/// speculate through a whole miss-latency's worth of competitor stall
/// (hundreds of ops) without being large enough to let one core race
/// arbitrarily far ahead of a stuck peer.
pub const SPEC_WINDOW_DEFAULT: u64 = 16_384;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        assert_eq!(CacheConfig::l1_default().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_default().capacity_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(3, 4);
    }

    #[test]
    fn defaults() {
        let m = MachineConfig::default();
        assert_eq!(m.cores, 1);
        assert_eq!(m.isa, IsaLevel::Full);
        assert!(m.inclusive_l2);
        assert_eq!(m.schedule, SchedulePolicy::Deterministic);
        assert_eq!(m.gate, GateMode::Quantum);
        assert_eq!(m.trace_addr, None);
        let m4 = MachineConfig::with_cores(4);
        assert_eq!(m4.cores, 4);
        assert_eq!(m4.l1, CacheConfig::l1_default());
    }

    #[test]
    fn schedule_policies_compare() {
        assert_ne!(
            SchedulePolicy::Deterministic,
            SchedulePolicy::Fuzzed { seed: 0 }
        );
        assert_ne!(
            SchedulePolicy::Fuzzed { seed: 1 },
            SchedulePolicy::Fuzzed { seed: 2 }
        );
        assert_ne!(
            SchedulePolicy::Pct { seed: 1, depth: 2 },
            SchedulePolicy::Pct { seed: 1, depth: 3 }
        );
        assert_ne!(
            SchedulePolicy::Pct { seed: 0, depth: 2 },
            SchedulePolicy::Fuzzed { seed: 0 }
        );
    }

    #[test]
    fn exploration_config_defaults_are_empty() {
        let m = MachineConfig::default();
        assert!(m.preemptions.is_empty());
        assert!(m.faults.is_empty());
        assert!(!m.record_schedule);
    }
}
