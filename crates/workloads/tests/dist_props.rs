//! Property tests for the OLTP traffic mill's samplers: Zipfian key skew,
//! read/write mix, the transaction-size tail, and per-seed determinism.
//!
//! The assertions are statistical where the property is statistical (rank
//! frequencies, mix ratios) and exact where the generator makes an exact
//! promise (zero-sum deltas, distinct keys, bit-exact replay). Streams are
//! sized so the statistical bounds hold with wide margin — these are
//! generator-shape checks, not hypothesis tests.

use hastm_workloads::oltp::{thread_txns, OltpConfig, Zipf, HTM_OVERFLOW_KEYS};
use proptest::prelude::*;

/// A mill config drawn from the interesting corner of parameter space.
fn small_cfg(seed: u64, theta_milli: u32, read_pct: u32, large_pct: u32) -> OltpConfig {
    OltpConfig {
        threads: 2,
        txns_per_thread: 600,
        accounts: 32,
        zipf_theta: theta_milli as f64 / 1000.0,
        read_pct,
        txn_keys: 4,
        large_txn_pct: large_pct,
        large_txn_keys: 12,
        flash_phases: 1,
        mean_arrival_gap: 100,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Zipfian rank frequencies are monotonically non-increasing in rank
    /// (up to sampling noise, absorbed by bucketing adjacent ranks) and
    /// the skew is real: the hottest bucket beats the coldest.
    #[test]
    fn zipf_rank_frequency_is_monotone(seed in 0u64..1_000, theta_milli in 600u32..1_400) {
        let n = 32u32;
        let zipf = Zipf::new(n, theta_milli as f64 / 1000.0);
        let mut counts = vec![0u64; n as usize];
        // Drive the sampler with a deterministic low-discrepancy sweep of
        // [0,1): exact CDF coverage, no sampling noise beyond rounding.
        let samples = 64 * n as u64;
        for i in 0..samples {
            let u = (i as f64 + (seed % 97) as f64 / 97.0) / samples as f64;
            counts[zipf.sample(u) as usize] += 1;
        }
        // Bucket ranks in fours: counts within a bucket may tie or jitter,
        // but bucket sums must never increase with rank.
        let buckets: Vec<u64> = counts.chunks(4).map(|c| c.iter().sum()).collect();
        for w in buckets.windows(2) {
            prop_assert!(
                w[0] >= w[1],
                "rank-frequency must be non-increasing: buckets {:?}",
                buckets
            );
        }
        prop_assert!(
            buckets[0] > *buckets.last().unwrap(),
            "theta {} must produce real skew: {:?}",
            theta_milli as f64 / 1000.0,
            buckets
        );
    }

    /// The realized read-only fraction tracks `read_pct` within ±5 points
    /// over a 1200-transaction stream.
    #[test]
    fn read_write_mix_matches_configuration(seed in 0u64..1_000, read_pct in 10u32..90) {
        let cfg = small_cfg(seed, 900, read_pct, 0);
        let mut total = 0u64;
        let mut reads = 0u64;
        for tid in 0..cfg.threads {
            for txn in thread_txns(&cfg, tid) {
                total += 1;
                reads += txn.is_read_only() as u64;
            }
        }
        let realized = 100.0 * reads as f64 / total as f64;
        prop_assert!(
            (realized - read_pct as f64).abs() <= 5.0,
            "configured {read_pct}% read-only, realized {realized:.1}% over {total} txns"
        );
    }

    /// The size distribution has the configured rare-large tail, and the
    /// tail is big enough to overflow HTM capacity: large transactions
    /// touch `large_txn_keys` distinct accounts (one cache line each).
    #[test]
    fn txn_size_tail_hits_the_htm_overflow_bucket(seed in 0u64..1_000) {
        let mut cfg = small_cfg(seed, 900, 25, 4);
        cfg.accounts = 2 * HTM_OVERFLOW_KEYS;
        cfg.large_txn_keys = HTM_OVERFLOW_KEYS;
        let mut total = 0u64;
        let mut overflow = 0u64;
        for tid in 0..cfg.threads {
            for txn in thread_txns(&cfg, tid) {
                total += 1;
                prop_assert!(txn.keys.len() <= HTM_OVERFLOW_KEYS as usize);
                // Keys are distinct within a transaction — each one is a
                // separate line in the HTM read/write set.
                let mut sorted = txn.keys.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), txn.keys.len(), "duplicate keys in a txn");
                overflow += (txn.keys.len() as u32 == HTM_OVERFLOW_KEYS) as u64;
            }
        }
        let realized = 100.0 * overflow as f64 / total as f64;
        // Configured 4%: accept [1.5%, 8%] over 1200 txns.
        prop_assert!(
            (1.5..=8.0).contains(&realized),
            "overflow tail configured at 4%, realized {realized:.1}%"
        );
    }

    /// Transfers are exactly zero-sum (the ledger invariant the
    /// differential harness checks is a property of every single txn, not
    /// just of the aggregate), and arrivals are non-decreasing (open-loop
    /// schedule).
    #[test]
    fn transfers_are_zero_sum_and_arrivals_ordered(seed in 0u64..1_000) {
        let cfg = small_cfg(seed, 1_100, 40, 10);
        for tid in 0..cfg.threads {
            let mut last_arrival = 0u64;
            for txn in thread_txns(&cfg, tid) {
                prop_assert!(txn.arrival >= last_arrival);
                last_arrival = txn.arrival;
                let sum = txn.deltas.iter().fold(0i64, |a, &d| a.wrapping_add(d));
                prop_assert_eq!(sum, 0, "deltas must be zero-sum: {:?}", txn.deltas);
                if txn.is_read_only() {
                    prop_assert!(txn.deltas.iter().all(|&d| d == 0));
                }
            }
        }
    }

    /// Bit-exact determinism: the same seed yields the same stream twice,
    /// and different seeds yield different streams.
    #[test]
    fn streams_are_bit_exact_per_seed(seed in 0u64..1_000) {
        let cfg = small_cfg(seed, 900, 30, 5);
        for tid in 0..cfg.threads {
            prop_assert_eq!(thread_txns(&cfg, tid), thread_txns(&cfg, tid));
        }
        let other = OltpConfig { seed: seed ^ 0xdead_beef, ..cfg.clone() };
        prop_assert_ne!(thread_txns(&cfg, 0), thread_txns(&other, 0));
    }
}
