//! Latency-reconciliation property: the mill's per-transaction latency
//! accounting must agree with the trace-event timelines for the same seed.
//!
//! The mill computes each transaction's completion stamp with a `clock()`
//! read immediately after the atomic section returns; the tracer stamps
//! `TxnCommit` inside the commit sequence. Nothing charges simulated
//! cycles between the two, so on trace-enabled simulator runs the mill's
//! `ends` must equal the per-core `TxnCommit` stamps *exactly* — and the
//! serving percentiles (p50/p99) recomputed from the trace must equal the
//! mill's own. This extends the PR 5 trace golden tests from "the trace is
//! internally consistent" to "the trace grounds the serving metrics".

use hastm::{Granularity, LatencyStats};
use hastm_sim::{TraceConfig, TraceEvent};
use hastm_workloads::oltp::{thread_txns, OltpConfig, OltpSimConfig};
use hastm_workloads::{run_oltp_sim, Scheme};

fn traced_run(seed: u64, scheme: Scheme) -> (hastm_workloads::OltpSimResult, OltpConfig) {
    let oltp = OltpConfig {
        seed,
        ..OltpConfig::quick(3)
    };
    let mut cfg = OltpSimConfig::new(oltp.clone(), scheme, Granularity::Object);
    cfg.trace = Some(TraceConfig::default());
    (run_oltp_sim(&cfg), oltp)
}

/// Commit stamps from the trace, per core, in commit order.
fn commit_stamps(trace: &hastm_sim::TraceLog) -> Vec<Vec<u64>> {
    trace
        .per_core
        .iter()
        .map(|events| {
            events
                .iter()
                .filter(|e| matches!(e.ev, TraceEvent::TxnCommit))
                .map(|e| e.cycle)
                .collect()
        })
        .collect()
}

#[test]
fn mill_ends_equal_trace_commit_stamps_exactly() {
    for seed in [0u64, 7, 0x5eed] {
        for scheme in [Scheme::Stm, Scheme::Hastm] {
            let (r, _) = traced_run(seed, scheme);
            let trace = r.trace.as_ref().expect("tracing was armed");
            assert!(
                !trace.dropped_any(),
                "trace ring overflowed; grow per_core_capacity"
            );
            let stamps = commit_stamps(trace);
            for (tid, mill) in r.per_thread.iter().enumerate() {
                assert_eq!(
                    mill.ends, stamps[tid],
                    "{scheme:?} seed {seed} core {tid}: mill completion stamps \
                     must equal the TxnCommit trace stamps"
                );
            }
        }
    }
}

#[test]
fn percentiles_recomputed_from_the_trace_agree() {
    for seed in [1u64, 42] {
        let (r, oltp) = traced_run(seed, Scheme::Stm);
        let trace = r.trace.as_ref().expect("tracing was armed");
        assert!(!trace.dropped_any());
        let stamps = commit_stamps(trace);
        // Rebuild the open-loop latency samples from scratch: the arrival
        // schedule from the seeded generator, the completion stamps from
        // the trace, the epoch from the mill result.
        let mut rebuilt = LatencyStats::default();
        for (tid, mill) in r.per_thread.iter().enumerate() {
            let txns = thread_txns(&oltp, tid);
            assert_eq!(stamps[tid].len(), txns.len());
            for (txn, &end) in txns.iter().zip(&stamps[tid]) {
                rebuilt.record(end.saturating_sub(mill.epoch + txn.arrival));
            }
        }
        assert_eq!(rebuilt.count(), r.metrics.latency.count());
        assert_eq!(rebuilt.quantile(0.50), r.metrics.p50(), "seed {seed}: p50");
        assert_eq!(rebuilt.quantile(0.99), r.metrics.p99(), "seed {seed}: p99");
        assert_eq!(rebuilt.max(), r.metrics.latency.max());
    }
}

#[test]
fn latency_is_deterministic_per_seed_and_sensitive_to_seed() {
    let (a, _) = traced_run(9, Scheme::Stm);
    let (b, _) = traced_run(9, Scheme::Stm);
    assert_eq!(a.metrics.latency, b.metrics.latency);
    assert_eq!(a.per_thread, b.per_thread);
    let (c, _) = traced_run(10, Scheme::Stm);
    assert_ne!(
        a.per_thread, c.per_thread,
        "different seeds must yield different timelines"
    );
}
