//! A binary search tree with rotations (a treap) over simulated memory.
//!
//! The paper's BST workload rebalances with rotations, which is why its
//! lock-based version must lock the root ("the locking algorithm for the
//! BST locks the root to handle tree rotations; thus the locking approach
//! does not scale at all", §7.4) while the TM versions detect conflicts
//! only on the nodes actually touched. A treap reproduces this shape:
//! every insert/remove may rotate near the top of the tree, and the tree
//! stays probabilistically balanced, giving the moderate (~38 %) cache
//! reuse the paper reports for the BST.
//!
//! Node layout: `[key, value, priority, left, right]`.

use hastm::{ObjRef, TmContext, TxResult};
use hastm_sim::Addr;

use crate::map::TxMap;

const KEY: u32 = 0;
const VALUE: u32 = 1;
const PRIO: u32 = 2;
const LEFT: u32 = 3;
const RIGHT: u32 = 4;

/// A treap keyed by `u64`, with priorities derived deterministically from
/// keys (so runs are reproducible).
#[derive(Copy, Clone, Debug)]
pub struct Bst {
    /// Holder object whose word 0 is the root pointer.
    root_holder: ObjRef,
}

fn priority(key: u64) -> u64 {
    // splitmix64: uniform, deterministic per key.
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn as_ref(word: u64) -> ObjRef {
    ObjRef(Addr(word))
}

impl Bst {
    /// Creates an empty tree.
    pub fn create(ctx: &mut dyn TmContext) -> Self {
        Bst {
            root_holder: ctx.ctx_alloc(1),
        }
    }

    fn alloc_node(ctx: &mut dyn TmContext, key: u64, value: u64) -> TxResult<ObjRef> {
        let node = ctx.ctx_alloc(5);
        ctx.ctx_write(node, KEY, key)?;
        ctx.ctx_write(node, VALUE, value)?;
        ctx.ctx_write(node, PRIO, priority(key))?;
        // LEFT/RIGHT start null (fresh memory is zero).
        Ok(node)
    }

    /// Inserts into the subtree rooted at `node`; returns the new subtree
    /// root and whether a key was added.
    fn insert_at(
        ctx: &mut dyn TmContext,
        node: ObjRef,
        key: u64,
        value: u64,
    ) -> TxResult<(ObjRef, bool)> {
        if node.is_null() {
            return Ok((Self::alloc_node(ctx, key, value)?, true));
        }
        ctx.ctx_work(6); // compare chain + rotation checks per level
        let nkey = ctx.ctx_read(node, KEY)?;
        if key == nkey {
            ctx.ctx_write(node, VALUE, value)?;
            return Ok((node, false));
        }
        if key < nkey {
            let left = as_ref(ctx.ctx_read(node, LEFT)?);
            let (new_left, added) = Self::insert_at(ctx, left, key, value)?;
            ctx.ctx_write(node, LEFT, new_left.0 .0)?;
            // Rotate right if the child's priority beats ours (heap order).
            if ctx.ctx_read(new_left, PRIO)? > ctx.ctx_read(node, PRIO)? {
                let lr = ctx.ctx_read(new_left, RIGHT)?;
                ctx.ctx_write(node, LEFT, lr)?;
                ctx.ctx_write(new_left, RIGHT, node.0 .0)?;
                return Ok((new_left, added));
            }
            Ok((node, added))
        } else {
            let right = as_ref(ctx.ctx_read(node, RIGHT)?);
            let (new_right, added) = Self::insert_at(ctx, right, key, value)?;
            ctx.ctx_write(node, RIGHT, new_right.0 .0)?;
            if ctx.ctx_read(new_right, PRIO)? > ctx.ctx_read(node, PRIO)? {
                let rl = ctx.ctx_read(new_right, LEFT)?;
                ctx.ctx_write(node, RIGHT, rl)?;
                ctx.ctx_write(new_right, LEFT, node.0 .0)?;
                return Ok((new_right, added));
            }
            Ok((node, added))
        }
    }

    /// Merges two treaps where every key in `a` precedes every key in `b`.
    fn merge(ctx: &mut dyn TmContext, a: ObjRef, b: ObjRef) -> TxResult<ObjRef> {
        if a.is_null() {
            return Ok(b);
        }
        if b.is_null() {
            return Ok(a);
        }
        if ctx.ctx_read(a, PRIO)? > ctx.ctx_read(b, PRIO)? {
            let ar = as_ref(ctx.ctx_read(a, RIGHT)?);
            let merged = Self::merge(ctx, ar, b)?;
            ctx.ctx_write(a, RIGHT, merged.0 .0)?;
            Ok(a)
        } else {
            let bl = as_ref(ctx.ctx_read(b, LEFT)?);
            let merged = Self::merge(ctx, a, bl)?;
            ctx.ctx_write(b, LEFT, merged.0 .0)?;
            Ok(b)
        }
    }

    /// Removes `key` from the subtree at `node`; returns the new subtree
    /// root and whether the key was found.
    fn remove_at(ctx: &mut dyn TmContext, node: ObjRef, key: u64) -> TxResult<(ObjRef, bool)> {
        if node.is_null() {
            return Ok((ObjRef::NULL, false));
        }
        ctx.ctx_work(6);
        let nkey = ctx.ctx_read(node, KEY)?;
        if key == nkey {
            let l = as_ref(ctx.ctx_read(node, LEFT)?);
            let r = as_ref(ctx.ctx_read(node, RIGHT)?);
            let merged = Self::merge(ctx, l, r)?;
            return Ok((merged, true));
        }
        let slot = if key < nkey { LEFT } else { RIGHT };
        let child = as_ref(ctx.ctx_read(node, slot)?);
        let (new_child, removed) = Self::remove_at(ctx, child, key)?;
        if removed {
            ctx.ctx_write(node, slot, new_child.0 .0)?;
        }
        Ok((node, removed))
    }

    fn count(ctx: &mut dyn TmContext, node: ObjRef) -> TxResult<u64> {
        if node.is_null() {
            return Ok(0);
        }
        let l = as_ref(ctx.ctx_read(node, LEFT)?);
        let r = as_ref(ctx.ctx_read(node, RIGHT)?);
        Ok(1 + Self::count(ctx, l)? + Self::count(ctx, r)?)
    }

    /// Verifies BST key order and heap priority order; returns the node
    /// count. Structural-invariant check used by tests.
    pub fn check_invariants(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        fn walk(
            ctx: &mut dyn TmContext,
            node: ObjRef,
            lo: Option<u64>,
            hi: Option<u64>,
            max_prio: u64,
        ) -> TxResult<u64> {
            if node.is_null() {
                return Ok(0);
            }
            let key = ctx.ctx_read(node, KEY)?;
            let prio = ctx.ctx_read(node, PRIO)?;
            assert!(lo.is_none_or(|lo| key > lo), "key order violated (low)");
            assert!(hi.is_none_or(|hi| key < hi), "key order violated (high)");
            assert!(prio <= max_prio, "heap order violated");
            let l = as_ref(ctx.ctx_read(node, LEFT)?);
            let r = as_ref(ctx.ctx_read(node, RIGHT)?);
            let lc = walk(ctx, l, lo, Some(key), prio)?;
            let rc = walk(ctx, r, Some(key), hi, prio)?;
            Ok(1 + lc + rc)
        }
        let root = as_ref(ctx.ctx_read(self.root_holder, 0)?);
        walk(ctx, root, None, None, u64::MAX)
    }
}

impl TxMap for Bst {
    fn insert(&self, ctx: &mut dyn TmContext, key: u64, value: u64) -> TxResult<bool> {
        let root = as_ref(ctx.ctx_read(self.root_holder, 0)?);
        let (new_root, added) = Self::insert_at(ctx, root, key, value)?;
        if new_root != root {
            ctx.ctx_write(self.root_holder, 0, new_root.0 .0)?;
        }
        Ok(added)
    }

    fn remove(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<bool> {
        let root = as_ref(ctx.ctx_read(self.root_holder, 0)?);
        let (new_root, removed) = Self::remove_at(ctx, root, key)?;
        if removed && new_root != root {
            ctx.ctx_write(self.root_holder, 0, new_root.0 .0)?;
        }
        Ok(removed)
    }

    fn get(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<Option<u64>> {
        let mut node = as_ref(ctx.ctx_read(self.root_holder, 0)?);
        let mut hops = 0u32;
        while !node.is_null() {
            ctx.ctx_work(6); // compare + branch per level
            let nkey = ctx.ctx_read(node, KEY)?;
            if key == nkey {
                return Ok(Some(ctx.ctx_read(node, VALUE)?));
            }
            node = as_ref(ctx.ctx_read(node, if key < nkey { LEFT } else { RIGHT })?);
            hops += 1;
            if hops.is_multiple_of(64) {
                // A descent this deep suggests a zombie snapshot; bound it.
                ctx.ctx_guard()?;
            }
        }
        Ok(None)
    }

    fn len(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        let root = as_ref(ctx.ctx_read(self.root_holder, 0)?);
        Self::count(ctx, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::check_against_reference;
    use hastm::{Granularity, StmConfig, StmRuntime, TxThread};
    use hastm_sim::{Machine, MachineConfig};

    fn with_tree<R: Send>(
        config: StmConfig,
        f: impl FnOnce(&mut TxThread<'_, '_>, Bst) -> R + Send,
    ) -> R {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let tree = tx.atomic(|tx| Ok(Bst::create(tx)));
            f(&mut tx, tree)
        })
        .0
    }

    #[test]
    fn insert_get_remove() {
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            tx.atomic(|tx| {
                for k in [5u64, 3, 8, 1, 4, 7, 9, 2, 6] {
                    assert!(t.insert(tx, k, k * 10)?);
                }
                assert_eq!(t.len(tx)?, 9);
                for k in 1..=9u64 {
                    assert_eq!(t.get(tx, k)?, Some(k * 10));
                }
                assert!(t.remove(tx, 5)?);
                assert!(!t.remove(tx, 5)?);
                assert_eq!(t.get(tx, 5)?, None);
                assert_eq!(t.len(tx)?, 8);
                t.check_invariants(tx)?;
                Ok(())
            });
        });
    }

    #[test]
    fn sorted_insertion_stays_balanced() {
        // Priorities rebalance even adversarial (sorted) insertion order;
        // a plain BST would degenerate to a 256-deep list and the lookup
        // below would trip the zombie guard's depth assertions.
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            tx.atomic(|tx| {
                for k in 0..256u64 {
                    t.insert(tx, k, k)?;
                }
                let n = t.check_invariants(tx)?;
                assert_eq!(n, 256);
                for k in (0..256u64).step_by(17) {
                    assert_eq!(t.get(tx, k)?, Some(k));
                }
                Ok(())
            });
        });
    }

    #[test]
    fn matches_reference_model() {
        for cfg in [
            StmConfig::stm(Granularity::CacheLine),
            StmConfig::hastm_cautious(Granularity::Object),
        ] {
            with_tree(cfg, |tx, t| {
                let mut x = 7u64;
                let ops: Vec<(u8, u64)> = (0..400)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        ((x >> 8) as u8, x % 64)
                    })
                    .collect();
                tx.atomic(|tx| {
                    check_against_reference(&t, tx, &ops);
                    t.check_invariants(tx)?;
                    Ok(())
                });
            });
        }
    }

    #[test]
    fn remove_all_leaves_empty_tree() {
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            tx.atomic(|tx| {
                for k in 0..40u64 {
                    t.insert(tx, k, k)?;
                }
                for k in 0..40u64 {
                    assert!(t.remove(tx, k)?, "remove {k}");
                }
                assert!(t.is_empty(tx)?);
                Ok(())
            });
        });
    }
}
