//! Deterministic OLTP traffic mill: a seeded bank/key-value workload with
//! Zipfian key skew, a configurable read/write mix, a transaction-size
//! distribution with a rare large-transaction tail that overflows HTM
//! capacity, hot-key flash-crowd phases, and **open-loop** arrivals with
//! per-transaction latency accounting.
//!
//! The mill is written once against the [`hastm::TmExec`] seam and runs
//! unchanged on every simulator scheme (via [`ThreadExec`]) and on the
//! native TL2 backend (via [`hastm_native::NativeExec`]); the clock unit
//! is simulated cycles on the former and host nanoseconds on the latter.
//!
//! ## The ledger invariant
//!
//! Every update transaction applies *fixed, pre-seeded* wrapping deltas to
//! its keys (summing to zero per transaction), so the final balance of
//! each account is `initial + Σ deltas` — **independent of interleaving**
//! even under genuine cross-thread contention. That closed form
//! ([`expected_balances`]) is what the differential checker compares both
//! backends against: any divergence is a real atomicity/opacity bug, not
//! schedule noise. Total balance is conserved as a second, coarser check.
//!
//! ## Serving metrics
//!
//! Arrivals are open-loop: each thread's transactions are stamped with
//! seeded inter-arrival gaps up front, and the mill holds each transaction
//! until its arrival tick ([`hastm::TmExec::idle_until`]) — or starts it
//! immediately when the thread is already behind, so queueing delay counts
//! toward latency exactly as it would in a served system. [`OltpMetrics`]
//! reports p50/p99 latency, goodput, and abort-retry amplification.

use std::sync::Mutex;
use std::time::Instant;

use hastm::{
    Granularity, LatencyStats, MetricsSnapshot, ObjRef, OracleMode, StmRuntime, TmExec, TxnStats,
};
use hastm_locks::SpinLock;
use hastm_native::{NativeConfig, NativeExec, NativeRuntime, NativeStats};
use hastm_sim::{
    FaultEvent, GateMode, Machine, MachineConfig, Preemption, SpecOutcome, TraceConfig, TraceLog,
    WorkerFn,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scheme::{Scheme, ThreadExec};

/// Payload words per account object. Eight words plus the object header
/// exceed one 64-byte cache line, so every account occupies its own line
/// and a transaction touching `k` distinct accounts touches at least `k`
/// lines — which is what lets the large-transaction tail genuinely
/// overflow HTM read/write-set capacity.
pub const ACCOUNT_WORDS: u32 = 8;

/// Distinct keys in a tail ("large") transaction under
/// [`OltpConfig::paper_default`]: enough lines to overflow the simulated
/// L1's per-set associativity with near certainty, forcing
/// `HtmAbort::Capacity` on the HyTM hardware path and the software
/// fallback the paper's §7 argues for.
pub const HTM_OVERFLOW_KEYS: u32 = 64;

/// Parameters of the traffic mill. All randomness derives from `seed`;
/// two generations with the same config are bit-identical.
#[derive(Clone, Debug, PartialEq)]
pub struct OltpConfig {
    /// Worker threads (simulated cores or host threads).
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: u64,
    /// Bank accounts (keys).
    pub accounts: u32,
    /// Zipfian skew θ; 0 is uniform, ≥1 is heavily skewed.
    pub zipf_theta: f64,
    /// Percent of transactions that are read-only balance sweeps.
    pub read_pct: u32,
    /// Ordinary transactions touch `1..=txn_keys` distinct keys.
    pub txn_keys: u32,
    /// Percent of transactions drawn from the large tail.
    pub large_txn_pct: u32,
    /// Distinct keys in a tail transaction (HTM-overflow bucket).
    pub large_txn_keys: u32,
    /// Flash-crowd phases: the stream is cut into this many equal spans,
    /// each rotating the Zipf head to a different hot key.
    pub flash_phases: u32,
    /// Mean open-loop inter-arrival gap in clock units (cycles on the
    /// simulator, nanoseconds on the native backend); gaps are uniform in
    /// `[0, 2 * mean]`.
    pub mean_arrival_gap: u64,
    /// Master seed.
    pub seed: u64,
}

impl OltpConfig {
    /// A small configuration for tests and smoke runs.
    pub fn quick(threads: usize) -> Self {
        OltpConfig {
            threads,
            txns_per_thread: 64,
            accounts: 64,
            zipf_theta: 0.9,
            read_pct: 25,
            txn_keys: 3,
            large_txn_pct: 6,
            large_txn_keys: 16,
            flash_phases: 2,
            mean_arrival_gap: 200,
            seed: 0x017b,
        }
    }

    /// The benchmark-scale configuration: skewed traffic over 256
    /// accounts with a 2% tail of [`HTM_OVERFLOW_KEYS`]-key transactions.
    pub fn paper_default(threads: usize) -> Self {
        OltpConfig {
            threads,
            txns_per_thread: 400,
            accounts: 256,
            zipf_theta: 0.9,
            read_pct: 50,
            txn_keys: 4,
            large_txn_pct: 2,
            large_txn_keys: HTM_OVERFLOW_KEYS,
            flash_phases: 4,
            mean_arrival_gap: 4_000,
            seed: 0x5eed,
        }
    }

    /// Total transactions across all threads.
    pub fn total_txns(&self) -> u64 {
        self.txns_per_thread * self.threads as u64
    }
}

/// One pre-generated transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OltpTxn {
    /// Scheduled arrival, in clock units after the thread's mill epoch.
    pub arrival: u64,
    /// Distinct keys the transaction touches.
    pub keys: Vec<u32>,
    /// Per-key wrapping deltas summing to zero; empty for a read-only
    /// balance sweep.
    pub deltas: Vec<i64>,
}

impl OltpTxn {
    /// Whether this is a read-only balance sweep.
    pub fn is_read_only(&self) -> bool {
        self.deltas.is_empty()
    }
}

/// Zipfian sampler over ranks `0..n` via a precomputed CDF and binary
/// search. `f64` powers are deterministic on a given platform, and every
/// comparison in this repo (sim-vs-native, run-vs-rerun) happens on one
/// platform, so streams are reproducible wherever they are compared.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks at skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut sum = 0.0;
        for rank in 0..n {
            sum += 1.0 / f64::from(rank + 1).powf(theta);
            cdf.push(sum);
        }
        for v in &mut cdf {
            *v /= sum;
        }
        Zipf { cdf }
    }

    /// Maps a uniform `u` in `[0, 1)` to a rank (0 = hottest).
    pub fn sample(&self, u: f64) -> u32 {
        self.cdf.partition_point(|&c| c <= u) as u32
    }
}

/// Uniform `[0, 1)` from a shim RNG (53 mantissa bits).
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.gen::<u64>() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generates thread `tid`'s transaction stream — deterministically in
/// `(cfg.seed, tid)`, independent of all other threads.
pub fn thread_txns(cfg: &OltpConfig, tid: usize) -> Vec<OltpTxn> {
    let zipf = Zipf::new(cfg.accounts, cfg.zipf_theta);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0017_0b1e ^ ((tid as u64) << 21));
    let phases = u64::from(cfg.flash_phases.max(1));
    let phase_len = cfg.txns_per_thread.div_ceil(phases).max(1);
    let mut arrival = 0u64;
    (0..cfg.txns_per_thread)
        .map(|i| {
            arrival += rng.gen_range(0..2 * cfg.mean_arrival_gap + 1);
            // Flash crowd: each phase rotates the Zipf head onto a
            // different hot key, so the "celebrity" moves mid-run.
            let phase = (i / phase_len) % phases;
            let rotate = phase * (u64::from(cfg.accounts) / phases);
            let n = if rng.gen_range(0..100) < cfg.large_txn_pct {
                cfg.large_txn_keys
            } else {
                rng.gen_range(1..cfg.txn_keys + 1)
            }
            .min(cfg.accounts) as usize;
            let mut keys: Vec<u32> = Vec::with_capacity(n);
            while keys.len() < n {
                let rank = zipf.sample(unit_f64(&mut rng));
                let key = ((u64::from(rank) + rotate) % u64::from(cfg.accounts)) as u32;
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
            let deltas = if rng.gen_range(0..100) < cfg.read_pct {
                Vec::new()
            } else {
                // Fixed per-key deltas summing to zero: the transfer's
                // effect is order-independent, giving the differential
                // suite a closed-form expected state under contention.
                let mut sum = 0i64;
                let mut deltas: Vec<i64> = (1..keys.len())
                    .map(|_| {
                        let d = rng.gen_range(-8i64..9);
                        sum = sum.wrapping_add(d);
                        d
                    })
                    .collect();
                deltas.push(sum.wrapping_neg());
                deltas
            };
            OltpTxn {
                arrival,
                keys,
                deltas,
            }
        })
        .collect()
}

/// Account `key`'s balance before any traffic.
pub fn initial_balance(key: u32) -> u64 {
    1_000 + u64::from(key)
}

/// The closed-form final state: initial balances plus every thread's
/// deltas. Interleaving-independent by construction (wrapping addition
/// commutes), so it is the reference for *both* backends.
pub fn expected_balances(cfg: &OltpConfig) -> Vec<u64> {
    let mut balances: Vec<u64> = (0..cfg.accounts).map(initial_balance).collect();
    for tid in 0..cfg.threads {
        for txn in thread_txns(cfg, tid) {
            for (&key, &delta) in txn.keys.iter().zip(&txn.deltas) {
                let b = &mut balances[key as usize];
                *b = b.wrapping_add(delta as u64);
            }
        }
    }
    balances
}

/// Wrapping total across all accounts — conserved by every transfer.
pub fn total_balance(balances: &[u64]) -> u64 {
    balances.iter().fold(0u64, |a, &b| a.wrapping_add(b))
}

/// Order-sensitive FNV digest of the balance vector (the mill's analog of
/// the map workloads' digest sweep).
pub fn balances_digest(balances: &[u64]) -> u64 {
    let mut digest = 0u64;
    for (key, value) in balances.iter().enumerate() {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over (key, value)
        for byte in (key as u64)
            .to_le_bytes()
            .iter()
            .chain(value.to_le_bytes().iter())
        {
            h = (h ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
        }
        digest = digest.wrapping_add(h);
    }
    digest
}

/// Applies one transaction through the scheme-independent context.
pub fn apply_txn<E: TmExec>(ex: &mut E, accounts: &[ObjRef], txn: &OltpTxn) {
    if txn.is_read_only() {
        ex.atomic(|ctx| {
            let mut acc = 0u64;
            for &key in &txn.keys {
                acc = acc.wrapping_add(ctx.ctx_read(accounts[key as usize], 0)?);
                ctx.ctx_work(4);
            }
            ctx.ctx_guard()?;
            Ok(acc)
        });
    } else {
        ex.atomic(|ctx| {
            for (&key, &delta) in txn.keys.iter().zip(&txn.deltas) {
                let obj = accounts[key as usize];
                let v = ctx.ctx_read(obj, 0)?;
                ctx.ctx_write(obj, 0, v.wrapping_add(delta as u64))?;
                ctx.ctx_work(4);
            }
            Ok(())
        });
    }
}

/// One thread's mill run: epoch anchor, per-transaction completion
/// stamps, and latencies (completion minus scheduled arrival).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadMillResult {
    /// The thread's clock when the mill started; arrivals are relative to
    /// this, which makes the accounting robust to per-core clock skew
    /// from setup phases.
    pub epoch: u64,
    /// Completion stamp of each transaction, in stream order. On
    /// trace-enabled simulator runs these equal the `TxnCommit` trace
    /// stamps exactly (the reconciliation tests assert it).
    pub ends: Vec<u64>,
    /// `ends[i] - (epoch + arrival[i])`, saturating at zero.
    pub latencies: Vec<u64>,
}

/// Drives one thread's pre-generated stream through any executor,
/// holding each transaction to its open-loop arrival and recording
/// serving latency.
pub fn run_mill_thread<E: TmExec>(
    ex: &mut E,
    accounts: &[ObjRef],
    txns: &[OltpTxn],
) -> ThreadMillResult {
    let epoch = ex.clock();
    let mut ends = Vec::with_capacity(txns.len());
    let mut latencies = Vec::with_capacity(txns.len());
    for txn in txns {
        let due = epoch + txn.arrival;
        ex.idle_until(due);
        apply_txn(ex, accounts, txn);
        let end = ex.clock();
        ends.push(end);
        latencies.push(end.saturating_sub(due));
    }
    ThreadMillResult {
        epoch,
        ends,
        latencies,
    }
}

/// Serving-style metrics of one mill run. `elapsed` (and the latency
/// samples) are simulated cycles on the simulator and host nanoseconds on
/// the native backend; goodput is normalized per million clock units so
/// the two read as "per Mcycle" and "per millisecond" respectively.
#[derive(Clone, Debug, Default)]
pub struct OltpMetrics {
    /// Per-transaction serving latencies.
    pub latency: LatencyStats,
    /// Transactions issued.
    pub total_txns: u64,
    /// Top-level commits.
    pub commits: u64,
    /// Aborted attempts (all causes).
    pub aborts: u64,
    /// Run duration in clock units.
    pub elapsed: u64,
}

impl OltpMetrics {
    /// Median serving latency.
    pub fn p50(&self) -> u64 {
        self.latency.quantile(0.50)
    }

    /// Tail (99th percentile) serving latency.
    pub fn p99(&self) -> u64 {
        self.latency.quantile(0.99)
    }

    /// Committed transactions per million clock units.
    pub fn goodput_per_munit(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.commits as f64 * 1e6 / self.elapsed as f64
    }

    /// Attempts per commit: `(commits + aborts) / commits`. 1.0 means no
    /// wasted work; 2.0 means every commit paid for one aborted attempt.
    pub fn abort_retry_amplification(&self) -> f64 {
        if self.commits == 0 {
            return 0.0;
        }
        (self.commits + self.aborts) as f64 / self.commits as f64
    }
}

/// A simulator mill run: the traffic parameters plus scheme, machine, and
/// fault-injection knobs (the latter drive the zombie scenarios in
/// `hastm-check`).
#[derive(Clone, Debug)]
pub struct OltpSimConfig {
    /// Traffic parameters; `oltp.threads` simulated cores are used.
    pub oltp: OltpConfig,
    /// Synchronization scheme under test.
    pub scheme: Scheme,
    /// Conflict-detection granularity.
    pub granularity: Granularity,
    /// Machine geometry/schedule (`cores` is overridden to
    /// `oltp.threads`).
    pub machine: MachineConfig,
    /// HASTM mode-policy override (applied only when `scheme` is
    /// [`Scheme::Hastm`]).
    pub mode_policy_override: Option<hastm::ModePolicy>,
    /// Serializability-oracle mode for the run.
    pub oracle: OracleMode,
    /// Overrides `StmConfig::validation_period`; the zombie scenarios use
    /// a huge period to *delay* read-set revalidation.
    pub validation_period: Option<u32>,
    /// Forced scheduler switches, fired by gated-op index.
    pub preemptions: Vec<Preemption>,
    /// Injected faults (forced evictions, back-invalidations, spurious
    /// watch violations / HTM aborts).
    pub faults: Vec<FaultEvent>,
    /// Arm per-core tracing for the measured run.
    pub trace: Option<TraceConfig>,
}

impl OltpSimConfig {
    /// A plain (fault-free, oracle-recording) run of `oltp` under
    /// `scheme` at `granularity`.
    pub fn new(oltp: OltpConfig, scheme: Scheme, granularity: Granularity) -> Self {
        OltpSimConfig {
            oltp,
            scheme,
            granularity,
            machine: MachineConfig::default(),
            mode_policy_override: None,
            oracle: OracleMode::Record,
            validation_period: None,
            preemptions: Vec::new(),
            faults: Vec::new(),
            trace: None,
        }
    }
}

/// Result of a simulator mill run.
#[derive(Clone, Debug)]
pub struct OltpSimResult {
    /// Serving metrics (cycles).
    pub metrics: OltpMetrics,
    /// FNV digest of the final balances.
    pub digest: u64,
    /// Final per-account balances.
    pub balances: Vec<u64>,
    /// Per-thread mill timings, indexed by core.
    pub per_thread: Vec<ThreadMillResult>,
    /// STM counters merged across threads (zeros for lock/sequential).
    pub txn: TxnStats,
    /// Full metrics registry for the run, including the `latency.*`
    /// serving entries.
    pub snapshot: MetricsSnapshot,
    /// Serializability violations: commit-time recordings plus the
    /// deferred post-run settlement. Nonzero means a zombie committed.
    pub oracle_violations: u64,
    /// The measured run's trace, when tracing was armed.
    pub trace: Option<TraceLog>,
}

/// Runs the mill on the simulator.
///
/// Under [`GateMode::Speculative`] the result is always *certified*: a
/// tainted speculative attempt is discarded (caches, stats, memory — the
/// machine is rebuilt from scratch) and the whole mill re-executed under
/// [`GateMode::Quantum`], so the returned [`OltpSimResult`] is
/// bit-identical to a quantum run either way — the same contract as
/// [`crate::run_workload_spec`].
///
/// # Panics
///
/// Panics if `threads` is zero, or if `scheme` is [`Scheme::Sequential`]
/// with more than one thread.
pub fn run_oltp_sim(cfg: &OltpSimConfig) -> OltpSimResult {
    let (result, outcome) = run_oltp_sim_inner(cfg);
    if outcome.is_none_or(|o| o.certified) {
        return result;
    }
    let mut quantum_cfg = cfg.clone();
    quantum_cfg.machine.gate = GateMode::Quantum;
    run_oltp_sim_inner(&quantum_cfg).0
}

/// One uncertified attempt of the mill; the speculation verdict of the
/// measured multi-core run rides along. (The populate and balance-peek
/// phases run a single worker, which is always globally minimal and never
/// speculates, so the measured run's verdict is the whole story.)
fn run_oltp_sim_inner(cfg: &OltpSimConfig) -> (OltpSimResult, Option<SpecOutcome>) {
    let threads = cfg.oltp.threads;
    assert!(threads >= 1);
    assert!(
        cfg.scheme != Scheme::Sequential || threads == 1,
        "sequential execution is single-threaded"
    );

    let mut machine_cfg = cfg.machine.clone();
    machine_cfg.cores = threads;
    let mut machine = Machine::new(machine_cfg);
    let mut stm_config = cfg
        .scheme
        .stm_config(cfg.granularity, threads)
        .with_oracle(cfg.oracle);
    if let (Some(p), true) = (cfg.mode_policy_override, cfg.scheme == Scheme::Hastm) {
        stm_config.mode_policy = p;
    }
    if let Some(period) = cfg.validation_period {
        stm_config.validation_period = period;
    }
    let runtime = StmRuntime::new(&mut machine, stm_config);
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;

    let streams: Vec<Vec<OltpTxn>> = (0..threads).map(|t| thread_txns(&cfg.oltp, t)).collect();
    let n_accounts = cfg.oltp.accounts;

    // Populate the ledger sequentially (untraced, unfaulted).
    let (accounts, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        (0..n_accounts)
            .map(|key| {
                let obj = ex.alloc_obj(ACCOUNT_WORDS);
                ex.atomic(|ctx| ctx.ctx_write(obj, 0, initial_balance(key)));
                obj
            })
            .collect::<Vec<ObjRef>>()
    });

    // Measured run, with any fault plan and tracing armed.
    machine.set_preemptions(cfg.preemptions.clone());
    machine.set_faults(cfg.faults.clone());
    machine.set_tracing(cfg.trace);
    type Slot = (ThreadMillResult, Option<TxnStats>, u64, u64);
    let slots: Vec<Mutex<Option<Slot>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let slots_ref = &slots;
    let accounts_ref = &accounts;
    let streams_ref = &streams;
    let scheme = cfg.scheme;
    let workers: Vec<WorkerFn<'_>> = (0..threads)
        .map(|tid| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                let mill = run_mill_thread(&mut ex, accounts_ref, &streams_ref[tid]);
                let issued = streams_ref[tid].len() as u64;
                let (commits, aborts) = if let Some(s) = ex.txn_stats() {
                    (s.commits, s.aborts())
                } else if let Some(h) = ex.hytm_stats() {
                    (
                        h.hw_commits + h.sw_commits,
                        h.hw_aborts_conflict + h.hw_aborts_capacity + h.hw_aborts_spurious,
                    )
                } else {
                    (issued, 0)
                };
                *slots_ref[tid].lock().unwrap() = Some((mill, ex.txn_stats(), commits, aborts));
            }) as WorkerFn<'_>
        })
        .collect();
    let report = machine.run(workers);
    let outcome = machine.spec_outcome();
    let trace = machine.take_trace();
    machine.set_tracing(None);
    machine.set_preemptions(Vec::new());
    machine.set_faults(Vec::new());

    let mut metrics = OltpMetrics {
        total_txns: cfg.oltp.total_txns(),
        elapsed: report.makespan(),
        ..OltpMetrics::default()
    };
    let mut txn = TxnStats::default();
    let mut per_thread = Vec::with_capacity(threads);
    for slot in &slots {
        let (mill, stats, commits, aborts) = slot.lock().unwrap().take().expect("worker ran");
        for &l in &mill.latencies {
            metrics.latency.record(l);
        }
        metrics.commits += commits;
        metrics.aborts += aborts;
        if let Some(s) = stats {
            txn.merge(&s);
        }
        per_thread.push(mill);
    }

    // Settle the oracle's deferred obligations, then snapshot.
    txn.oracle_violations += runtime.verify_serializability(&machine).len() as u64;
    let balances: Vec<u64> = accounts
        .iter()
        .map(|obj| machine.peek_u64(obj.word(0)))
        .collect();
    let mut snapshot = MetricsSnapshot::collect(&txn, &report);
    snapshot.push_latency(&metrics.latency);

    (
        OltpSimResult {
            metrics,
            digest: balances_digest(&balances),
            balances,
            per_thread,
            oracle_violations: txn.oracle_violations,
            txn,
            snapshot,
            trace,
        },
        outcome,
    )
}

/// A native-backend mill run.
#[derive(Clone, Debug)]
pub struct OltpNativeConfig {
    /// Traffic parameters; `oltp.threads` host threads are used.
    pub oltp: OltpConfig,
    /// TL2 runtime parameters, including the mark-bit filter toggle.
    pub native: NativeConfig,
}

/// Result of a native-backend mill run.
#[derive(Clone, Debug)]
pub struct OltpNativeResult {
    /// Serving metrics (nanoseconds).
    pub metrics: OltpMetrics,
    /// FNV digest of the final balances.
    pub digest: u64,
    /// Final per-account balances.
    pub balances: Vec<u64>,
    /// Per-thread mill timings.
    pub per_thread: Vec<ThreadMillResult>,
    /// TL2 counters merged across threads.
    pub stats: NativeStats,
}

/// Runs the mill on host threads over the native TL2 runtime.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_oltp_native(cfg: &OltpNativeConfig) -> OltpNativeResult {
    let threads = cfg.oltp.threads;
    assert!(threads >= 1);
    let rt = NativeRuntime::new(cfg.native.clone());

    let accounts: Vec<ObjRef> = {
        let mut ex = NativeExec::new(&rt);
        (0..cfg.oltp.accounts)
            .map(|key| {
                let obj = ex.alloc_obj(ACCOUNT_WORDS);
                ex.atomic(|ctx| ctx.ctx_write(obj, 0, initial_balance(key)));
                obj
            })
            .collect()
    };

    let streams: Vec<Vec<OltpTxn>> = (0..threads).map(|t| thread_txns(&cfg.oltp, t)).collect();
    let start = Instant::now();
    let per_thread_raw: Vec<(ThreadMillResult, NativeStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let rt = &rt;
                let accounts = &accounts;
                let stream = &streams[tid];
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    let mill = run_mill_thread(&mut ex, accounts, stream);
                    (mill, ex.stats().clone())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed().as_nanos() as u64;

    let mut metrics = OltpMetrics {
        total_txns: cfg.oltp.total_txns(),
        elapsed,
        ..OltpMetrics::default()
    };
    let mut stats = NativeStats::default();
    let mut per_thread = Vec::with_capacity(threads);
    for (mill, s) in per_thread_raw {
        for &l in &mill.latencies {
            metrics.latency.record(l);
        }
        stats.merge(&s);
        per_thread.push(mill);
    }
    metrics.commits = stats.commits;
    metrics.aborts = stats.aborts();

    let balances: Vec<u64> = accounts.iter().map(|obj| rt.peek(obj.word(0))).collect();
    OltpNativeResult {
        metrics,
        digest: balances_digest(&balances),
        balances,
        per_thread,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_zero_sum() {
        let cfg = OltpConfig::quick(3);
        for tid in 0..3 {
            let a = thread_txns(&cfg, tid);
            let b = thread_txns(&cfg, tid);
            assert_eq!(a, b, "stream generation must be bit-exact per seed");
            let mut prev = 0;
            for txn in &a {
                assert!(txn.arrival >= prev, "arrivals are nondecreasing");
                prev = txn.arrival;
                assert!(!txn.keys.is_empty());
                if !txn.is_read_only() {
                    assert_eq!(txn.keys.len(), txn.deltas.len());
                    let sum: i64 = txn.deltas.iter().fold(0, |a, &d| a.wrapping_add(d));
                    assert_eq!(sum, 0, "transfers conserve balance");
                }
                let mut uniq = txn.keys.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), txn.keys.len(), "keys are distinct");
            }
        }
    }

    #[test]
    fn mill_matches_ledger_under_every_scheme() {
        for scheme in Scheme::ALL {
            let threads = if scheme == Scheme::Sequential { 1 } else { 2 };
            let cfg = OltpSimConfig::new(OltpConfig::quick(threads), scheme, Granularity::Object);
            let expected = expected_balances(&cfg.oltp);
            let r = run_oltp_sim(&cfg);
            assert_eq!(r.balances, expected, "{scheme}: ledger divergence");
            assert_eq!(
                total_balance(&r.balances),
                total_balance(&expected),
                "{scheme}: balance not conserved"
            );
            assert_eq!(r.oracle_violations, 0, "{scheme}: zombie commit");
            assert_eq!(r.metrics.latency.count(), cfg.oltp.total_txns());
            assert!(r.metrics.p99() >= r.metrics.p50());
            assert!(r.metrics.goodput_per_munit() > 0.0);
            assert!(r.metrics.abort_retry_amplification() >= 1.0, "{scheme}");
            assert_eq!(
                r.snapshot.get("latency.count"),
                Some(r.metrics.latency.count())
            );
        }
    }

    #[test]
    fn sim_mill_is_bit_deterministic() {
        let cfg = OltpSimConfig::new(OltpConfig::quick(2), Scheme::Stm, Granularity::CacheLine);
        let a = run_oltp_sim(&cfg);
        let b = run_oltp_sim(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.metrics.elapsed, b.metrics.elapsed);
        assert_eq!(a.metrics.latency, b.metrics.latency);
        assert_eq!(a.per_thread, b.per_thread);
    }

    #[test]
    fn native_mill_matches_ledger() {
        for filter in [false, true] {
            let mut cfg = OltpNativeConfig {
                oltp: OltpConfig::quick(4),
                native: NativeConfig::default(),
            };
            cfg.native.mark_filter = filter;
            let expected = expected_balances(&cfg.oltp);
            let r = run_oltp_native(&cfg);
            assert_eq!(r.balances, expected, "filter={filter}: ledger divergence");
            assert_eq!(r.metrics.latency.count(), cfg.oltp.total_txns());
            assert!(r.stats.commits >= cfg.oltp.total_txns());
        }
    }

    #[test]
    fn large_txn_tail_overflows_htm_capacity() {
        // The tail transaction under HyTM must abort the hardware attempt
        // on capacity and fall back to software — the behavior the
        // paper's capacity argument predicts.
        let mut oltp = OltpConfig::quick(2);
        oltp.large_txn_pct = 30;
        oltp.large_txn_keys = HTM_OVERFLOW_KEYS;
        oltp.accounts = 128;
        let cfg = OltpSimConfig::new(oltp, Scheme::Hytm, Granularity::Object);
        let expected = expected_balances(&cfg.oltp);
        let r = run_oltp_sim(&cfg);
        assert_eq!(r.balances, expected);
    }
}
