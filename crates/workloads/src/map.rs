//! The transactional map interface shared by the three evaluation data
//! structures (hashtable, BST, B-tree).

use hastm::{TmContext, TxResult};

/// A `u64 -> u64` map whose operations run inside an atomic region.
///
/// Implementations store all state in simulated memory and are `Copy`
/// handles (root pointers), so one structure can be shared by all worker
/// threads.
pub trait TxMap {
    /// Inserts `key -> value`; returns `true` if the key was new,
    /// `false` if an existing value was replaced.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    fn insert(&self, ctx: &mut dyn TmContext, key: u64, value: u64) -> TxResult<bool>;

    /// Removes `key`; returns whether it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    fn remove(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<bool>;

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    fn get(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<Option<u64>>;

    /// Number of keys (walks the structure; test/verification aid).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    fn len(&self, ctx: &mut dyn TmContext) -> TxResult<u64>;

    /// Whether the map is empty.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    fn is_empty(&self, ctx: &mut dyn TmContext) -> TxResult<bool> {
        Ok(self.len(ctx)? == 0)
    }
}

/// Exercises any [`TxMap`] implementation against a reference
/// `BTreeMap` with a deterministic operation stream. Panics on divergence.
/// Used by each structure's tests and by the cross-crate property tests.
pub fn check_against_reference<M: TxMap>(
    map: &M,
    ctx: &mut dyn TmContext,
    ops: &[(u8, u64)],
) -> std::collections::BTreeMap<u64, u64> {
    let mut reference = std::collections::BTreeMap::new();
    for &(kind, key) in ops {
        match kind % 3 {
            0 => {
                let value = key.wrapping_mul(3) + 1;
                let fresh = map.insert(ctx, key, value).expect("insert");
                assert_eq!(
                    fresh,
                    reference.insert(key, value).is_none(),
                    "insert({key}) freshness diverged"
                );
            }
            1 => {
                let removed = map.remove(ctx, key).expect("remove");
                assert_eq!(
                    removed,
                    reference.remove(&key).is_some(),
                    "remove({key}) diverged"
                );
            }
            _ => {
                let got = map.get(ctx, key).expect("get");
                assert_eq!(got, reference.get(&key).copied(), "get({key}) diverged");
            }
        }
    }
    let len = map.len(ctx).expect("len");
    assert_eq!(len, reference.len() as u64, "length diverged");
    reference
}
