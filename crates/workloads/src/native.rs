//! Native-backend driver: the same map workloads as [`crate::driver`],
//! run on **host threads** over the [`hastm_native`] TL2 runtime instead
//! of the cycle-level simulator.
//!
//! The phases and seed derivations mirror [`crate::driver::run_workload`]
//! exactly (populate, warmup, measured run, digest sweep), so a
//! single-thread native run performs the identical operation sequence as
//! a single-thread simulated run and must end in the identical abstract
//! map state — the digest equality `hastm-check --backend both` and the
//! differential tests rely on. Multi-thread runs interleave for real, so
//! only interleaving-independent facts (and the wall-clock throughput
//! reported into `BENCH.json`) are compared there.

use std::time::Instant;

use hastm::TmExec;
use hastm_native::{NativeConfig, NativeExec, NativeRuntime, NativeStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::btree::BTree;
use crate::driver::{AnyMap, Structure};
use crate::hashtable::HashTable;
use crate::map::TxMap;

/// Parameters for one native workload run (the native analog of
/// [`crate::driver::WorkloadConfig`]).
#[derive(Clone, Debug)]
pub struct NativeWorkloadConfig {
    /// Data structure under test.
    pub structure: Structure,
    /// Host worker threads.
    pub threads: usize,
    /// Operations per thread in the measured run.
    pub ops_per_thread: u64,
    /// Percent of operations that are updates (half inserts, half
    /// removes); the paper uses 20.
    pub update_pct: u32,
    /// Percent of operations that are whole-structure scans
    /// ([`TxMap::len`]); `update_pct + scan_pct` must not exceed 100.
    pub scan_pct: u32,
    /// Route lookups and scans through [`hastm::TmExec::atomic_ro`]; under
    /// a runtime configured [`hastm::Versioning::Multi`] they take the
    /// abort-free snapshot path.
    pub ro_reads: bool,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Keys pre-inserted before the measured run.
    pub prepopulate: u64,
    /// RNG seed (shared with the simulator config in differential runs).
    pub seed: u64,
    /// TL2 runtime parameters, including the mark-bit filter toggle.
    pub native: NativeConfig,
}

impl NativeWorkloadConfig {
    /// The paper's standard setup for `structure` at `threads` host
    /// threads, matching [`crate::driver::WorkloadConfig::paper_default`].
    pub fn paper_default(structure: Structure, threads: usize) -> Self {
        NativeWorkloadConfig {
            structure,
            threads,
            ops_per_thread: 1_000,
            update_pct: 20,
            scan_pct: 0,
            ro_reads: false,
            key_range: 1_024,
            prepopulate: 512,
            seed: 0x5eed,
            native: NativeConfig::default(),
        }
    }

    /// Read-dominated setup matching
    /// [`crate::driver::WorkloadConfig::read_heavy`]: 4 % updates, the
    /// rest snapshot lookups over a 3-deep version ring.
    pub fn read_heavy(structure: Structure, threads: usize) -> Self {
        NativeWorkloadConfig {
            update_pct: 4,
            ro_reads: true,
            native: NativeConfig {
                versioning: hastm::Versioning::Multi { k: 3 },
                ..NativeConfig::default()
            },
            ..NativeWorkloadConfig::paper_default(structure, threads)
        }
    }

    /// Scan-vs-writer setup matching
    /// [`crate::driver::WorkloadConfig::scan_heavy`]: 20 % updates plus
    /// 10 % whole-structure snapshot scans.
    pub fn scan_heavy(structure: Structure, threads: usize) -> Self {
        NativeWorkloadConfig {
            scan_pct: 10,
            ro_reads: true,
            native: NativeConfig {
                versioning: hastm::Versioning::Multi { k: 3 },
                ..NativeConfig::default()
            },
            ..NativeWorkloadConfig::paper_default(structure, threads)
        }
    }
}

/// Result of one native workload run.
#[derive(Clone, Debug)]
pub struct NativeWorkloadResult {
    /// Wall-clock duration of the measured run, in nanoseconds.
    pub elapsed_nanos: u128,
    /// Total operations (= committed top-level transactions) in the
    /// measured run.
    pub total_ops: u64,
    /// Order-independent digest of the final map contents, computed by
    /// the same FNV fold as the simulator driver's digest sweep.
    pub digest: u64,
    /// TL2 counters merged across the measured threads.
    pub stats: NativeStats,
}

impl NativeWorkloadResult {
    /// Committed transactions per wall-clock second in the measured run.
    pub fn txns_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.total_ops as f64 * 1e9 / self.elapsed_nanos as f64
    }
}

fn run_op(ex: &mut NativeExec<'_>, map: AnyMap, rng: &mut StdRng, cfg: &NativeWorkloadConfig) {
    let key = rng.gen_range(0..cfg.key_range);
    let roll: u32 = rng.gen_range(0..100);
    if roll < cfg.update_pct / 2 {
        ex.atomic(|ctx| map.insert(ctx, key, key ^ 0xff));
    } else if roll < cfg.update_pct {
        ex.atomic(|ctx| map.remove(ctx, key));
    } else if roll < cfg.update_pct + cfg.scan_pct {
        if cfg.ro_reads {
            ex.atomic_ro(|ctx| map.len(ctx));
        } else {
            ex.atomic(|ctx| map.len(ctx));
        }
    } else if cfg.ro_reads {
        ex.atomic_ro(|ctx| map.get(ctx, key));
    } else {
        ex.atomic(|ctx| map.get(ctx, key));
    }
}

/// Runs one native workload configuration end to end.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_native_workload(cfg: &NativeWorkloadConfig) -> NativeWorkloadResult {
    assert!(cfg.threads >= 1);
    assert!(
        cfg.update_pct + cfg.scan_pct <= 100,
        "update_pct + scan_pct must leave room for lookups"
    );
    let rt = NativeRuntime::new(cfg.native.clone());

    // Build + populate on one thread, same seed derivation as the
    // simulator driver.
    let map = {
        let mut ex = NativeExec::new(&rt);
        let buckets = (cfg.key_range / 2).next_power_of_two().clamp(64, 8192) as u32;
        let structure_kind = cfg.structure;
        let map = ex.atomic(|ctx| {
            Ok(match structure_kind {
                Structure::HashTable => AnyMap::Hash(HashTable::create(ctx, buckets)),
                Structure::Bst => AnyMap::Bst(crate::bst::Bst::create(ctx)),
                Structure::BTree => AnyMap::BTree(BTree::create(ctx)?),
            })
        });
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9);
        let mut inserted = 0;
        while inserted < cfg.prepopulate {
            let key = rng.gen_range(0..cfg.key_range);
            let fresh = ex.atomic(|ctx| map.insert(ctx, key, key.wrapping_mul(7)));
            if fresh {
                inserted += 1;
            }
        }
        map
    };

    // Warmup pass (a quarter of the budget, as in the simulator driver —
    // here it also faults in the heap and builds the mark filters).
    let warm_ops = (cfg.ops_per_thread / 4).max(1);
    std::thread::scope(|s| {
        for tid in 0..cfg.threads {
            let rt = &rt;
            s.spawn(move || {
                let mut ex = NativeExec::new(rt);
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xaaaa ^ (tid as u64) << 17);
                for _ in 0..warm_ops {
                    run_op(&mut ex, map, &mut rng, cfg);
                }
            });
        }
    });

    // Measured run.
    let start = Instant::now();
    let per_thread: Vec<NativeStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let rt = &rt;
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ (tid as u64).wrapping_mul(0x9e37));
                    for _ in 0..cfg.ops_per_thread {
                        run_op(&mut ex, map, &mut rng, cfg);
                    }
                    ex.stats().clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_nanos = start.elapsed().as_nanos();

    let mut stats = NativeStats::default();
    for s in &per_thread {
        stats.merge(s);
    }

    // Digest sweep, same fold as the simulator driver.
    let digest = {
        let mut ex = NativeExec::new(&rt);
        let mut digest = 0u64;
        for key in 0..cfg.key_range {
            if let Some(value) = ex.atomic(|ctx| map.get(ctx, key)) {
                let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over (key, value)
                for byte in key.to_le_bytes().iter().chain(value.to_le_bytes().iter()) {
                    h = (h ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
                }
                digest = digest.wrapping_add(h);
            }
        }
        digest
    };

    NativeWorkloadResult {
        elapsed_nanos,
        total_ops: cfg.ops_per_thread * cfg.threads as u64,
        digest,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, WorkloadConfig};
    use crate::scheme::Scheme;

    fn small_native(
        structure: Structure,
        threads: usize,
        mark_filter: bool,
    ) -> NativeWorkloadConfig {
        let mut c = NativeWorkloadConfig::paper_default(structure, threads);
        c.ops_per_thread = 120;
        c.prepopulate = 64;
        c.key_range = 128;
        c.native.mark_filter = mark_filter;
        c
    }

    #[test]
    fn native_single_thread_digest_matches_simulator() {
        for structure in Structure::ALL {
            let mut sim_cfg = WorkloadConfig::paper_default(structure, Scheme::Sequential, 1);
            sim_cfg.ops_per_thread = 120;
            sim_cfg.prepopulate = 64;
            sim_cfg.key_range = 128;
            let sim = run_workload(&sim_cfg);
            for filter in [false, true] {
                let native = run_native_workload(&small_native(structure, 1, filter));
                assert_eq!(
                    native.digest, sim.digest,
                    "{structure} filter={filter}: native and simulated single-thread runs \
                     perform the same op sequence and must agree"
                );
            }
        }
    }

    #[test]
    fn multi_thread_run_commits_every_op() {
        let r = run_native_workload(&small_native(Structure::HashTable, 4, true));
        assert_eq!(r.total_ops, 4 * 120);
        assert!(
            r.stats.commits >= r.total_ops,
            "each op commits exactly once"
        );
        assert!(r.txns_per_sec() > 0.0);
    }

    #[test]
    fn native_read_heavy_snapshots_never_abort() {
        let mut c = NativeWorkloadConfig::read_heavy(Structure::HashTable, 4);
        c.ops_per_thread = 200;
        c.prepopulate = 64;
        c.key_range = 128;
        let r = run_native_workload(&c);
        assert!(r.stats.ro_commits > 0, "lookups must be snapshot reads");
        assert_eq!(r.stats.ro_aborts, 0, "snapshot reads are abort-free");
        assert!(r.stats.snapshot_reads > 0);
        assert!(r.stats.versions_published > 0);
    }

    #[test]
    fn native_scan_heavy_snapshots_never_abort() {
        let mut c = NativeWorkloadConfig::scan_heavy(Structure::Bst, 4);
        c.ops_per_thread = 200;
        c.prepopulate = 64;
        c.key_range = 128;
        let r = run_native_workload(&c);
        assert!(r.stats.ro_commits > 0);
        assert_eq!(r.stats.ro_aborts, 0);
    }

    #[test]
    fn native_single_thread_digest_is_versioning_independent() {
        let base = {
            let mut c = small_native(Structure::HashTable, 1, true);
            c.ro_reads = true;
            c
        };
        let multi = {
            let mut c = base.clone();
            c.native.versioning = hastm::Versioning::Multi { k: 3 };
            c
        };
        let a = run_native_workload(&base);
        let b = run_native_workload(&multi);
        assert_eq!(a.digest, b.digest, "final map state diverged");
        assert_eq!(b.stats.ro_aborts, 0);
    }

    #[test]
    fn filter_produces_fast_reads_on_btree() {
        let r = run_native_workload(&small_native(Structure::BTree, 1, true));
        assert!(
            r.stats.fast_reads > 0,
            "single-thread B-tree traversals must reuse the filter: {:?}",
            r.stats
        );
        let no_filter = run_native_workload(&small_native(Structure::BTree, 1, false));
        assert_eq!(no_filter.stats.fast_reads, 0);
    }
}
