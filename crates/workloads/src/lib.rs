//! # hastm-workloads — the paper's evaluation workloads
//!
//! The transactional data structures (chained hashtable, rotating BST,
//! B-tree), the synthetic critical-section kernels, and the benchmark
//! driver used to regenerate the evaluation figures of *"Architectural
//! Support for Software Transactional Memory"* (MICRO 2006).
//!
//! Every workload is written once against the scheme-independent
//! [`hastm::TmContext`] interface and runs unchanged under sequential
//! execution, coarse locks, the base STM, all HASTM variants, and
//! best-case HyTM — exactly how the paper structures its comparisons.
//!
//! ## Quick start
//!
//! ```
//! use hastm_workloads::{run_workload, Scheme, Structure, WorkloadConfig};
//!
//! let mut cfg = WorkloadConfig::paper_default(Structure::Bst, Scheme::Hastm, 1);
//! cfg.ops_per_thread = 50; // keep the doc test fast
//! cfg.prepopulate = 32;
//! let result = run_workload(&cfg);
//! assert!(result.cycles > 0);
//! ```

pub mod bst;
pub mod btree;
pub mod driver;
pub mod hashtable;
pub mod map;
pub mod native;
pub mod oltp;
pub mod scheme;
pub mod synthetic;

pub use bst::Bst;
pub use btree::BTree;
pub use driver::{
    run_workload, run_workload_spec, run_workload_traced, AnyMap, SpecTelemetry, Structure,
    WorkloadConfig, WorkloadResult,
};
pub use hashtable::HashTable;
pub use map::{check_against_reference, TxMap};
pub use native::{run_native_workload, NativeWorkloadConfig, NativeWorkloadResult};
pub use oltp::{
    run_oltp_native, run_oltp_sim, OltpConfig, OltpMetrics, OltpNativeConfig, OltpNativeResult,
    OltpSimConfig, OltpSimResult, OltpTxn,
};
pub use scheme::{Scheme, ThreadExec};
pub use synthetic::{
    analyze, generate_stream, run_kernel, run_kernel_gated, KernelParams, KernelResult,
    KernelStream, TraceAnalysis, WorkloadProfile, PROFILES,
};
