//! Synthetic critical-section kernels (§7.2–7.3).
//!
//! The paper evaluates single-thread TM performance on "a number of micro
//! benchmarks \[emulating\] the memory characteristics of the critical
//! regions in the Java/pthreads workloads": the percentage of loads varies
//! from 60–90 %, the load cache-reuse rate from 40–60 %, and store reuse
//! is held at 40 % (Figure 15). It also characterizes twelve applications'
//! critical sections by load fraction and load cache reuse (Figure 13).
//!
//! A kernel is a pre-generated stream of critical sections; each section
//! is a sequence of loads/stores over cache-line-sized objects, where a
//! *reusing* access targets a line already touched earlier in the same
//! section and a *fresh* access takes the next line from a large arena.
//! The same stream is replayed under every scheme, so comparisons differ
//! only in synchronization machinery.

use hastm::{ObjRef, StmRuntime, TxnStats};
use hastm_locks::SpinLock;
use hastm_sim::{Machine, MachineConfig, RunReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scheme::{Scheme, ThreadExec};

/// Words usable per line-object (64-byte line minus the header word).
const WORDS_PER_LINE: u32 = 7;

/// Parameters of a synthetic kernel.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KernelParams {
    /// Memory operations per critical section.
    pub ops_per_section: u32,
    /// Number of critical sections executed.
    pub sections: u32,
    /// Percent of operations that are loads (the rest are stores).
    pub load_pct: u32,
    /// Percent of loads that re-touch a line already accessed in the same
    /// section.
    pub load_reuse_pct: u32,
    /// Percent of stores that re-touch such a line (the paper holds this
    /// at 40 %).
    pub store_reuse_pct: u32,
    /// Lines in the kernel's working set. Critical sections draw their
    /// "fresh" (not-yet-touched-in-this-section) lines from this warm pool,
    /// as the paper's critical regions repeatedly traverse the same shared
    /// structures; reuse percentages are *intra-section* properties.
    pub working_set_lines: u32,
    /// Stream seed.
    pub seed: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            ops_per_section: 48,
            sections: 150,
            load_pct: 80,
            load_reuse_pct: 50,
            store_reuse_pct: 40,
            working_set_lines: 256,
            seed: 0xfeed,
        }
    }
}

/// One pre-generated access: `(is_load, line_index, word_in_line)`.
type Access = (bool, u32, u32);

/// A pre-generated kernel stream.
#[derive(Clone, Debug)]
pub struct KernelStream {
    sections: Vec<Vec<Access>>,
    /// Distinct lines referenced.
    pub lines: u32,
    params: KernelParams,
}

impl KernelStream {
    /// The parameters this stream was generated from.
    pub fn params(&self) -> &KernelParams {
        &self.params
    }

    /// Number of critical sections in the stream.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }
}

/// Generates the deterministic access stream for `params`.
pub fn generate_stream(params: &KernelParams) -> KernelStream {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let arena_lines: u32 = params.working_set_lines;
    assert!(
        arena_lines as usize > params.ops_per_section as usize,
        "working set must exceed section footprint"
    );
    let mut sections = Vec::with_capacity(params.sections as usize);
    let mut max_line = 0;
    for _ in 0..params.sections {
        let mut accessed: Vec<u32> = Vec::new();
        let mut ops = Vec::with_capacity(params.ops_per_section as usize);
        for _ in 0..params.ops_per_section {
            let is_load = rng.gen_range(0..100) < params.load_pct;
            let reuse_pct = if is_load {
                params.load_reuse_pct
            } else {
                params.store_reuse_pct
            };
            let reuse = !accessed.is_empty() && rng.gen_range(0..100) < reuse_pct;
            let line = if reuse {
                accessed[rng.gen_range(0..accessed.len())]
            } else {
                // Draw a warm line not yet touched in this section.
                loop {
                    let l = rng.gen_range(0..arena_lines);
                    if !accessed.contains(&l) {
                        break l;
                    }
                }
            };
            if !accessed.contains(&line) {
                accessed.push(line);
            }
            max_line = max_line.max(line);
            ops.push((is_load, line, rng.gen_range(0..WORDS_PER_LINE)));
        }
        sections.push(ops);
    }
    KernelStream {
        sections,
        lines: max_line + 1,
        params: *params,
    }
}

/// Trace statistics of a stream (the Figure 13 characterization).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TraceAnalysis {
    /// Fraction of memory operations that are loads.
    pub load_fraction: f64,
    /// Fraction of loads that touch a line already accessed earlier in the
    /// same critical section.
    pub load_reuse: f64,
    /// Same, for stores.
    pub store_reuse: f64,
}

/// Measures load fraction and intra-section cache-line reuse from the
/// trace itself, the way the paper's workload analysis does.
pub fn analyze(stream: &KernelStream) -> TraceAnalysis {
    let (mut loads, mut stores, mut load_hits, mut store_hits) = (0u64, 0u64, 0u64, 0u64);
    for section in &stream.sections {
        let mut seen = std::collections::HashSet::new();
        for &(is_load, line, _) in section {
            let hit = !seen.insert(line);
            if is_load {
                loads += 1;
                load_hits += u64::from(hit);
            } else {
                stores += 1;
                store_hits += u64::from(hit);
            }
        }
    }
    TraceAnalysis {
        load_fraction: loads as f64 / (loads + stores).max(1) as f64,
        load_reuse: load_hits as f64 / loads.max(1) as f64,
        store_reuse: store_hits as f64 / stores.max(1) as f64,
    }
}

/// Result of running a kernel under one scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelResult {
    /// Makespan in simulated cycles.
    pub cycles: u64,
    /// Simulator counters.
    pub report: RunReport,
    /// STM statistics (zeroed for non-STM schemes).
    pub txn: TxnStats,
}

/// Replays `stream` under `scheme` on a single core and reports timing.
pub fn run_kernel(scheme: Scheme, stream: &KernelStream) -> KernelResult {
    run_kernel_gated(scheme, stream, hastm_sim::GateMode::default())
}

/// [`run_kernel`] under an explicit gate admission mode (for
/// cross-scheduler verification; both modes are schedule-identical, so the
/// result must be bit-equal across them).
pub fn run_kernel_gated(
    scheme: Scheme,
    stream: &KernelStream,
    gate: hastm_sim::GateMode,
) -> KernelResult {
    let mut machine = Machine::new(MachineConfig {
        gate,
        ..MachineConfig::default()
    });
    let runtime = StmRuntime::new(
        &mut machine,
        scheme.stm_config(hastm::Granularity::CacheLine, 1),
    );
    let lock = SpinLock::alloc(runtime.heap());
    // One line-aligned object per distinct line.
    let heap = runtime.heap();
    let objs: Vec<ObjRef> = (0..stream.lines)
        .map(|_| ObjRef(heap.alloc_aligned(64, 64)))
        .collect();

    let rt = &runtime;
    let objs_ref = &objs;
    let replay = |ex: &mut ThreadExec<'_, '_>, sections: &[Vec<Access>]| {
        for section in sections {
            ex.atomic(|ctx| {
                let mut acc = 0u64;
                for &(is_load, line, word) in section {
                    ctx.ctx_work(2); // address generation + loop control
                    let obj = objs_ref[line as usize];
                    if is_load {
                        acc = acc.wrapping_add(ctx.ctx_read(obj, word)?);
                    } else {
                        ctx.ctx_write(obj, word, acc)?;
                    }
                }
                Ok(acc)
            });
        }
    };

    // Warmup pass: the paper measures steady state; a cold run would be
    // dominated by compulsory misses on the arena and record table.
    machine.run(vec![Box::new(|cpu: &mut hastm_sim::Cpu| {
        let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
        replay(&mut ex, &stream.sections);
    })]);

    let mut txn = TxnStats::default();
    let txn_ref = &mut txn;
    let report = machine.run(vec![Box::new(move |cpu: &mut hastm_sim::Cpu| {
        let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
        replay(&mut ex, &stream.sections);
        if let Some(s) = ex.txn_stats() {
            *txn_ref = s;
        }
    })]);
    KernelResult {
        cycles: report.makespan(),
        report,
        txn,
    }
}

/// A named application profile for the Figure 13 characterization.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Application name as it appears in the paper.
    pub name: &'static str,
    /// Percent loads inside critical sections.
    pub load_pct: u32,
    /// Percent load cache reuse.
    pub load_reuse_pct: u32,
    /// Percent store cache reuse.
    pub store_reuse_pct: u32,
}

impl WorkloadProfile {
    /// Kernel parameters emulating this profile.
    pub fn params(&self, seed: u64) -> KernelParams {
        KernelParams {
            load_pct: self.load_pct,
            load_reuse_pct: self.load_reuse_pct,
            store_reuse_pct: self.store_reuse_pct,
            seed,
            ..KernelParams::default()
        }
    }
}

/// The twelve Java Grande / pthreads applications of Figure 13, with
/// critical-section load fractions and reuse rates matching the paper's
/// reported shape (loads ≳ 70 % of memory operations, load reuse mostly
/// above 50 %).
pub const PROFILES: [WorkloadProfile; 12] = [
    WorkloadProfile {
        name: "moldyn",
        load_pct: 85,
        load_reuse_pct: 62,
        store_reuse_pct: 40,
    },
    WorkloadProfile {
        name: "montecarlo",
        load_pct: 88,
        load_reuse_pct: 55,
        store_reuse_pct: 40,
    },
    WorkloadProfile {
        name: "raytracer",
        load_pct: 80,
        load_reuse_pct: 65,
        store_reuse_pct: 42,
    },
    WorkloadProfile {
        name: "crypt",
        load_pct: 72,
        load_reuse_pct: 48,
        store_reuse_pct: 38,
    },
    WorkloadProfile {
        name: "lufact",
        load_pct: 82,
        load_reuse_pct: 58,
        store_reuse_pct: 40,
    },
    WorkloadProfile {
        name: "series",
        load_pct: 92,
        load_reuse_pct: 75,
        store_reuse_pct: 45,
    },
    WorkloadProfile {
        name: "sor",
        load_pct: 86,
        load_reuse_pct: 70,
        store_reuse_pct: 44,
    },
    WorkloadProfile {
        name: "sparsematrix",
        load_pct: 78,
        load_reuse_pct: 52,
        store_reuse_pct: 38,
    },
    WorkloadProfile {
        name: "pmd",
        load_pct: 75,
        load_reuse_pct: 55,
        store_reuse_pct: 40,
    },
    WorkloadProfile {
        name: "apache",
        load_pct: 71,
        load_reuse_pct: 50,
        store_reuse_pct: 39,
    },
    WorkloadProfile {
        name: "kingate",
        load_pct: 68,
        load_reuse_pct: 45,
        store_reuse_pct: 37,
    },
    WorkloadProfile {
        name: "bp-vision",
        load_pct: 90,
        load_reuse_pct: 78,
        store_reuse_pct: 46,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let p = KernelParams::default();
        let a = generate_stream(&p);
        let b = generate_stream(&p);
        assert_eq!(a.sections, b.sections);
    }

    #[test]
    fn analysis_tracks_parameters() {
        let p = KernelParams {
            load_pct: 80,
            load_reuse_pct: 50,
            store_reuse_pct: 40,
            sections: 100,
            ops_per_section: 64,
            working_set_lines: 256,
            seed: 3,
        };
        let a = analyze(&generate_stream(&p));
        assert!((a.load_fraction - 0.80).abs() < 0.05, "{a:?}");
        // Measured reuse is a little below the target because the first
        // access of a section can never reuse.
        assert!((a.load_reuse - 0.50).abs() < 0.08, "{a:?}");
        assert!((a.store_reuse - 0.40).abs() < 0.10, "{a:?}");
    }

    #[test]
    fn kernel_runs_under_all_tm_schemes() {
        let p = KernelParams {
            sections: 10,
            ops_per_section: 24,
            ..KernelParams::default()
        };
        let stream = generate_stream(&p);
        for scheme in [
            Scheme::Sequential,
            Scheme::Stm,
            Scheme::HastmCautious,
            Scheme::Hastm,
            Scheme::Hytm,
        ] {
            let r = run_kernel(scheme, &stream);
            assert!(r.cycles > 0, "{scheme}");
        }
    }

    #[test]
    fn hastm_beats_stm_at_high_reuse() {
        let p = KernelParams {
            load_pct: 90,
            load_reuse_pct: 60,
            sections: 60,
            ..KernelParams::default()
        };
        let stream = generate_stream(&p);
        let stm = run_kernel(Scheme::Stm, &stream);
        let hastm = run_kernel(Scheme::Hastm, &stream);
        assert!(
            hastm.cycles < stm.cycles,
            "hastm={} stm={}",
            hastm.cycles,
            stm.cycles
        );
        // The filter actually fired.
        assert!(hastm.txn.read_fast_path > 0);
    }

    #[test]
    fn profiles_have_paper_shape() {
        for p in PROFILES {
            let a = analyze(&generate_stream(&p.params(1)));
            assert!(a.load_fraction > 0.6, "{}: {a:?}", p.name);
        }
        // Most profiles exceed 50% load reuse, as in Figure 13.
        let high = PROFILES
            .iter()
            .filter(|p| analyze(&generate_stream(&p.params(1))).load_reuse > 0.45)
            .count();
        assert!(high >= 8, "only {high} profiles show high reuse");
    }
}
