//! The benchmark driver: runs a data-structure workload under a chosen
//! scheme and thread count, reproducing the paper's experimental setup
//! ("20% of the operations were updates. All the data structures were
//! populated before the experimental run").

use hastm::{Granularity, OracleMode, StmRuntime, TmContext, TxResult, TxnStats, Versioning};
use hastm_locks::SpinLock;
use hastm_sim::{Machine, MachineConfig, RunReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::btree::BTree;
use crate::hashtable::HashTable;
use crate::map::TxMap;
use crate::scheme::{Scheme, ThreadExec};

/// Which evaluation data structure to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Chained hash table (low contention, low reuse).
    HashTable,
    /// Rotating binary search tree / treap (moderate reuse, root
    /// rotations).
    Bst,
    /// B-tree (high spatial locality / reuse).
    BTree,
}

impl Structure {
    /// The three structures in the paper's presentation order.
    pub const ALL: [Structure; 3] = [Structure::Bst, Structure::HashTable, Structure::BTree];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Structure::HashTable => "Hashtable",
            Structure::Bst => "BST",
            Structure::BTree => "Btree",
        }
    }
}

impl std::fmt::Display for Structure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A structure-erased map handle (all three implement [`TxMap`]), so
/// callers like the differential checker can drive any structure through
/// one code path.
#[derive(Copy, Clone, Debug)]
pub enum AnyMap {
    Hash(HashTable),
    Bst(crate::bst::Bst),
    BTree(BTree),
}

impl TxMap for AnyMap {
    fn insert(&self, ctx: &mut dyn TmContext, key: u64, value: u64) -> TxResult<bool> {
        match self {
            AnyMap::Hash(m) => m.insert(ctx, key, value),
            AnyMap::Bst(m) => m.insert(ctx, key, value),
            AnyMap::BTree(m) => m.insert(ctx, key, value),
        }
    }
    fn remove(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<bool> {
        match self {
            AnyMap::Hash(m) => m.remove(ctx, key),
            AnyMap::Bst(m) => m.remove(ctx, key),
            AnyMap::BTree(m) => m.remove(ctx, key),
        }
    }
    fn get(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<Option<u64>> {
        match self {
            AnyMap::Hash(m) => m.get(ctx, key),
            AnyMap::Bst(m) => m.get(ctx, key),
            AnyMap::BTree(m) => m.get(ctx, key),
        }
    }
    fn len(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        match self {
            AnyMap::Hash(m) => m.len(ctx),
            AnyMap::Bst(m) => m.len(ctx),
            AnyMap::BTree(m) => m.len(ctx),
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Data structure under test.
    pub structure: Structure,
    /// Synchronization scheme.
    pub scheme: Scheme,
    /// Worker threads (= simulated cores).
    pub threads: usize,
    /// Operations per thread in the measured run.
    pub ops_per_thread: u64,
    /// Percent of operations that are updates (half inserts, half
    /// removes); the paper uses 20.
    pub update_pct: u32,
    /// Percent of operations that are whole-structure scans
    /// ([`TxMap::len`]) — the long read-only transactions of the
    /// multi-version evaluation. `update_pct + scan_pct` must not exceed
    /// 100; the remainder are point lookups.
    pub scan_pct: u32,
    /// Route lookups and scans through declared read-only regions
    /// ([`ThreadExec::atomic_ro`]). Under [`Versioning::Multi`] these take
    /// the abort-free snapshot path; under [`Versioning::Single`] (or a
    /// non-STM scheme) they execute as ordinary atomic regions, so the
    /// flag alone never changes results.
    pub ro_reads: bool,
    /// Version retention for the STM-based schemes: [`Versioning::Single`]
    /// keeps only the latest committed value per word (the paper's base
    /// system), [`Versioning::Multi`] retains a bounded ring so read-only
    /// transactions read a consistent snapshot without validation.
    pub versioning: Versioning,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Keys pre-inserted before the measured run (the paper populates
    /// structures first).
    pub prepopulate: u64,
    /// Conflict-detection granularity for the STM-based schemes.
    pub granularity: Granularity,
    /// RNG seed (runs are fully deterministic given a seed).
    pub seed: u64,
    /// Machine description override (cores is forced to `threads`).
    pub machine: MachineConfig,
    /// Overrides the HASTM mode policy chosen by the scheme (e.g. to use
    /// the adaptive watermark policy even in single-thread runs).
    pub mode_policy_override: Option<hastm::ModePolicy>,
    /// Serializability-oracle mode for the STM-based schemes (evidence
    /// lands in [`WorkloadResult::txn`]). Off in the measured runs.
    pub oracle: OracleMode,
}

impl WorkloadConfig {
    /// The paper's standard setup for `structure` under `scheme` at
    /// `threads` threads: 20 % updates, pre-populated, cache-line
    /// granularity.
    pub fn paper_default(structure: Structure, scheme: Scheme, threads: usize) -> Self {
        WorkloadConfig {
            structure,
            scheme,
            threads,
            ops_per_thread: 1_000,
            update_pct: 20,
            scan_pct: 0,
            ro_reads: false,
            versioning: Versioning::Single,
            key_range: 1_024,
            prepopulate: 512,
            granularity: Granularity::CacheLine,
            seed: 0x5eed,
            machine: MachineConfig::default(),
            mode_policy_override: None,
            oracle: OracleMode::Off,
        }
    }

    /// The multi-version evaluation's read-dominated setup: 4 % updates,
    /// 96 % lookups routed through read-only snapshot regions over a
    /// 3-deep version ring.
    pub fn read_heavy(structure: Structure, scheme: Scheme, threads: usize) -> Self {
        WorkloadConfig {
            update_pct: 4,
            ro_reads: true,
            versioning: Versioning::Multi { k: 3 },
            ..WorkloadConfig::paper_default(structure, scheme, threads)
        }
    }

    /// Long read-only scans racing a write-heavy mix: the paper's 20 %
    /// updates plus 10 % whole-structure scans, with lookups and scans on
    /// the snapshot path.
    pub fn scan_heavy(structure: Structure, scheme: Scheme, threads: usize) -> Self {
        WorkloadConfig {
            scan_pct: 10,
            ro_reads: true,
            versioning: Versioning::Multi { k: 3 },
            ..WorkloadConfig::paper_default(structure, scheme, threads)
        }
    }
}

/// Result of one workload run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadResult {
    /// Makespan in simulated cycles (the "execution time" of the figures).
    pub cycles: u64,
    /// Raw simulator counters.
    pub report: RunReport,
    /// Merged STM statistics (zeroed for non-STM schemes).
    pub txn: TxnStats,
    /// Total operations performed.
    pub total_ops: u64,
    /// Order-independent digest of the final map contents (every resident
    /// `(key, value)` pair), taken by a sequential sweep after the measured
    /// run. Two runs that end in the same abstract map state — regardless
    /// of scheme or interleaving — produce the same digest; `hastm-check`
    /// differential-compares it across schemes.
    pub digest: u64,
}

impl WorkloadResult {
    /// Cycles per operation.
    pub fn cycles_per_op(&self) -> f64 {
        self.cycles as f64 / self.total_ops.max(1) as f64
    }
}

/// Speculation telemetry for one workload run under
/// [`hastm_sim::GateMode::Speculative`] (all-zero/false for the other gate
/// modes). Kept out of [`WorkloadResult`] on purpose: the result must stay
/// bit-comparable across gate modes, and a certified speculative run *is*
/// the quantum run — only how fast the host got there differs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecTelemetry {
    /// Whether the speculative gate was attempted at all.
    pub attempted: bool,
    /// Gated ops admitted speculatively across the warmup + measured
    /// phases of the *certified* attempt (0 if the attempt rolled back).
    pub spec_ops: u64,
    /// Total gated ops across those phases of the certified attempt.
    pub total_ops: u64,
    /// Whether the speculative attempt was tainted and the whole workload
    /// re-run conservatively under `GateMode::Quantum`.
    pub rolled_back: bool,
    /// Simulated cycles of the discarded attempt (0 unless rolled back) —
    /// the "wasted work" a rollback costs.
    pub rollback_cycles_wasted: u64,
}

impl SpecTelemetry {
    /// Fraction of gated ops that were admitted speculatively and
    /// certified (0.0 when nothing speculated or the run rolled back).
    pub fn commit_rate(&self) -> f64 {
        if self.rolled_back || self.total_ops == 0 {
            0.0
        } else {
            self.spec_ops as f64 / self.total_ops as f64
        }
    }
}

/// Runs one workload configuration end to end and returns its metrics.
///
/// The measured run starts with cold caches (the populate pass warms only
/// core 0, which would bias per-scheme comparisons otherwise).
///
/// # Panics
///
/// Panics if `threads` is zero or the sequential scheme is used with more
/// than one thread.
pub fn run_workload(cfg: &WorkloadConfig) -> WorkloadResult {
    run_workload_traced(cfg, None).0
}

/// [`run_workload`] with speculation telemetry. Under
/// [`hastm_sim::GateMode::Speculative`] the result is always *certified*:
/// a tainted speculative attempt is discarded and the whole workload
/// re-executed under `GateMode::Quantum`, so the returned
/// [`WorkloadResult`] is bit-identical to a quantum run either way. The
/// telemetry records how the result was obtained.
///
/// # Panics
///
/// As [`run_workload`].
pub fn run_workload_spec(cfg: &WorkloadConfig) -> (WorkloadResult, SpecTelemetry) {
    let (result, _, outcome) = run_workload_inner(cfg, None);
    let Some(outcome) = outcome else {
        return (result, SpecTelemetry::default());
    };
    if outcome.certified {
        return (
            result,
            SpecTelemetry {
                attempted: true,
                spec_ops: outcome.spec_ops,
                total_ops: outcome.total_ops,
                ..SpecTelemetry::default()
            },
        );
    }
    // Rollback: the speculative schedule raced a canonical op somewhere in
    // the warmup or measured phase. Discard everything (caches, stats,
    // memory — the machine is rebuilt from scratch) and re-run the whole
    // workload conservatively.
    let wasted = result.cycles;
    let mut quantum_cfg = cfg.clone();
    quantum_cfg.machine.gate = hastm_sim::GateMode::Quantum;
    let (result, _, _) = run_workload_inner(&quantum_cfg, None);
    (
        result,
        SpecTelemetry {
            attempted: true,
            rolled_back: true,
            rollback_cycles_wasted: wasted,
            ..SpecTelemetry::default()
        },
    )
}

/// [`run_workload`] with optional event tracing of the *measured* run (the
/// populate, warmup, and digest phases stay untraced). Tracing never
/// perturbs the simulation, so the [`WorkloadResult`] is bit-identical to
/// the untraced run's.
///
/// Under [`hastm_sim::GateMode::Speculative`] this certifies the result
/// exactly like [`run_workload_spec`] (tainted attempts are re-run under
/// the quantum gate), discarding the telemetry.
///
/// # Panics
///
/// As [`run_workload`].
pub fn run_workload_traced(
    cfg: &WorkloadConfig,
    trace: Option<hastm_sim::TraceConfig>,
) -> (WorkloadResult, Option<hastm_sim::TraceLog>) {
    let (result, log, outcome) = run_workload_inner(cfg, trace);
    if outcome.is_none_or(|o| o.certified) {
        return (result, log);
    }
    let mut quantum_cfg = cfg.clone();
    quantum_cfg.machine.gate = hastm_sim::GateMode::Quantum;
    let (result, log, _) = run_workload_inner(&quantum_cfg, trace);
    (result, log)
}

/// One operation of the mixed map stream: `roll` (in `0..100`) selects
/// insert / remove / whole-structure scan / point lookup per the config's
/// update and scan percentages. Scans and lookups run as declared
/// read-only regions when `cfg.ro_reads` is set.
fn map_op(ex: &mut ThreadExec<'_, '_>, map: &AnyMap, cfg: &WorkloadConfig, key: u64, roll: u32) {
    if roll < cfg.update_pct / 2 {
        ex.atomic(|ctx| map.insert(ctx, key, key ^ 0xff));
    } else if roll < cfg.update_pct {
        ex.atomic(|ctx| map.remove(ctx, key));
    } else if roll < cfg.update_pct + cfg.scan_pct {
        if cfg.ro_reads {
            ex.atomic_ro(|ctx| map.len(ctx));
        } else {
            ex.atomic(|ctx| map.len(ctx));
        }
    } else if cfg.ro_reads {
        ex.atomic_ro(|ctx| map.get(ctx, key));
    } else {
        ex.atomic(|ctx| map.get(ctx, key));
    }
}

/// One end-to-end workload execution. The returned outcome is `None`
/// unless the gate is speculative; `certified: false` means every output
/// of this call must be discarded (the interleaving is not guaranteed
/// equivalent to the conservative schedule).
fn run_workload_inner(
    cfg: &WorkloadConfig,
    trace: Option<hastm_sim::TraceConfig>,
) -> (
    WorkloadResult,
    Option<hastm_sim::TraceLog>,
    Option<hastm_sim::SpecOutcome>,
) {
    assert!(cfg.threads >= 1);
    assert!(
        cfg.scheme != Scheme::Sequential || cfg.threads == 1,
        "sequential scheme is single-threaded by definition"
    );
    let mut machine_cfg = cfg.machine.clone();
    machine_cfg.cores = cfg.threads;
    let mut machine = Machine::new(machine_cfg);
    assert!(
        cfg.update_pct + cfg.scan_pct <= 100,
        "update_pct + scan_pct must leave room for lookups"
    );
    let mut stm_config = cfg
        .scheme
        .stm_config(cfg.granularity, cfg.threads)
        .with_oracle(cfg.oracle)
        .with_versioning(cfg.versioning);
    if let (Some(p), true) = (cfg.mode_policy_override, cfg.scheme == Scheme::Hastm) {
        stm_config.mode_policy = p;
    }
    let runtime = StmRuntime::new(&mut machine, stm_config);
    let lock = SpinLock::alloc(runtime.heap());

    // Build + populate through a sequential executor on core 0 (identical
    // memory layout for every scheme given the same seed).
    let structure_kind = cfg.structure;
    let populate_seed = cfg.seed ^ 0x9e37_79b9;
    let rt = &runtime;
    let (map, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        let map = ex.atomic(|ctx| {
            // Size the table to the working set (load factor <= ~2 when
            // half the key range is resident).
            let buckets = (cfg.key_range / 2).next_power_of_two().clamp(64, 8192) as u32;
            Ok(match structure_kind {
                Structure::HashTable => AnyMap::Hash(HashTable::create(ctx, buckets)),
                Structure::Bst => AnyMap::Bst(crate::bst::Bst::create(ctx)),
                Structure::BTree => AnyMap::BTree(BTree::create(ctx)?),
            })
        });
        let mut rng = StdRng::seed_from_u64(populate_seed);
        let mut inserted = 0;
        while inserted < cfg.prepopulate {
            let key = rng.gen_range(0..cfg.key_range);
            let fresh = ex.atomic(|ctx| map.insert(ctx, key, key.wrapping_mul(7)));
            if fresh {
                inserted += 1;
            }
        }
        map
    });

    // Warmup pass: run a quarter of the op budget per thread under the
    // measured scheme so caches (data, records, logs) reach steady state on
    // every core, as in the paper's long runs.
    {
        let warm_ops = (cfg.ops_per_thread / 4).max(1);
        let warm_workers: Vec<hastm_sim::WorkerFn<'_>> = (0..cfg.threads)
            .map(|tid| {
                let cfg = cfg.clone();
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut ex = ThreadExec::new(cfg.scheme, rt, cpu, lock);
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xaaaa ^ (tid as u64) << 17);
                    for _ in 0..warm_ops {
                        let key = rng.gen_range(0..cfg.key_range);
                        let roll: u32 = rng.gen_range(0..100);
                        map_op(&mut ex, &map, &cfg, key, roll);
                    }
                }) as hastm_sim::WorkerFn<'_>
            })
            .collect();
        machine.run(warm_workers);
    }
    // Speculation verdicts are per-run; harvest the warmup's before the
    // measured run resets it. A taint in *either* multi-core phase dooms
    // the whole call — warmup shapes the cache state the measured run
    // starts from.
    let warm_outcome = machine.spec_outcome();

    // Measured run: every thread performs its op stream under the scheme.
    machine.set_tracing(trace);
    let stats_cell: Vec<std::sync::Mutex<TxnStats>> = (0..cfg.threads)
        .map(|_| std::sync::Mutex::new(TxnStats::default()))
        .collect();
    let stats_ref = &stats_cell;
    let scheme = cfg.scheme;
    let workers: Vec<hastm_sim::WorkerFn<'_>> = (0..cfg.threads)
        .map(|tid| {
            let cfg = cfg.clone();
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (tid as u64).wrapping_mul(0x9e37));
                for _ in 0..cfg.ops_per_thread {
                    let key = rng.gen_range(0..cfg.key_range);
                    let roll: u32 = rng.gen_range(0..100);
                    map_op(&mut ex, &map, &cfg, key, roll);
                }
                if let Some(s) = ex.txn_stats() {
                    *stats_ref[tid].lock().unwrap() = s;
                }
            }) as hastm_sim::WorkerFn<'_>
        })
        .collect();
    let report = machine.run(workers);
    let measured_outcome = machine.spec_outcome();
    let trace_log = machine.take_trace();
    machine.set_tracing(None);

    let mut merged = TxnStats::default();
    for s in &stats_cell {
        merged.merge(&s.lock().unwrap());
    }

    // Digest sweep (after the measured report is taken, so it costs the
    // metrics nothing): fold every resident pair with a commutative
    // combine, so the digest depends only on the final abstract map state.
    let key_range = cfg.key_range;
    let (digest, _) = machine.run_one(move |cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        let mut digest = 0u64;
        for key in 0..key_range {
            if let Some(value) = ex.atomic(|ctx| map.get(ctx, key)) {
                let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over (key, value)
                for byte in key.to_le_bytes().iter().chain(value.to_le_bytes().iter()) {
                    h = (h ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
                }
                digest = digest.wrapping_add(h);
            }
        }
        digest
    });

    // All phases are quiesced: settle the oracle's deferred serializability
    // obligations against the committed-write journal. (A no-op unless the
    // oracle is on; panics here under `OracleMode::Panic`.)
    merged.oracle_violations += runtime.verify_serializability(&machine).len() as u64;

    // The populate and digest phases run a single worker, which is always
    // globally minimal and therefore never speculates; warmup + measured
    // are the phases whose verdicts matter.
    let outcome = match (warm_outcome, measured_outcome) {
        (Some(w), Some(m)) => Some(hastm_sim::SpecOutcome {
            certified: w.certified && m.certified,
            spec_ops: w.spec_ops + m.spec_ops,
            total_ops: w.total_ops + m.total_ops,
        }),
        (w, m) => w.or(m),
    };

    (
        WorkloadResult {
            cycles: report.makespan(),
            total_ops: cfg.ops_per_thread * cfg.threads as u64,
            report,
            txn: merged,
            digest,
        },
        trace_log,
        outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(structure: Structure, scheme: Scheme, threads: usize) -> WorkloadConfig {
        let mut c = WorkloadConfig::paper_default(structure, scheme, threads);
        c.ops_per_thread = 120;
        c.prepopulate = 64;
        c.key_range = 128;
        c
    }

    #[test]
    fn all_schemes_complete_on_bst() {
        for scheme in Scheme::ALL {
            let threads = if scheme == Scheme::Sequential { 1 } else { 2 };
            let r = run_workload(&small(Structure::Bst, scheme, threads));
            assert!(r.cycles > 0, "{scheme}");
            assert_eq!(r.total_ops, 120 * threads as u64);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small(Structure::HashTable, Scheme::Hastm, 2);
        let a = run_workload(&cfg);
        let b = run_workload(&cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.txn, b.txn);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn single_thread_digest_is_scheme_independent() {
        // At one thread there is a single op order, so every scheme must
        // end in the identical abstract map state.
        let digests: Vec<u64> = Scheme::ALL
            .iter()
            .map(|&s| run_workload(&small(Structure::HashTable, s, 1)).digest)
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests diverge across schemes: {digests:?}"
        );
        assert_ne!(digests[0], 0, "populated map digests are nonzero");
    }

    #[test]
    fn oracle_evidence_reaches_workload_stats() {
        let mut cfg = small(Structure::Bst, Scheme::Hastm, 2);
        cfg.oracle = OracleMode::Record;
        let r = run_workload(&cfg);
        assert!(r.txn.oracle_commits_checked > 0, "every commit checked");
        assert!(r.txn.oracle_reads_checked > 0);
        assert_eq!(r.txn.oracle_violations, 0, "serializable execution");
    }

    #[test]
    fn speculative_gate_result_is_bit_identical_to_quantum() {
        for threads in [2, 4] {
            let mut cfg = small(Structure::HashTable, Scheme::Hastm, threads);
            cfg.machine.gate = hastm_sim::GateMode::Quantum;
            let quantum = run_workload(&cfg);
            cfg.machine.gate = hastm_sim::GateMode::Speculative;
            let (spec, telemetry) = run_workload_spec(&cfg);
            assert!(telemetry.attempted);
            assert_eq!(
                spec, quantum,
                "certified/rolled-back speculative result diverged at {threads} threads \
                 ({telemetry:?})"
            );
            // Plain entry points must certify too.
            assert_eq!(run_workload(&cfg), quantum);
        }
    }

    #[test]
    fn forced_taint_rolls_back_and_still_matches_quantum() {
        let mut cfg = small(Structure::Bst, Scheme::Stm, 2);
        cfg.machine.gate = hastm_sim::GateMode::Quantum;
        let quantum = run_workload(&cfg);
        cfg.machine.gate = hastm_sim::GateMode::Speculative;
        cfg.machine.spec_taint_at = Some(0);
        let (spec, telemetry) = run_workload_spec(&cfg);
        assert!(telemetry.attempted && telemetry.rolled_back);
        assert!(telemetry.rollback_cycles_wasted > 0);
        assert_eq!(telemetry.commit_rate(), 0.0);
        assert_eq!(spec, quantum, "rollback re-run must reproduce quantum");
    }

    #[test]
    fn read_heavy_snapshot_reads_never_abort() {
        let mut cfg = WorkloadConfig::read_heavy(Structure::HashTable, Scheme::Hastm, 2);
        cfg.ops_per_thread = 120;
        cfg.prepopulate = 64;
        cfg.key_range = 128;
        let r = run_workload(&cfg);
        assert!(r.txn.ro_commits > 0, "lookups must take the snapshot path");
        assert_eq!(r.txn.ro_aborts, 0, "snapshot reads are abort-free");
        assert!(r.txn.snapshot_reads > 0);
        assert_ne!(r.digest, 0);
    }

    #[test]
    fn scan_heavy_runs_long_ro_scans_abort_free() {
        let mut cfg = WorkloadConfig::scan_heavy(Structure::Bst, Scheme::Stm, 2);
        cfg.ops_per_thread = 120;
        cfg.prepopulate = 64;
        cfg.key_range = 128;
        let r = run_workload(&cfg);
        assert!(r.txn.ro_commits > 0);
        assert_eq!(r.txn.ro_aborts, 0);
        assert!(
            r.txn.versions_published > 0,
            "writers must publish into the rings"
        );
    }

    #[test]
    fn single_thread_digest_is_versioning_independent() {
        // One thread means one op order, so Single and Multi must end in
        // the identical abstract map state even with lookups rerouted
        // through the snapshot path.
        let mut single = small(Structure::HashTable, Scheme::Hastm, 1);
        single.ro_reads = true;
        let mut multi = single.clone();
        multi.versioning = Versioning::Multi { k: 3 };
        let a = run_workload(&single);
        let b = run_workload(&multi);
        assert_eq!(a.digest, b.digest, "final map state diverged");
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(b.txn.ro_aborts, 0);
    }

    #[test]
    fn oracle_checks_snapshot_reads_under_multi() {
        let mut cfg = WorkloadConfig::read_heavy(Structure::HashTable, Scheme::Hastm, 2);
        cfg.ops_per_thread = 80;
        cfg.prepopulate = 32;
        cfg.key_range = 64;
        cfg.oracle = OracleMode::Record;
        let r = run_workload(&cfg);
        assert!(r.txn.ro_commits > 0);
        assert_eq!(
            r.txn.oracle_violations, 0,
            "snapshot reads must be serializable at their start stamp"
        );
    }

    #[test]
    fn stm_slower_than_sequential_single_thread() {
        let seq = run_workload(&small(Structure::BTree, Scheme::Sequential, 1));
        let stm = run_workload(&small(Structure::BTree, Scheme::Stm, 1));
        assert!(
            stm.cycles > seq.cycles,
            "STM must pay overhead: stm={} seq={}",
            stm.cycles,
            seq.cycles
        );
    }

    #[test]
    fn hastm_between_sequential_and_stm() {
        let seq = run_workload(&small(Structure::BTree, Scheme::Sequential, 1));
        let stm = run_workload(&small(Structure::BTree, Scheme::Stm, 1));
        let hastm = run_workload(&small(Structure::BTree, Scheme::Hastm, 1));
        assert!(
            hastm.cycles < stm.cycles,
            "HASTM must beat STM: hastm={} stm={}",
            hastm.cycles,
            stm.cycles
        );
        assert!(hastm.cycles > seq.cycles);
    }
}
